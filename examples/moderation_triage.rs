//! Moderation-triage scenario: a platform's trust-and-safety team trains
//! the incitement classifier on labeled history and uses it to triage an
//! incoming message stream — the deployment the paper's §9.2 recommends to
//! "online platforms".
//!
//! Demonstrates: training from labeled text, batch scoring, queue ordering,
//! precision@k, and how the §5.5 threshold trade-off plays out for a fixed
//! reviewer budget.
//!
//! ```text
//! cargo run --release --example moderation_triage
//! ```

use incite::corpus::{generate, CorpusConfig};
use incite::ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite::taxonomy::Platform;

fn main() {
    // Yesterday's labeled moderation decisions = training data.
    let corpus = generate(&CorpusConfig::small(99));
    let history: Vec<(&str, bool)> = corpus
        .by_platform(Platform::Telegram)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let n_pos = history.iter().filter(|(_, l)| *l).count();
    println!(
        "Training on {} labeled chat messages ({} incitements) ...",
        history.len(),
        n_pos
    );
    let clf = TextClassifier::train(
        history.clone(),
        FeaturizerConfig {
            max_len: 128, // the Table 3 CTH hyperparameter
            mode: FeatureMode::Subword,
            ..Default::default()
        },
        TrainConfig::default(),
    );

    // Today's stream = a different platform slice (cross-channel drift).
    let stream: Vec<&incite::corpus::Document> = corpus.by_platform(Platform::Discord).collect();
    println!("Scoring {} incoming messages ...\n", stream.len());
    let mut scored: Vec<(f32, &incite::corpus::Document)> =
        stream.iter().map(|d| (clf.score(&d.text), *d)).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    // Precision at several queue depths.
    println!("Review queue quality (messages sorted by score):");
    for k in [10usize, 25, 50, 100] {
        let k = k.min(scored.len());
        let hits = scored[..k].iter().filter(|(_, d)| d.truth.is_cth).count();
        println!(
            "  top {k:>4}: {hits:>3} true incitements  (precision@{k} = {:.0}%)",
            100.0 * hits as f64 / k as f64
        );
    }

    // Reviewer-budget view of the threshold trade-off (§5.5).
    println!("\nThreshold trade-off for a fixed reviewer budget:");
    let total_true = stream.iter().filter(|d| d.truth.is_cth).count().max(1);
    for t in [0.5f32, 0.7, 0.9] {
        let flagged: Vec<_> = scored.iter().filter(|(s, _)| *s > t).collect();
        let tp = flagged.iter().filter(|(_, d)| d.truth.is_cth).count();
        println!(
            "  t={t}: {:>4} flagged, precision {:>5.1}%, recall {:>5.1}%",
            flagged.len(),
            100.0 * tp as f64 / flagged.len().max(1) as f64,
            100.0 * tp as f64 / total_true as f64,
        );
    }
    println!("\n(The paper raises t until expert annotation is worthwhile, then");
    println!(" lowers it again while precision holds — see §5.5 / Table 4.)");
}
