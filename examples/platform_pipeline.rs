//! End-to-end platform moderation pipeline: detect incitements, classify
//! *which* attack each one incites (§9.2 extension), check for exposed PII,
//! and emit a redacted action report — the full loop a trust-and-safety
//! system would run on top of this library.
//!
//! ```text
//! cargo run --release --example platform_pipeline
//! ```

use incite::core::attack_classifier::{default_featurizer, AttackTypeClassifier};
use incite::corpus::{generate, CorpusConfig};
use incite::ml::{save_model, FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite::pii::{redact, PiiExtractor};
use incite::taxonomy::{AttackType, LabelSet, Platform};

fn main() {
    let corpus = generate(&CorpusConfig::small(0xfeed));

    // ---- Stage 1: train the incitement detector on labeled history ------
    let history: Vec<(&str, bool)> = corpus
        .by_platform(Platform::Telegram)
        .chain(corpus.by_platform(Platform::Gab))
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    println!(
        "Stage 1: training detector on {} labeled messages",
        history.len()
    );
    let detector = TextClassifier::train(
        history,
        FeaturizerConfig {
            max_len: 128,
            mode: FeatureMode::Subword,
            ..Default::default()
        },
        TrainConfig::default(),
    );
    // The §3 open-sourcing commitment: persist the model (no training text).
    let mut artifact = Vec::new();
    save_model(&mut artifact, &detector).expect("serialize model");
    println!(
        "         model artifact: {} KiB of weights+vocab, zero training text",
        artifact.len() / 1024
    );

    // ---- Stage 2: train the per-attack-type classifier ------------------
    let labeled_cth: Vec<(String, LabelSet)> = corpus
        .documents
        .iter()
        .filter(|d| d.truth.is_cth && d.platform != Platform::Blogs)
        .map(|d| (d.text.clone(), d.truth.labels))
        .collect();
    println!(
        "Stage 2: training {}-type attack classifier on {} incitements",
        10,
        labeled_cth.len()
    );
    let typer =
        AttackTypeClassifier::train(&labeled_cth, default_featurizer(), TrainConfig::default());
    println!(
        "         heads trained for {} attack types ({} skipped for sparse data)",
        typer.covered_types().len(),
        typer.skipped.len()
    );

    // ---- Stage 3: run the incoming stream through the full loop ---------
    let extractor = PiiExtractor::new();
    let stream: Vec<&incite::corpus::Document> = corpus.by_platform(Platform::Discord).collect();
    println!("\nStage 3: moderating {} incoming messages\n", stream.len());

    let mut flagged = 0;
    let mut with_pii = 0;
    let mut examples_shown = 0;
    for doc in &stream {
        let score = detector.score(&doc.text);
        if score <= 0.5 {
            continue;
        }
        flagged += 1;
        let attacks = typer.predict_labels(&doc.text);
        let (redacted, spans) = redact(&extractor, &doc.text);
        if !spans.is_empty() {
            with_pii += 1;
        }
        if examples_shown < 4 {
            examples_shown += 1;
            let attack_names: Vec<String> = attacks.iter().map(|a| a.to_string()).collect();
            let action = if attacks.contains(&AttackType::Reporting) {
                "harden reporting-abuse rate limits; review mass-report queue"
            } else if attacks.contains(&AttackType::Overloading) {
                "enable raid protection on the named target"
            } else if attacks.contains(&AttackType::ContentLeakage) {
                "remove + notify target (PII exposure)"
            } else {
                "standard review queue"
            };
            println!("⚑ score {score:.2} | attacks: {}", attack_names.join(", "));
            println!("  redacted : {}", redacted.lines().next().unwrap_or(""));
            println!("  action   : {action}\n");
        }
    }
    let truth_positives = stream.iter().filter(|d| d.truth.is_cth).count();
    println!("summary: {flagged} flagged ({} truly incitements in stream), {with_pii} carried extractable PII",
        truth_positives);
}
