//! Quickstart: generate a synthetic multi-platform corpus, run both
//! filtering pipelines (calls to harassment + doxes), and print the
//! Figure 1-style funnel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use incite::analysis::render;
use incite::core::{run_pipeline, PipelineConfig, Task};
use incite::corpus::{generate, CorpusConfig};

fn main() {
    // A small, seeded corpus: ~1/10,000 of the paper's volume with
    // positives at 10 % of the paper's annotated counts.
    let config = CorpusConfig::small(2024);
    println!("Generating synthetic corpus (seed {}) ...", config.seed);
    let corpus = generate(&config);
    println!("  {} documents across 6 platforms\n", corpus.len());

    // Table 1: raw data sets.
    let mut rows = vec![vec![
        "Data set".to_string(),
        "Posts".to_string(),
        "True CTH".to_string(),
        "True doxes".to_string(),
    ]];
    for row in corpus.summary() {
        let cth = corpus
            .by_data_set(row.data_set)
            .filter(|d| d.truth.is_cth)
            .count();
        let dox = corpus
            .by_data_set(row.data_set)
            .filter(|d| d.truth.is_dox)
            .count();
        rows.push(vec![
            row.data_set.to_string(),
            row.posts.to_string(),
            cth.to_string(),
            dox.to_string(),
        ]);
    }
    println!("{}", render::table(&rows));

    // Run both pipelines.
    for task in Task::ALL {
        println!("=== {task} pipeline ===");
        let outcome =
            run_pipeline(&corpus, task, &PipelineConfig::quick(7)).expect("pipeline scoring");
        let c = &outcome.counts;
        println!("  raw documents scanned : {}", c.raw_documents);
        println!("  bootstrap candidates  : {}", c.bootstrap_candidates);
        println!("  seed annotations      : {}", c.seed_annotations);
        println!("  crowd annotations     : {}", c.crowd_annotations);
        println!("  above thresholds      : {}", c.above_threshold);
        println!("  expert annotated      : {}", c.final_annotated);
        println!("  confirmed positives   : {}", c.true_positives);
        println!(
            "  final-stage precision : {:.1}%",
            100.0 * c.final_precision()
        );
        if let Some(auc) = outcome.eval.auc {
            println!("  held-out AUC-ROC      : {auc:.3}");
        }
        println!("  per-platform thresholds (Table 4 shape):");
        for t in &outcome.thresholds {
            println!(
                "    {:<9} t={:<5} above={:<6} annotated={:<6} true={}{}",
                t.platform.to_string(),
                t.threshold,
                t.above_threshold,
                t.annotated,
                t.true_positives,
                if t.exhaustive { " (exhaustive)" } else { "" }
            );
        }
        println!();
    }
    println!("Done. See the `repro` binary for full table/figure regeneration.");
}
