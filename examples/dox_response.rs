//! Victim-support scenario: an anti-harassment group receives a batch of
//! detected doxes and produces a per-target risk report — which harms the
//! exposed PII enables (§7.2), whether the target has been doxed before
//! (§7.3), and what to prioritize.
//!
//! Exercises: PII extraction, harm-risk assignment, gender inference, and
//! repeated-dox linking on real text.
//!
//! ```text
//! cargo run --release --example dox_response
//! ```

use incite::analysis::repeats::repeated_doxes;
use incite::corpus::{generate, CorpusConfig};
use incite::pii::{infer_gender, PiiExtractor};
use incite::taxonomy::harm::{HarmRisk, RiskSet};

fn main() {
    let corpus = generate(&CorpusConfig::small(31337));
    let extractor = PiiExtractor::new();

    // The "incoming batch": detected doxes from the pastes platform.
    let batch: Vec<&incite::corpus::Document> = corpus
        .by_platform(incite::taxonomy::Platform::Pastes)
        .filter(|d| d.truth.is_dox)
        .take(8)
        .collect();
    println!("Incoming batch: {} detected doxes\n", batch.len());

    for (i, doc) in batch.iter().enumerate() {
        let matches = extractor.extract(&doc.text);
        let pii = extractor.pii_set(&doc.text);
        let risks = RiskSet::from_pii(pii, doc.truth.reputation_flag);
        let gender = infer_gender(&doc.text);
        println!("case #{:02}  (doc {})", i + 1, doc.id.0);
        println!(
            "  exposed PII   : {} spans / {} kinds",
            matches.len(),
            pii.len()
        );
        for kind in pii.iter() {
            println!("    - {kind}");
        }
        let risk_list: Vec<String> = risks.iter().map(|r| r.to_string()).collect();
        println!(
            "  harm risks    : {}",
            if risk_list.is_empty() {
                "none detected".to_string()
            } else {
                risk_list.join(", ")
            }
        );
        println!("  target gender : {gender} (pronoun inference)");
        let advice = if risks.contains(HarmRisk::Physical) {
            "physical-safety escalation: address exposed"
        } else if risks.contains(HarmRisk::EconomicIdentity) {
            "financial-identity escalation: freeze/monitor identifiers"
        } else if risks.contains(HarmRisk::Online) {
            "account hardening: lock down exposed profiles"
        } else {
            "monitor only"
        };
        println!("  triage        : {advice}\n");
    }

    // Repeated-target check across the whole detected set.
    let all_doxes: Vec<&incite::corpus::Document> =
        corpus.documents.iter().filter(|d| d.truth.is_dox).collect();
    let stats = repeated_doxes(&extractor, &all_doxes);
    println!("Repeated-target scan over {} doxes:", stats.total);
    println!(
        "  {} doxes ({:.1}%) repeat a known target across {} handle groups",
        stats.repeated,
        100.0 * stats.repeated_fraction(),
        stats.repeated_targets
    );
    println!(
        "  {:.0}% of repeats stay on one platform family (paper: 98%)",
        100.0 * stats.same_data_set_fraction()
    );
}
