//! Research scenario: characterize the attack landscape over an annotated
//! set of calls to harassment — the paper's §6 analysis as a library user
//! would run it. Renders Table 5 (parent attack types per data set), the
//! gender breakdown (Table 10 highlights), co-occurrence (§6.2), and the
//! thread-behaviour headlines (§6.3).
//!
//! ```text
//! cargo run --release --example attack_landscape
//! ```

use incite::analysis::{attack_types, gender, overlap, render, threads};
use incite::corpus::{generate, CorpusConfig};
use incite::taxonomy::{AttackType, DataSet, Gender, Platform, Subcategory};

fn main() {
    let corpus = generate(&CorpusConfig::small(808));
    let cth: Vec<&incite::corpus::Document> =
        corpus.documents.iter().filter(|d| d.truth.is_cth).collect();
    println!("Annotated calls to harassment: {}\n", cth.len());

    // Table 5: parent attack types per data set.
    let columns = attack_types::tabulate(&cth);
    let mut rows = vec![vec![
        "Attack Type".to_string(),
        "Boards".to_string(),
        "Chat".to_string(),
        "Gab".to_string(),
    ]];
    for parent in AttackType::ALL {
        let mut row = vec![parent.to_string()];
        for col in &columns {
            let n = col.parent(parent, &cth);
            row.push(render::count_pct(n, col.size));
        }
        rows.push(row);
    }
    println!("Table 5 — parent attack types per data set:");
    println!("{}", render::table(&rows));

    // §6.2 co-occurrence.
    let co = attack_types::co_occurrence(&cth);
    println!(
        "Multi-type calls: {} of {} ({:.1}%); two={}, three={}, four+={}",
        co.multi_label,
        co.total,
        100.0 * co.multi_label as f64 / co.total.max(1) as f64,
        co.exactly_two,
        co.exactly_three,
        co.four_or_more
    );
    println!(
        "surveillance∩content-leakage = {:.0}%   impersonation∩public-opinion = {:.0}%\n",
        100.0 * co.surveillance_with_leakage,
        100.0 * co.impersonation_with_pom
    );

    // Gender highlights (Table 10).
    let gcols = gender::tabulate_by_gender(&cth);
    println!("Inferred target gender (pronoun method, §5.6):");
    for col in &gcols {
        println!("  {:<8} {}", col.gender.to_string(), col.size);
    }
    let female = gcols.iter().find(|c| c.gender == Gender::Female).unwrap();
    let male = gcols.iter().find(|c| c.gender == Gender::Male).unwrap();
    println!(
        "  private reputational harm: female {:.1}% vs male {:.1}% (paper: 7.5% vs 3.0%)\n",
        female.percent(female.subcategory(Subcategory::ReputationalHarmPrivate)),
        male.percent(male.subcategory(Subcategory::ReputationalHarmPrivate)),
    );

    // Thread behaviour (§6.3) on boards ground truth.
    let board_cth: Vec<&incite::corpus::Document> = corpus
        .by_platform(Platform::Boards)
        .filter(|d| d.truth.is_cth)
        .collect();
    let pos = threads::position_stats(&board_cth);
    println!("Where calls appear inside board threads (n = {}):", pos.n);
    println!(
        "  first post {:.1}%  |  last post {:.1}%  |  median position {:.0}, mean {:.0}, σ {:.0}",
        100.0 * pos.first_fraction,
        100.0 * pos.last_fraction,
        pos.position.median,
        pos.position.mean,
        pos.position.std_dev
    );

    let baseline = threads::baseline_sample(&corpus, 2_000, 99);
    let tests = threads::response_size_tests(&board_cth, &baseline, 5, 0.1);
    println!(
        "\nResponse-size tests vs a {}-post random baseline (BH-corrected):",
        baseline.len()
    );
    for t in tests {
        match t.test {
            Some(r) => println!(
                "  {:<24} n={:<5} t={:>6.2}  p={:.4}{}",
                t.attack_type.to_string(),
                t.n,
                r.t,
                r.p_value,
                if t.significant { "  *significant*" } else { "" }
            ),
            None => println!(
                "  {:<24} n={:<5} (excluded: too few samples)",
                t.attack_type.to_string(),
                t.n
            ),
        }
    }

    // CTH ∩ dox overlap on ground truth.
    let cth_ids: Vec<_> = board_cth.iter().map(|d| d.id).collect();
    let dox_ids: Vec<_> = corpus
        .by_platform(Platform::Boards)
        .filter(|d| d.truth.is_dox)
        .map(|d| d.id)
        .collect();
    let ov = overlap::thread_overlap(&corpus, &cth_ids, &dox_ids);
    println!(
        "\nThread overlap: {:.1}% of calls share a thread with a dox (paper: 8.5%);",
        100.0 * ov.cth_with_dox_fraction()
    );
    println!(
        "{:.1}% of dox threads contain a call (paper: 17.9%); {} posts flagged as both.",
        100.0 * ov.dox_with_cth_fraction(),
        ov.both_documents
    );
    let _ = DataSet::ALL; // silence unused import on some feature sets
}
