//! Umbrella crate re-exporting the full `incite` public API.
pub use incite_analysis as analysis;
pub use incite_annotate as annotate;
pub use incite_core as core;
pub use incite_corpus as corpus;
pub use incite_ml as ml;
pub use incite_pii as pii;
pub use incite_regex as regex;
pub use incite_serve as serve;
pub use incite_stats as stats;
pub use incite_taxonomy as taxonomy;
pub use incite_textkit as textkit;
