//! The engine's parallel fan-out and warm-scan cache, exercised over a
//! mutable copy of the fixture tree: findings must be byte-identical at
//! every thread count and across cache states, and a warm run must
//! re-analyze exactly the files whose bytes changed — without ever
//! hiding a newly planted violation.

use incite_lint::baseline::Baseline;
use incite_lint::engine::{self, Options};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create dir");
    for entry in fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("dir entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            fs::copy(&from, &to).expect("copy file");
        }
    }
}

/// A scratch copy of the fixture tree, removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(name: &str) -> TempWs {
        let root =
            std::env::temp_dir().join(format!("incite-lint-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        copy_tree(&fixture_root(), &root);
        TempWs { root }
    }

    fn options(&self, threads: usize) -> Options {
        Options {
            threads,
            cache_dir: Some(self.root.join("cache")),
        }
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn parallel_report_is_byte_identical_to_sequential() {
    let ws = TempWs::new("threads");
    let baseline = Baseline::default();
    let sequential = engine::run_with(
        &ws.root,
        &baseline,
        &Options {
            threads: 1,
            cache_dir: None,
        },
    )
    .expect("sequential run");
    assert!(
        !sequential.findings.is_empty(),
        "the fixture tree must produce findings for byte-identity to mean anything"
    );
    for threads in [2, 4, 8] {
        let parallel = engine::run_with(
            &ws.root,
            &baseline,
            &Options {
                threads,
                cache_dir: None,
            },
        )
        .expect("parallel run");
        assert_eq!(
            engine::report_json(&parallel),
            engine::report_json(&sequential),
            "report bytes drifted at {threads} threads"
        );
    }
}

#[test]
fn warm_run_skips_unchanged_files_and_keeps_report_bytes() {
    let ws = TempWs::new("warm");
    let baseline = Baseline::default();
    let cold = engine::run_with(&ws.root, &baseline, &ws.options(4)).expect("cold run");
    assert_eq!(
        cold.files_reanalyzed, cold.files_scanned,
        "a cold cache must re-analyze every file"
    );
    let warm = engine::run_with(&ws.root, &baseline, &ws.options(4)).expect("warm run");
    assert_eq!(warm.files_reanalyzed, 0, "an unchanged tree is a full skip");
    assert_eq!(
        engine::report_json(&warm),
        engine::report_json(&cold),
        "warm and cold reports must be byte-identical"
    );
}

#[test]
fn editing_one_file_reanalyzes_only_that_file() {
    let ws = TempWs::new("edit");
    let baseline = Baseline::default();
    let cold = engine::run_with(&ws.root, &baseline, &ws.options(4)).expect("cold run");

    // A trailing comment changes the bytes but no findings: exactly one
    // file misses the cache, and the findings are unchanged.
    let edited = ws.root.join("crates/core/src/folds.rs");
    let mut text = fs::read_to_string(&edited).expect("fixture readable");
    text.push_str("// trailing note: cache-invalidation probe\n");
    fs::write(&edited, text).expect("fixture writable");
    let after_edit = engine::run_with(&ws.root, &baseline, &ws.options(4)).expect("warm run");
    assert_eq!(
        after_edit.files_reanalyzed, 1,
        "only the edited file may re-analyze"
    );
    assert_eq!(
        after_edit.findings, cold.findings,
        "a comment-only edit must not move findings"
    );

    // A newly planted violation must surface through the warm cache.
    fs::write(
        ws.root.join("crates/core/src/planted.rs"),
        "pub fn boom(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("fixture writable");
    let after_plant = engine::run_with(&ws.root, &baseline, &ws.options(4)).expect("warm run");
    assert_eq!(
        after_plant.files_reanalyzed, 1,
        "only the new file may re-analyze"
    );
    assert!(
        after_plant
            .findings
            .iter()
            .any(|f| f.rule == "INC001" && f.file == "crates/core/src/planted.rs" && f.line == 2),
        "the planted unwrap must fire through the warm cache: {:?}",
        after_plant.findings
    );
}
