//! Combinatorial lexer regression sweep: every pairing of literal kinds
//! (plain/raw/byte strings, hashed raw strings, line/nested block
//! comments, char literals) interleaved with code must mask the literal
//! contents, keep the code, and preserve the line layout. These are the
//! interactions the item parser depends on; single-construct cases live
//! in the `lexer` unit tests.

use incite_lint::lexer::MaskedFile;

#[test]
fn combos_never_leak_and_preserve_lines() {
    // Literal fragments whose *contents* must never survive masking.
    // (text, contains_ghost)
    let literals: &[&str] = &[
        "\"ghost()\"",
        "\"g\\\"host()\"",
        "r\"ghost()\"",
        "r#\"ghost()\"#",
        "r##\"gh \"# ost()\"##",
        "br#\"ghost()\"#",
        "b\"ghost()\"",
        "// ghost()\n",
        "/* ghost() */",
        "/* a /* ghost() */ b */",
        "/*/ ghost() */",
        "'g'",
        "b'g'",
        "'\\''",
        "r#\"multi\nline ghost()\nend\"#",
        "/* multi\nline ghost() */",
    ];
    // Code fragments that must survive masking verbatim (sans literals).
    let codes: &[&str] = &["alpha();", "beta::<'a>(x);", "let mut v = 1;", "m[i] = j;"];

    let mut case = 0usize;
    for &a in literals {
        for &b in literals {
            for &c1 in codes {
                for &c2 in codes {
                    let src = format!("{c1} {a} {c2} {b}\n");
                    let m = MaskedFile::new(&src);
                    case += 1;
                    assert!(
                        !m.masked.contains("ghost"),
                        "case {case}: leak from {src:?} -> {:?}",
                        m.masked
                    );
                    assert_eq!(
                        m.masked.lines().count(),
                        src.lines().count(),
                        "case {case}: line drift for {src:?} -> {:?}",
                        m.masked
                    );
                    // Code before the first literal must survive.
                    assert!(
                        m.masked.contains(c1),
                        "case {case}: lost leading code in {src:?} -> {:?}",
                        m.masked
                    );
                    // Code between the literals must survive unless the first
                    // literal is a line comment (which eats to end of line —
                    // but all line-comment fragments here end with \n).
                    assert!(
                        m.masked.contains(c2),
                        "case {case}: lost middle code in {src:?} -> {:?}",
                        m.masked
                    );
                }
            }
        }
    }
    assert!(case > 4000, "expected a real sweep, got {case}");
}
