//! Combinatorial lexer regression sweep: every pairing of literal kinds
//! (plain/raw/byte strings, hashed raw strings, line/nested block
//! comments, char literals) interleaved with code must mask the literal
//! contents, keep the code, and preserve the line layout. These are the
//! interactions the item parser depends on; single-construct cases live
//! in the `lexer` unit tests.

use incite_lint::lexer::MaskedFile;
use incite_lint::rules;

#[test]
fn doc_comment_code_fences_stay_masked() {
    // The fenced examples quote an INC001 violation; none of it is code,
    // so none of it may survive masking or reach the pattern rules —
    // even in an INC001-scoped crate.
    let source = "\
//! Module docs.
//!
//! ```
//! let value = maybe.unwrap();
//! let guard = pair.a.lock();
//! ```

/// Scores one document.
///
/// ```
/// let score = engine.score(text).expect(\"scored\");
/// ```
pub fn score(x: u32) -> u32 {
    x + 1
}
";
    let masked = MaskedFile::new(source);
    assert!(
        !masked.masked.contains("unwrap") && !masked.masked.contains("expect"),
        "doc-comment contents leaked into the masked text:\n{}",
        masked.masked
    );
    assert_eq!(
        masked.masked.matches('\n').count(),
        source.matches('\n').count(),
        "masking must preserve line structure"
    );
    assert!(
        masked.masked.contains("pub fn score"),
        "masking ate the real code:\n{}",
        masked.masked
    );
    let findings = rules::scan_file("crates/core/src/demo.rs", &masked);
    assert!(
        findings.is_empty(),
        "doc-comment examples must not lint: {findings:?}"
    );
}

#[test]
fn nested_raw_strings_close_on_the_matching_delimiter() {
    // The outer r##"…"## contains a complete r#"…"# literal; a lexer
    // that closed on the first `"#` would leave `.unwrap()` live.
    let source = r####"
pub fn template() -> &'static str {
    let inner = r##"outer text r#"inner .unwrap() text"# more outer"##;
    inner
}

pub fn after(x: u32) -> u32 {
    x + 2
}
"####;
    let masked = MaskedFile::new(source);
    assert!(
        !masked.masked.contains("unwrap"),
        "nested raw-string contents leaked:\n{}",
        masked.masked
    );
    assert_eq!(
        masked.masked.matches('\n').count(),
        source.matches('\n').count(),
        "masking must preserve line structure"
    );
    // The code after the literal is still live: its tokens survive.
    assert!(
        masked.masked.contains("pub fn after"),
        "masking ate code after the raw string:\n{}",
        masked.masked
    );
    let findings = rules::scan_file("crates/core/src/demo.rs", &masked);
    assert!(
        findings.is_empty(),
        "raw-string contents must not lint: {findings:?}"
    );
}

#[test]
fn combos_never_leak_and_preserve_lines() {
    // Literal fragments whose *contents* must never survive masking.
    // (text, contains_ghost)
    let literals: &[&str] = &[
        "\"ghost()\"",
        "\"g\\\"host()\"",
        "r\"ghost()\"",
        "r#\"ghost()\"#",
        "r##\"gh \"# ost()\"##",
        "br#\"ghost()\"#",
        "b\"ghost()\"",
        "// ghost()\n",
        "/* ghost() */",
        "/* a /* ghost() */ b */",
        "/*/ ghost() */",
        "'g'",
        "b'g'",
        "'\\''",
        "r#\"multi\nline ghost()\nend\"#",
        "/* multi\nline ghost() */",
    ];
    // Code fragments that must survive masking verbatim (sans literals).
    let codes: &[&str] = &["alpha();", "beta::<'a>(x);", "let mut v = 1;", "m[i] = j;"];

    let mut case = 0usize;
    for &a in literals {
        for &b in literals {
            for &c1 in codes {
                for &c2 in codes {
                    let src = format!("{c1} {a} {c2} {b}\n");
                    let m = MaskedFile::new(&src);
                    case += 1;
                    assert!(
                        !m.masked.contains("ghost"),
                        "case {case}: leak from {src:?} -> {:?}",
                        m.masked
                    );
                    assert_eq!(
                        m.masked.lines().count(),
                        src.lines().count(),
                        "case {case}: line drift for {src:?} -> {:?}",
                        m.masked
                    );
                    // Code before the first literal must survive.
                    assert!(
                        m.masked.contains(c1),
                        "case {case}: lost leading code in {src:?} -> {:?}",
                        m.masked
                    );
                    // Code between the literals must survive unless the first
                    // literal is a line comment (which eats to end of line —
                    // but all line-comment fragments here end with \n).
                    assert!(
                        m.masked.contains(c2),
                        "case {case}: lost middle code in {src:?} -> {:?}",
                        m.masked
                    );
                }
            }
        }
    }
    assert!(case > 4000, "expected a real sweep, got {case}");
}
