//! Golden-file pin of the SARIF 2.1.0 rendering over the fixture tree.
//!
//! The committed bytes are the contract with code-scanning ingesters:
//! any drift — field order, escaping, region placement — fails here
//! before it breaks a consumer. Regenerate with
//! `BLESS=1 cargo test -p incite-lint --test sarif_golden`.

use incite_lint::baseline::Baseline;
use incite_lint::engine;
use incite_lint::sarif;
use std::path::{Path, PathBuf};

fn manifest_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn sarif_output_matches_the_committed_golden_file() {
    let report = engine::run(&manifest_path("tests/fixtures/ws"), &Baseline::default())
        .expect("fixture tree scans");
    let rendered = sarif::report_sarif(&report);
    let golden_path = manifest_path("tests/golden/fixture.sarif");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("tests/golden/fixture.sarif is committed (regenerate with BLESS=1)");
    assert_eq!(
        rendered, golden,
        "SARIF rendering drifted from the committed golden file; \
         regenerate with BLESS=1 if the change is intentional"
    );
}
