//! Golden test for `--format json`: the machine-readable report is
//! consumed by CI (artifact upload, jq filters) and external tooling,
//! so its schema — key names, key order, the trace array — must not
//! drift silently. A deliberate schema change updates this file in the
//! same commit.

use incite_lint::baseline::Baseline;
use incite_lint::engine;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// Every finding object carries exactly these keys, in this order.
const FINDING_KEYS: &[&str] = &[
    "\"rule\": \"",
    "\"severity\": \"",
    "\"file\": \"",
    "\"line\": ",
    "\"message\": \"",
    "\"trace\": [",
    "\"grandfathered\": ",
];

/// The report footer carries exactly these keys, in this order.
const FOOTER_KEYS: &[&str] = &[
    "\"files_scanned\": ",
    "\"total\": ",
    "\"new\": ",
    "\"stale_baseline_entries\": ",
    "\"fuel\": ",
];

#[test]
fn finding_objects_keep_their_key_order() {
    let report = engine::run(&fixture_root(), &Baseline::default()).unwrap();
    let json = engine::report_json(&report);
    assert!(json.starts_with("{\n  \"findings\": [\n"), "header moved");

    let mut finding_lines = 0;
    for line in json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"rule\""))
    {
        finding_lines += 1;
        let mut at = 0;
        for key in FINDING_KEYS {
            match line[at..].find(key) {
                Some(pos) => at += pos + key.len(),
                None => panic!("`{key}` missing or out of order in: {line}"),
            }
        }
    }
    assert_eq!(
        finding_lines,
        report.findings.len(),
        "one object line per finding"
    );

    let mut at = 0;
    for key in FOOTER_KEYS {
        match json[at..].find(key) {
            Some(pos) => at += pos + key.len(),
            None => panic!("footer key `{key}` missing or out of order"),
        }
    }
}

/// Two full finding lines pinned byte-for-byte: one INC011 flow with an
/// interprocedural taint trace, one INC012 flow with a call-path trace.
#[test]
fn golden_taint_finding_lines_are_stable() {
    let report = engine::run(&fixture_root(), &Baseline::default()).unwrap();
    let json = engine::report_json(&report);

    let golden_inc011 = "    {\"rule\": \"INC011\", \"severity\": \"error\", \
         \"file\": \"crates/serve/src/leak.rs\", \"line\": 36, \
         \"message\": \"tainted document text reaches `eprintln!`\", \
         \"trace\": [\"`{doc}` interpolated (parameter `doc` of `serve::report` \
         tainted at call from `serve::handle` (source `serve::read_request`))\", \
         \"sink: `eprintln!` in `serve::report`\"], \"grandfathered\": false},";
    let golden_inc012 = "    {\"rule\": \"INC012\", \"severity\": \"error\", \
         \"file\": \"crates/core/src/nondet.rs\", \"line\": 28, \
         \"message\": \"`thread::current` in `core::salt` — observes the thread id; \
         reachable from scoring entry `core::ScoringEngine::score_all`\", \
         \"trace\": [\"scoring entry `core::ScoringEngine::score_all`\", \
         \"calls `core::tally`\", \"calls `core::salt`\", \
         \"`thread::current` observes the thread id\"], \"grandfathered\": false},";

    for golden in [golden_inc011, golden_inc012] {
        // The continuation-heavy literal collapses runs of spaces that the
        // real output does not have; normalize both sides the same way.
        let want = golden.split_whitespace().collect::<Vec<_>>().join(" ");
        assert!(
            json.lines()
                .any(|l| l.split_whitespace().collect::<Vec<_>>().join(" ") == want),
            "golden line drifted; wanted:\n{want}\ngot:\n{json}"
        );
    }
}

/// The `grandfathered` flag is the baseline comparison, not decoration:
/// all-new against an empty ledger, all-grandfathered against a ledger
/// regenerated from the same findings.
#[test]
fn grandfathered_flag_tracks_the_baseline() {
    let root = fixture_root();
    let fresh = engine::run(&root, &Baseline::default()).unwrap();
    let json = engine::report_json(&fresh);
    assert!(json.contains("\"grandfathered\": false"));
    assert!(!json.contains("\"grandfathered\": true"));

    let ledger = Baseline::from_findings(&fresh.findings);
    let ratcheted = engine::run(&root, &ledger).unwrap();
    let json = engine::report_json(&ratcheted);
    assert!(json.contains("\"grandfathered\": true"));
    assert!(!json.contains("\"grandfathered\": false"));
    assert!(json.contains("\"new\": 0,"));
}
