//! Seeded INC014 violations for the invariant-rule integration test.
//! This tree is fixture data the linter scans; it is not part of the
//! cargo workspace and never compiles.

use std::path::PathBuf;

pub struct Ledger {
    failpoints: Registry,
    dir: PathBuf,
}

impl Ledger {
    /// Consults the failpoint registry, then saves: the write inside
    /// `save_ledger` is reachable from this sweep site and stays clean.
    pub fn sweep_and_save(&mut self) {
        self.failpoints.check("ledger-save");
        self.save_ledger();
    }

    fn save_ledger(&self) {
        let payload = b"ledger-state";
        atomic_io::write_hashed(&self.dir.join("ledger"), payload);
    }

    /// Writes with no failpoint anywhere on the call path: the kill
    /// sweep can never cover this checkpoint.
    pub fn orphan_save(&self) {
        let payload = b"orphan-state";
        atomic_io::write_hashed(&self.dir.join("orphan"), payload);
    }
}

/// Acquires the append funnel outside any sweep.
pub fn open_log(dir: &PathBuf) -> AppendLog {
    atomic_io::AppendLog::open(&dir.join("records.log"))
}
