//! Seeded INC015 violation for the invariant-rule integration test:
//! a float accumulated across `map_indexed` slots folds in worker
//! completion order. The slot-vector variant below stays clean.

/// Accumulates into a captured float: worker completion order decides
/// the result bits.
pub fn fold_unordered(vals: &[f32], threads: usize) -> f32 {
    let mut total = 0.0f32;
    let _ = parallel::map_indexed(vals.len(), threads, |i| {
        total += vals[i];
        0u32
    });
    total
}

/// Returns per-slot values and folds the slot vector sequentially:
/// byte-identical at any thread count.
pub fn fold_slotted(vals: &[f32], threads: usize) -> f32 {
    let slots = parallel::map_indexed(vals.len(), threads, |i| vals[i] * 2.0);
    let mut total = 0.0f32;
    if let Ok(resolved) = slots {
        for slot in resolved {
            total += slot;
        }
    }
    total
}
