//! Seeded INC008/INC009 violations for the graph-rule integration
//! test. This tree is fixture data the linter scans; it is not part
//! of the cargo workspace and never compiles.

use std::sync::{Mutex, MutexGuard};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn lock_a(&self) -> MutexGuard<'_, u32> {
        match self.a.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_b(&self) -> MutexGuard<'_, u32> {
        match self.b.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires `a` then `b`.
    pub fn transfer(&self) -> u32 {
        let ga = self.lock_a();
        let gb = self.lock_b();
        *ga + *gb
    }

    /// Acquires `b` then `a`: the opposite order. One of these two
    /// functions must change for the workspace to be deadlock-free.
    pub fn audit(&self) -> u32 {
        let gb = self.lock_b();
        let ga = self.lock_a();
        *ga + *gb
    }

    /// Sleeps while holding `a`.
    pub fn throttle(&self) {
        let guard = self.lock_a();
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(guard);
    }

    /// Blocks through a callee while holding `a`.
    pub fn settle(&self) {
        let guard = self.lock_a();
        self.flush();
        drop(guard);
    }

    fn flush(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
