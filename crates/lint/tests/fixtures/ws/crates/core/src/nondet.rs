//! Seeded INC012 violations: nondeterminism reachable from a scoring
//! entry point, plus deterministic and unreachable variants that must
//! stay clean. Fixture data only; never compiled.

pub struct ScoringEngine;

impl ScoringEngine {
    /// Scoring entry: every needle reachable from here is a finding.
    pub fn score_all(&self, texts: &[String]) -> Vec<f32> {
        let spread = tally(texts);
        let ordered = ordered_tally(texts);
        vec![spread as f32, ordered as f32]
    }
}

/// One hop from the entry: iteration order depends on RandomState.
fn tally(texts: &[String]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for (i, t) in texts.iter().enumerate() {
        seen.insert(i, t.len());
    }
    seen.len() + salt()
}

/// Two hops from the entry (`score_all` → `tally` → `salt`): the
/// thread id varies run to run.
fn salt() -> usize {
    let id = std::thread::current().id();
    format!("{id:?}").len()
}

/// Deterministic counterpart on the same path: must NOT fire.
fn ordered_tally(texts: &[String]) -> usize {
    let mut seen = std::collections::BTreeMap::new();
    for (i, t) in texts.iter().enumerate() {
        seen.insert(i, t.len());
    }
    seen.len()
}

/// Not reachable from any scoring entry: must NOT fire.
pub fn offline_histogram(lens: &[usize]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for &n in lens {
        seen.insert(n, ());
    }
    seen.len()
}
