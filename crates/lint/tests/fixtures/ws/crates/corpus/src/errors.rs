//! Seeded INC013 violations: error variants carrying raw document
//! text, plus redacted and structure-only constructions that must
//! stay clean. Fixture data only; never compiled.

/// Parse failures surfaced to operators.
pub enum ParseError {
    /// Tuple variant carrying text: constructions from taint fire.
    BadRecord(String),
    /// Struct variant carrying text: same contract, braced form.
    Malformed { excerpt: String },
    /// Structure-only payload: never a finding.
    Truncated { line: usize },
}

/// Byte-bounded, content-free excerpt: a registered sanitizer.
fn redact_excerpt(raw: &str, max: usize) -> String {
    format!("[{} bytes, first {max} redacted]", raw.len())
}

/// Corpus parameters are presumed document text; the tuple
/// construction below leaks it, the structure-only one does not.
pub fn ingest(raw: &str, lineno: usize) -> Result<(), ParseError> {
    if raw.is_empty() {
        return Err(ParseError::Truncated { line: lineno });
    }
    if raw.len() > 1024 {
        return Err(ParseError::BadRecord(raw.to_string()));
    }
    Ok(())
}

/// Braced construction from taint.
pub fn describe(raw: &str) -> ParseError {
    ParseError::Malformed {
        excerpt: raw.to_string(),
    }
}

/// Sanitized construction: must NOT fire.
pub fn ingest_safely(raw: &str) -> Result<(), ParseError> {
    if raw.len() > 1024 {
        return Err(ParseError::BadRecord(redact_excerpt(raw, 40)));
    }
    Ok(())
}
