//! Seeded INC016 violations for the invariant-rule integration test:
//! wire-decoded lengths flow into bare arithmetic and a narrowing cast
//! before any bound is applied. The guarded and checked variants below
//! stay clean.

/// Reads a length-prefixed frame header without bounding the length.
pub fn frame_end(bytes: &[u8]) -> u32 {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let end = len + 4;
    let short = len as u16;
    end + u32::from(short)
}

/// Bounds the decoded length first, so the arithmetic is clean.
pub fn frame_end_guarded(bytes: &[u8]) -> u32 {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len < 4096 {
        return len + 4;
    }
    4096
}

/// Checked arithmetic discharges the obligation without a guard.
pub fn frame_end_checked(bytes: &[u8]) -> Option<u32> {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    len.checked_add(4)
}
