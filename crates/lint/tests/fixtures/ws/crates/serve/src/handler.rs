//! Seeded INC010 violation plus bounded variants that must stay
//! clean. Fixture data only; never compiled.

pub fn route(texts: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for text in texts {
        out.push(normalize(text));
    }
    let _ = bounded(texts);
    let _ = preallocated(texts);
    out
}

fn normalize(text: &str) -> String {
    text.trim().to_string()
}

/// Growth capped by a `max_batch` check: clean.
fn bounded(texts: &[String]) -> Vec<String> {
    let max_batch = 64;
    let mut out = Vec::new();
    for text in texts {
        if out.len() >= max_batch {
            break;
        }
        out.push(text.trim().to_string());
    }
    out
}

/// Growth into a pre-allocated buffer: clean.
fn preallocated(texts: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(texts.len());
    for text in texts {
        out.push(text.trim().to_string());
    }
    out
}
