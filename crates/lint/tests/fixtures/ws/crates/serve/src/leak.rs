//! Seeded INC011 violations: tainted document text flowing into
//! diagnostic sinks, plus a sanitized flow that must stay clean.
//! Fixture data only; never compiled.

pub struct Request {
    pub body: Vec<u8>,
}

/// Taint source by name: `(serve, read_request)`.
pub fn read_request(raw: &[u8]) -> String {
    String::from_utf8_lossy(raw).into_owned()
}

/// The serve error funnel: a registered sink function.
fn error_body(msg: &str) -> String {
    let mut out = String::from("error: ");
    out.push_str(msg);
    out
}

/// Content-free summary: a registered sanitizer.
fn redact(doc: &str) -> String {
    format!("[{} bytes]", doc.len())
}

/// Two-hop flow: the source is read here, but the leak happens in
/// `report`, which receives the text only through its parameter.
pub fn handle(req: &Request) {
    let doc = read_request(&req.body);
    report(doc);
}

/// `doc` is tainted interprocedurally (serve parameters are not
/// presumed text): the call in `handle` carries document text in.
fn report(doc: String) {
    eprintln!("could not parse: {doc}");
}

/// Direct flow into the serve error funnel.
pub fn reject(req: &Request) -> String {
    let doc = read_request(&req.body);
    error_body(&doc)
}

/// Sanitized flow: `redact` scrubs the span, so nothing fires.
pub fn log_safely(req: &Request) {
    let doc = read_request(&req.body);
    let safe = redact(&doc);
    eprintln!("rejected: {safe}");
}
