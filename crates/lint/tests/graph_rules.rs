//! End-to-end check of the graph rules (INC008–INC010), the taint
//! rules (INC011–INC013) and the invariant rules (INC014–INC016)
//! against the seeded fixture tree in `tests/fixtures/ws`: each rule
//! must fire exactly where a violation was planted and nowhere else,
//! and the baseline ratchet must round-trip to a fixed point over the
//! same findings.
//!
//! The complementary property — zero graph-rule findings on the *real*
//! workspace — is covered by `engine::tests::
//! repo_is_clean_against_committed_baseline`.

use incite_lint::baseline::{Baseline, BaselineError};
use incite_lint::engine;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn seeded_violations_fire_exactly_where_planted() {
    let report = engine::run(&fixture_root(), &Baseline::default()).unwrap();

    // INC005 reports the spec files as missing on this partial tree;
    // that is the expected behaviour for a non-workspace root, not part
    // of what this test pins down.
    let graph: Vec<(&str, &str, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule != "INC005")
        .map(|f| (f.file.as_str(), f.rule, f.line))
        .collect();
    assert_eq!(
        graph,
        vec![
            // `fold_unordered` accumulates a captured float inside the
            // `map_indexed` closure; `fold_slotted` folds the returned
            // slot vector and stays clean.
            ("crates/core/src/folds.rs", "INC015", 10),
            // `transfer` takes a then b; `audit` takes b then a.
            ("crates/core/src/locks.rs", "INC008", 30),
            ("crates/core/src/locks.rs", "INC008", 38),
            // `throttle` sleeps under the guard; `settle` blocks through
            // a callee.
            ("crates/core/src/locks.rs", "INC009", 45),
            ("crates/core/src/locks.rs", "INC009", 52),
            // `tally` iterates a HashMap one hop from `score_all`;
            // `salt` reads the thread id two hops out. The BTreeMap
            // variant and the unreachable `offline_histogram` stay
            // clean.
            ("crates/core/src/nondet.rs", "INC012", 18),
            ("crates/core/src/nondet.rs", "INC012", 28),
            // `orphan_save` and the free `open_log` acquire the write
            // funnel with no failpoint on any path; `sweep_and_save` →
            // `save_ledger` is swept and stays clean.
            ("crates/core/src/unswept.rs", "INC014", 29),
            ("crates/core/src/unswept.rs", "INC014", 35),
            // `ingest` stuffs raw text into `ParseError::BadRecord`;
            // `describe` does the braced form. The structure-only
            // `Truncated` and the `redact_excerpt`-wrapped construction
            // stay clean.
            ("crates/corpus/src/errors.rs", "INC013", 27),
            ("crates/corpus/src/errors.rs", "INC013", 34),
            // `frame_end` runs bare `+`, a narrowing `as u16` and a
            // transitively tainted sum on a wire-decoded length; the
            // guarded and checked variants stay clean.
            ("crates/corpus/src/jsonl.rs", "INC016", 9),
            ("crates/corpus/src/jsonl.rs", "INC016", 10),
            ("crates/corpus/src/jsonl.rs", "INC016", 11),
            // `route` grows `out` in a loop with no visible bound; the
            // `max_batch` and `with_capacity` variants stay clean.
            ("crates/serve/src/handler.rs", "INC010", 7),
            // `report` leaks text it received only through its
            // parameter (two-hop flow); `reject` hands text to the
            // `error_body` sink. The `redact`-sanitized flow in
            // `log_safely` stays clean.
            ("crates/serve/src/leak.rs", "INC011", 36),
            ("crates/serve/src/leak.rs", "INC011", 42),
        ],
        "graph findings moved: {:#?}",
        report.findings
    );
    assert!(report
        .findings
        .iter()
        .filter(|f| f.rule == "INC005")
        .all(|f| f.message.contains("missing")));
}

#[test]
fn inc008_messages_point_at_the_opposite_order() {
    let report = engine::run(&fixture_root(), &Baseline::default()).unwrap();
    let inc008: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "INC008")
        .collect();
    assert_eq!(inc008.len(), 2);
    // Each site names both locks and the conflicting location.
    assert!(inc008[0].message.contains("core/Pair.a"));
    assert!(inc008[0].message.contains("core/Pair.b"));
    assert!(inc008[0].message.contains("crates/core/src/locks.rs:38"));
    assert!(inc008[1].message.contains("crates/core/src/locks.rs:30"));
}

/// The INC011 finding in `report` is genuinely interprocedural: the
/// source is read in `handle`, the leak sits in a function that only
/// ever saw the text through its parameter, and the trace narrates
/// that chain end to end.
#[test]
fn inc011_trace_narrates_the_interprocedural_hop() {
    let report = engine::run(&fixture_root(), &Baseline::default()).unwrap();
    let leak = report
        .findings
        .iter()
        .find(|f| f.rule == "INC011" && f.file == "crates/serve/src/leak.rs" && f.line == 36)
        .expect("the two-hop eprintln leak must fire");
    let trace = leak.trace.join(" | ");
    assert!(
        trace.contains("parameter `doc` of `serve::report`"),
        "trace must name the tainted parameter: {trace}"
    );
    assert!(
        trace.contains("call from `serve::handle`"),
        "trace must name the call site that carried the taint: {trace}"
    );
    assert!(
        trace.contains("source `serve::read_request`"),
        "trace must bottom out at the source: {trace}"
    );

    // The INC012 trace walks the call path from the scoring entry.
    let nondet = report
        .findings
        .iter()
        .find(|f| f.rule == "INC012" && f.line == 28)
        .expect("the two-hop thread-id observation must fire");
    assert_eq!(
        nondet.trace[0],
        "scoring entry `core::ScoringEngine::score_all`"
    );
    assert!(nondet
        .trace
        .iter()
        .any(|s| s.contains("calls `core::tally`")));
}

/// `--update-baseline` then `check` is a fixed point: regenerating the
/// ledger from current findings and ratcheting against it yields no new
/// findings, no stale entries, and a clean `verify`.
#[test]
fn update_baseline_then_check_is_a_fixed_point() {
    let root = fixture_root();
    let report = engine::run(&root, &Baseline::default()).unwrap();
    assert!(
        !report.findings.is_empty(),
        "the fixture tree must have findings for the round-trip to be meaningful"
    );

    // What --update-baseline writes, through its serialized form.
    let regenerated = Baseline::from_findings(&report.findings);
    let reparsed = Baseline::parse(&regenerated.to_json()).unwrap();
    assert_eq!(reparsed, regenerated, "serialization must round-trip");

    let second = engine::run(&root, &reparsed).unwrap();
    assert_eq!(second.findings, report.findings, "runs are deterministic");
    assert!(second.comparison.new_findings.is_empty());
    assert!(second.comparison.improved.is_empty());
    assert_eq!(reparsed.verify(&second.findings), Ok(()));
}

/// A hand-edited count increase is rejected with a typed error, exactly
/// identifying the inflated entry.
#[test]
fn hand_inflated_baseline_is_rejected_with_a_typed_error() {
    let root = fixture_root();
    let report = engine::run(&root, &Baseline::default()).unwrap();
    let mut ledger = Baseline::from_findings(&report.findings);
    let entry = ledger
        .counts
        .get_mut("INC009")
        .and_then(|files| files.get_mut("crates/core/src/locks.rs"))
        .expect("fixture seeds INC009 in locks.rs");
    let honest = *entry;
    *entry += 1;

    match ledger.verify(&report.findings) {
        Err(BaselineError::Inflated {
            rule,
            file,
            grandfathered,
            current,
        }) => {
            assert_eq!(rule, "INC009");
            assert_eq!(file, "crates/core/src/locks.rs");
            assert_eq!(grandfathered, honest + 1);
            assert_eq!(current, honest);
        }
        other => panic!("expected a typed Inflated rejection, got {other:?}"),
    }
}
