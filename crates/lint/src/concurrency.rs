//! Pass 2: the graph-aware concurrency rules.
//!
//! | rule | invariant |
//! |------|-----------|
//! | INC008 | workspace locks are acquired in one consistent order |
//! | INC009 | no blocking operation while a lock guard is live |
//! | INC010 | serve request handlers only grow buffers under a bound |
//!
//! All three consume the [`crate::graph::Workspace`] built in pass 1.
//! INC008 looks for a pair of concrete lock keys acquired in both orders
//! anywhere in the workspace (the classic deadlock shape); unknown lock
//! identities are excluded — an unresolvable receiver must not fabricate
//! an ordering conflict. INC009 reports every blocking operation (I/O,
//! sleep, channel/condvar waits, joins — directly or through a callee)
//! replayed under a live guard; a `Condvar` wait is exempt for the guard
//! it atomically releases, and unknown guards *do* count because the
//! blocking itself is certain. INC010 walks the serve crate's handler
//! entry points (`route`, `read_request`) through resolved call edges and
//! flags `.push(`/`.extend(`/`.push_str(`/`.push_back(` inside loops with
//! no visible bound: no `with_capacity` pre-allocation of the receiver,
//! and no capacity word (`max_batch`, `queue_depth`, `capacity`) or
//! ALL-CAPS constant inside the loop.

use crate::graph::Workspace;
use crate::items::{contains_word, is_ident_byte, line_at};
use crate::lexer::matching_brace;
use crate::rules::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Handler entry points for INC010, by function name within the serve
/// crate.
const HANDLER_ENTRIES: &[&str] = &["route", "read_request"];

/// Buffer-growth calls that INC010 looks for inside loops.
const GROWTH_NEEDLES: &[&str] = &[".push(", ".extend(", ".push_str(", ".push_back("];

/// Words that signal an explicit capacity bound inside a loop.
const BOUND_WORDS: &[&str] = &["max_batch", "queue_depth", "capacity"];

/// Runs INC008–INC010 over the workspace graph.
pub fn check(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    inc008_lock_order(ws, &mut findings);
    inc009_blocking_under_lock(ws, &mut findings);
    inc010_unbounded_growth(ws, &mut findings);

    // A site can be observed through several paths (e.g. one blocking
    // callee under two aliased guards); report each site once per rule
    // and message.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.rule, f.file.clone(), f.line, f.message.clone())));

    // Respect per-line suppressions, matching the pattern rules.
    let by_path: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    findings.retain(|f| {
        !by_path
            .get(f.file.as_str())
            .is_some_and(|&i| ws.files[i].masked.is_suppressed(f.rule, f.line))
    });
    findings
}

/// INC008: the same two concrete locks acquired in both orders.
fn inc008_lock_order(ws: &Workspace<'_>, findings: &mut Vec<Finding>) {
    // Unordered pair → the sites for each direction.
    let mut by_pair: BTreeMap<(String, String), [Vec<usize>; 2]> = BTreeMap::new();
    for (i, p) in ws.pairs.iter().enumerate() {
        let (key, dir) = if p.first <= p.second {
            ((p.first.clone(), p.second.clone()), 0)
        } else {
            ((p.second.clone(), p.first.clone()), 1)
        };
        by_pair.entry(key).or_default()[dir].push(i);
    }
    for ((a, b), dirs) in &by_pair {
        let [fwd, rev] = dirs;
        if fwd.is_empty() || rev.is_empty() {
            continue;
        }
        for (&site, opposite) in fwd
            .iter()
            .map(|s| (s, &rev[0]))
            .chain(rev.iter().map(|s| (s, &fwd[0])))
        {
            let p = &ws.pairs[site];
            let o = &ws.pairs[*opposite];
            let via = p
                .via
                .as_ref()
                .map(|f| format!(" (via `{f}`)"))
                .unwrap_or_default();
            findings.push(Finding {
                rule: "INC008",
                severity: Severity::Error,
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "lock `{}` acquired while `{}` is held{via}, but the opposite \
                     order is taken at {}:{} — inconsistent ordering between \
                     `{a}` and `{b}` can deadlock",
                    p.second, p.first, o.file, o.line
                ),
                trace: Vec::new(),
            });
        }
    }
}

/// INC009: a blocking operation replayed while a guard was live.
fn inc009_blocking_under_lock(ws: &Workspace<'_>, findings: &mut Vec<Finding>) {
    for site in &ws.blocked {
        findings.push(Finding {
            rule: "INC009",
            severity: Severity::Error,
            file: site.file.clone(),
            line: site.line,
            message: format!(
                "blocking {} while guard of `{}` is live — release the lock \
                 before blocking (drop the guard or narrow its scope)",
                site.what, site.guard
            ),
            trace: Vec::new(),
        });
    }
}

/// INC010: unbounded buffer growth in a loop on the serve handler path.
fn inc010_unbounded_growth(ws: &Workspace<'_>, findings: &mut Vec<Finding>) {
    // Reachable set: BFS from the handler entries through resolved call
    // edges, staying inside the serve crate.
    let mut reach: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test
                && ws.files[f.file].crate_name == "serve"
                && HANDLER_ENTRIES.contains(&f.name.as_str())
        })
        .map(|(i, _)| i)
        .collect();
    reach.extend(queue.iter().copied());
    while let Some(idx) = queue.pop_front() {
        for &callee in &ws.fns[idx].edges {
            if ws.files[ws.fns[callee].file].crate_name == "serve" && reach.insert(callee) {
                queue.push_back(callee);
            }
        }
    }

    for &idx in &reach {
        let node = &ws.fns[idx];
        let Some(body) = node.body else { continue };
        let file = &ws.files[node.file];
        let text = &file.masked.masked;
        let bytes = text.as_bytes();

        for loop_span in loop_spans(bytes, body.start, body.end) {
            let loop_text = &text[loop_span.0..loop_span.1];
            if BOUND_WORDS.iter().any(|w| contains_word(loop_text, w))
                || has_all_caps_ident(loop_text)
            {
                continue;
            }
            for needle in GROWTH_NEEDLES {
                let mut from = 0;
                while let Some(rel) = loop_text[from..].find(needle) {
                    let at = loop_span.0 + from + rel;
                    from += rel + 1;
                    let recv = receiver_ident(bytes, at);
                    if !recv.is_empty()
                        && preallocated_with_capacity(&text[body.start..loop_span.0], &recv)
                    {
                        continue;
                    }
                    let call = &needle[1..needle.len() - 1];
                    findings.push(Finding {
                        rule: "INC010",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: line_at(&file.lines, at),
                        message: format!(
                            "`{call}()` grows a buffer in a loop on the request-handler \
                             path (`{}`) with no visible bound — pre-allocate with \
                             `with_capacity` or check against a `max_batch`/\
                             `queue_depth` limit",
                            node.name
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
    }
}

/// Spans of `for`/`while`/`loop` bodies (keyword to matching close brace)
/// inside `[from, to)`. Nested loops yield nested spans, so a needle in
/// an inner loop is also seen by the outer — dedup handles the repeats.
fn loop_spans(bytes: &[u8], from: usize, to: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = from;
    while i < to {
        if !is_ident_byte(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < to && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if start > from && is_ident_byte(bytes[start - 1]) {
            continue;
        }
        let word = &bytes[start..i];
        if !(word == b"for" || word == b"while" || word == b"loop") {
            continue;
        }
        // The loop header cannot contain a bare `{`, so the first open
        // brace after the keyword starts the body.
        let mut j = i;
        while j < to && bytes[j] != b'{' {
            j += 1;
        }
        if j >= to {
            break;
        }
        match matching_brace(bytes, j) {
            Some(close) => spans.push((start, (close + 1).min(to))),
            None => break,
        }
    }
    spans
}

/// The identifier immediately left of a `.push(`-style needle at `at`.
fn receiver_ident(bytes: &[u8], at: usize) -> String {
    let mut start = at;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..at]).into_owned()
}

/// Whether `before` (the body text preceding the loop) declares `recv`
/// in a `let` statement that pre-allocates with `with_capacity`.
fn preallocated_with_capacity(before: &str, recv: &str) -> bool {
    before.split(';').any(|stmt| {
        contains_word(stmt, "let") && contains_word(stmt, recv) && stmt.contains("with_capacity")
    })
}

/// A word-bounded ALL-CAPS identifier (≥2 chars, at least one letter):
/// the shape of a `const` bound like `MAX_HEAD_BYTES`.
fn has_all_caps_ident(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let word = &bytes[start..i];
        if word.len() >= 2
            && word.iter().any(|b| b.is_ascii_uppercase())
            && word
                .iter()
                .all(|&b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::MaskedFile;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, MaskedFile)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), MaskedFile::new(s)))
            .collect();
        let refs: Vec<(String, &MaskedFile)> = owned.iter().map(|(p, m)| (p.clone(), m)).collect();
        let ws = graph::build(&refs);
        check(&ws)
    }

    #[test]
    fn inc008_fires_on_inconsistent_order_only() {
        let src = "\
use std::sync::Mutex;
pub struct P { a: Mutex<u32>, b: Mutex<u32> }
impl P {
    pub fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); let _ = (ga, gb); }
    pub fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); let _ = (ga, gb); }
}
";
        let f = run(&[("crates/core/src/locks.rs", src)]);
        let inc008: Vec<_> = f.iter().filter(|f| f.rule == "INC008").collect();
        assert_eq!(inc008.len(), 2, "{f:?}");
        assert!(inc008[0].message.contains("deadlock"));

        // Consistent order in two places: no finding.
        let consistent = "\
use std::sync::Mutex;
pub struct P { a: Mutex<u32>, b: Mutex<u32> }
impl P {
    pub fn x(&self) { let ga = self.a.lock(); let gb = self.b.lock(); let _ = (ga, gb); }
    pub fn y(&self) { let ga = self.a.lock(); let gb = self.b.lock(); let _ = (ga, gb); }
}
";
        assert!(run(&[("crates/core/src/locks.rs", consistent)]).is_empty());
    }

    #[test]
    fn inc009_fires_direct_and_transitive() {
        let src = "\
use std::sync::Mutex;
pub struct S { m: Mutex<u32> }
impl S {
    pub fn direct(&self) {
        let g = self.m.lock();
        std::thread::sleep(d);
        drop(g);
    }
    pub fn transitive(&self) {
        let g = self.m.lock();
        self.slow();
        drop(g);
    }
    fn slow(&self) { std::thread::sleep(d); }
}
";
        let f = run(&[("crates/core/src/s.rs", src)]);
        let inc009: Vec<_> = f.iter().filter(|f| f.rule == "INC009").collect();
        assert_eq!(inc009.len(), 2, "{f:?}");
        assert!(inc009.iter().any(|f| f.message.contains("`slow`")));
    }

    #[test]
    fn inc009_suppression_silences_the_site() {
        let src = "\
use std::sync::Mutex;
pub struct S { m: Mutex<u32> }
impl S {
    pub fn direct(&self) {
        let g = self.m.lock();
        std::thread::sleep(d); // incite-lint: allow(INC009)
        drop(g);
    }
}
";
        assert!(run(&[("crates/core/src/s.rs", src)]).is_empty());
    }

    #[test]
    fn inc010_fires_only_on_unbounded_handler_loops() {
        let src = "\
pub fn route(texts: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for t in texts {
        out.push(t.clone());
    }
    out
}
pub fn bounded(texts: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(texts.len());
    for t in texts {
        out.push(t.clone());
    }
    out
}
pub fn capped(texts: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for t in texts {
        if out.len() >= MAX_DOCS { break; }
        out.push(t.clone());
    }
    out
}
";
        let f = run(&[("crates/serve/src/handler.rs", src)]);
        let inc010: Vec<_> = f.iter().filter(|f| f.rule == "INC010").collect();
        assert_eq!(inc010.len(), 1, "{f:?}");
        assert_eq!(inc010[0].line, 4);
        assert!(inc010[0].message.contains("`route`"));
    }

    #[test]
    fn inc010_follows_call_edges_but_not_other_crates() {
        let serve = "\
pub fn route(texts: &[String]) -> Vec<String> {
    ingest(texts)
}
fn ingest(texts: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for t in texts {
        out.push(t.clone());
    }
    out
}
";
        // The same shape outside a handler path is not flagged.
        let core = "\
pub fn accumulate(texts: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for t in texts {
        out.push(t.clone());
    }
    out
}
";
        let f = run(&[
            ("crates/core/src/acc.rs", core),
            ("crates/serve/src/handler.rs", serve),
        ]);
        let inc010: Vec<_> = f.iter().filter(|f| f.rule == "INC010").collect();
        assert_eq!(inc010.len(), 1, "{f:?}");
        assert_eq!(inc010[0].file, "crates/serve/src/handler.rs");
        assert!(inc010[0].message.contains("`ingest`"));
    }
}
