//! SARIF 2.1.0 rendering (minimal subset).
//!
//! Enough of the [SARIF 2.1.0] schema for code-scanning UIs to ingest the
//! report: one run, the driver's rule catalog (restricted to rules that
//! actually fired, keeping the file reviewable), and one result per
//! finding with a `physicalLocation`. Rendering is hand-rolled and
//! deterministic — same report in, same bytes out — so the golden-file
//! test and the CI thread-invariance diff both hold byte-for-byte.
//!
//! File-level findings (line 0, e.g. INC005 spec coverage) carry no
//! `region`: SARIF line numbers are 1-based and a fabricated line 1
//! would point reviewers at the wrong place.
//!
//! [SARIF 2.1.0]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::engine::Report;
use crate::rules::RuleInfo;
use std::collections::BTreeSet;

/// Renders `report` as a SARIF 2.1.0 document.
pub fn report_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"incite-lint\",\n");
    out.push_str("          \"rules\": [\n");

    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    let mut first = true;
    for rule in fired {
        let info = RuleInfo::find(rule);
        let summary = info.map(|r| r.summary).unwrap_or("");
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(rule),
            esc(summary)
        ));
    }
    if !first {
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");

    for (i, f) in report.findings.iter().enumerate() {
        let level = match f.severity.as_str() {
            "warning" => "warning",
            _ => "error",
        };
        let location = if f.line == 0 {
            format!(
                "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}}}}}",
                esc(&f.file)
            )
        } else {
            format!(
                "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"region\": {{\"startLine\": {}}}}}}}",
                esc(&f.file),
                f.line
            )
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{}]}}{}\n",
            esc(f.rule),
            level,
            esc(&f.message),
            location,
            if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::rules::{Finding, Severity};

    fn report_with(findings: Vec<Finding>) -> Report {
        let comparison = Baseline::default().compare(&findings);
        Report {
            files_scanned: 1,
            files_reanalyzed: 1,
            fuel: 1,
            comparison,
            findings,
        }
    }

    #[test]
    fn empty_report_is_well_formed() {
        let sarif = report_sarif(&report_with(Vec::new()));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"incite-lint\""));
        assert!(sarif.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn findings_render_rule_level_and_location() {
        let finding = Finding {
            rule: "INC001",
            severity: Severity::Error,
            file: "crates/core/src/a.rs".to_string(),
            line: 7,
            message: "say \"no\" to unwrap".to_string(),
            trace: Vec::new(),
        };
        let sarif = report_sarif(&report_with(vec![finding]));
        assert!(sarif.contains("\"ruleId\": \"INC001\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("say \\\"no\\\" to unwrap"));
        // The driver catalog carries the fired rule with its summary.
        assert!(sarif.contains("{\"id\": \"INC001\", \"shortDescription\""));
    }

    #[test]
    fn file_level_findings_omit_the_region() {
        let finding = Finding {
            rule: "INC005",
            severity: Severity::Error,
            file: "crates/taxonomy/src/lib.rs".to_string(),
            line: 0,
            message: "spec constant missing".to_string(),
            trace: Vec::new(),
        };
        let sarif = report_sarif(&report_with(vec![finding]));
        assert!(!sarif.contains("startLine"));
        assert!(sarif.contains("\"uri\": \"crates/taxonomy/src/lib.rs\""));
    }
}
