//! Pass 3: interprocedural taint & purity dataflow (INC011–INC013).
//!
//! | rule | invariant |
//! |------|-----------|
//! | INC011 | tainted document text never reaches a diagnostic sink |
//! | INC012 | no nondeterminism source reachable from scoring entries |
//! | INC013 | error variants carrying String are never built from taint |
//!
//! The pass consumes the [`crate::graph::Workspace`] built in pass 1 and
//! mirrors its transitive-acquires machinery: a per-function summary
//! (`returns tainted?`, `which params are tainted?`) is iterated to a
//! fixpoint over the resolved call edges, then a final replay over each
//! body reports flows into sinks.
//!
//! The taint lattice is deliberately two-point (clean | tainted-with-a-
//! reason); precision comes from *where* taint is introduced and killed:
//!
//! * **Sources** — functions that read corpus jsonl or request bodies
//!   ([`SOURCE_FNS`]), `.text`/`.texts`/`.body` field reads
//!   ([`SOURCE_FIELDS`]), and text-typed parameters of the crates that
//!   exist to process document text ([`PRESUME_PARAM_CRATES`]).
//! * **Sanitizers** — `pii::redact`, `corpus::redact_excerpt`, the
//!   feature-hashing family and the panic-message funnel
//!   ([`SANITIZER_NAMES`]): their results are clean by contract, and
//!   their argument spans are scrubbed before any other indicator runs.
//! * **Sinks** — stderr/stdout macros, serve error bodies and HTTP
//!   response constructors, the CLI error funnel ([`SINK_MACROS`],
//!   [`SINK_FNS`]), and (INC013) constructions of error-enum variants
//!   whose payload can carry text.
//!
//! Known approximation classes are catalogued in DESIGN.md §15; the
//! guiding rule is to over-taint values (false positives are paid down
//! or suppressed with a visible pragma) but never to widen the sink set
//! speculatively.

use crate::graph::{matching_paren, Event, FnNode, Workspace};
use crate::items::{line_at, FnItem};
use crate::lexer::matching_brace;
use crate::rules::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates in taint scope: the data plane. `bench` drives experiments on
/// synthetic corpora; `lint` analyses source text, not victim text.
const SCOPE: &[&str] = &[
    "cli",
    "core",
    "corpus",
    "ml",
    "pii",
    "regexlite",
    "serve",
    "stats",
    "textkit",
];

/// Crates whose text-typed parameters are presumed tainted even without
/// a tainted call site: they exist to process document text. The other
/// scope crates (core, serve, cli, …) get parameter taint
/// interprocedurally from actual call sites.
const PRESUME_PARAM_CRATES: &[&str] = &["corpus", "ml", "pii", "textkit"];

/// Type words that mark a parameter or return type as able to carry
/// text. `u8` covers `&[u8]` byte buffers (raw corpus lines).
const TEXT_TYPE_WORDS: &[&str] = &[
    "String", "str", "u8", "Document", "Corpus", "Request", "Received",
];

/// Functions whose return value IS document text, by (crate, name).
const SOURCE_FNS: &[(&str, &str)] = &[
    ("corpus", "read_jsonl"),
    ("corpus", "read_jsonl_quarantine"),
    ("corpus", "parse_line"),
    ("corpus", "generate"),
    ("serve", "read_request"),
    ("serve", "parse_docs"),
    ("cli", "load_corpus_lines"),
];

/// Field reads that yield document text wherever they appear.
const SOURCE_FIELDS: &[&str] = &["text", "texts", "body"];

/// Sanitizers, matched lexically by callee name so that nested calls
/// inside argument spans scrub too. Their output is clean by contract;
/// each has a test pinning that contract in its home crate.
const SANITIZER_NAMES: &[&str] = &[
    "redact",
    "redact_excerpt",
    "fnv1a",
    "fnv64_hex",
    "hash_features",
    "slot",
    "panic_message",
];

/// Methods that return metadata, not content: calling one on a tainted
/// receiver yields a clean value. `kind` is the workspace convention for
/// static error-kind descriptors (e.g. `ScoreError::kind`).
const CLEAN_METHODS: &[&str] = &["len", "is_empty", "capacity", "count", "kind"];

/// Macro sinks: diagnostics that leave the process. `write!`/`writeln!`
/// are deliberately absent — writer-directed output is the program's
/// contract surface (CLI stdout, Display impls); INC013 polices what
/// error types may carry instead.
const SINK_MACROS: &[&str] = &[
    "println",
    "eprintln",
    "print",
    "eprint",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "unreachable",
    "todo",
];

/// Function sinks by (crate, name, description): strings passed here
/// become visible outside the data plane.
const SINK_FNS: &[(&str, &str, &str)] = &[
    ("serve", "error_body", "serve error body"),
    ("serve", "json", "serve HTTP response"),
    ("serve", "text", "serve HTTP response"),
    ("cli", "err", "CLI error funnel"),
];

/// Nondeterminism needles for INC012, with what each one observes.
const NONDET_NEEDLES: &[(&str, &str)] = &[
    ("Instant::now", "reads the monotonic clock"),
    ("SystemTime::now", "reads the wall clock"),
    ("thread_rng", "draws from the ambient RNG"),
    ("thread::current", "observes the thread id"),
    ("RandomState", "uses a randomly seeded hasher"),
    ("HashMap", "iterates in RandomState (per-process) order"),
    ("HashSet", "iterates in RandomState (per-process) order"),
    (".as_ptr() as ", "observes an address as an integer"),
];

/// Scoring entry points for INC012: every method of `ScoringEngine`,
/// plus the pipeline drivers.
const SCORING_ENTRY_FNS: &[&str] = &["run_pipeline", "run_pipeline_resumable"];
const SCORING_ENTRY_TY: &str = "ScoringEngine";

/// One parameter of a workspace function, as parsed from its signature.
struct Param {
    name: String,
    text: bool,
}

/// Per-function dataflow summary, iterated to a fixpoint.
struct FnInfo {
    /// File is in a scope crate and the fn is non-test with a body.
    analyzed: bool,
    params: Vec<Param>,
    /// Taint reason per parameter (presumed or propagated).
    param_taint: Vec<Option<String>>,
    /// The return type can carry text at all.
    ret_text: bool,
    /// Taint reason for the return value, if any.
    ret_taint: Option<String>,
}

/// Runs INC011–INC013 over the workspace graph. Returns the findings
/// plus the fuel burned (events × fixpoint iterations).
pub fn check(ws: &Workspace<'_>) -> (Vec<Finding>, u64) {
    let mut fuel: u64 = 0;
    let scoped: Vec<bool> = ws
        .files
        .iter()
        .map(|f| SCOPE.contains(&f.crate_name.as_str()))
        .collect();

    let enum_table = build_enum_table(ws);
    let mut infos = seed_infos(ws, &scoped);

    // B2-style fixpoint: propagate return taint and call-site argument
    // taint until no summary changes. Each iteration replays every body;
    // the chain depth of real flows is small, so the cap is generous.
    for _ in 0..12 {
        let mut changed = false;
        for fi in 0..ws.fns.len() {
            if !infos[fi].analyzed {
                continue;
            }
            fuel += ws.fns[fi].events.len() as u64 + 16;
            let mut sink = NoReport;
            changed |= analyze_body(ws, fi, &mut infos, &enum_table, &mut sink);
        }
        if !changed {
            break;
        }
    }

    // Final replay: same walk, now reporting flows into sinks.
    let mut findings = Vec::new();
    for fi in 0..ws.fns.len() {
        if !infos[fi].analyzed {
            continue;
        }
        fuel += ws.fns[fi].events.len() as u64 + 16;
        let mut sink = Report {
            ws,
            fi,
            findings: &mut findings,
        };
        analyze_body(ws, fi, &mut infos, &enum_table, &mut sink);
    }

    inc012_nondeterminism(ws, &scoped, &mut findings, &mut fuel);

    // A flow can be observed through several paths; report each site
    // once per rule and message, then respect per-line suppressions.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.rule, f.file.clone(), f.line, f.message.clone())));
    let by_path: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    findings.retain(|f| {
        !by_path
            .get(f.file.as_str())
            .is_some_and(|&i| ws.files[i].masked.is_suppressed(f.rule, f.line))
    });
    (findings, fuel)
}

/// (enum name, variant name) → payload can carry text. Enum names are
/// unique enough across the workspace that the crate is not part of the
/// key; a collision would only widen the checked set.
fn build_enum_table(ws: &Workspace<'_>) -> BTreeMap<(String, String), bool> {
    let mut table = BTreeMap::new();
    for file in &ws.files {
        for e in &file.items.enums {
            for v in &e.variants {
                table.insert((e.name.clone(), v.name.clone()), v.carries_text);
            }
        }
    }
    table
}

/// Builds the initial per-function summaries: signature parse, source
/// seeding, parameter presumption.
fn seed_infos(ws: &Workspace<'_>, scoped: &[bool]) -> Vec<FnInfo> {
    let mut infos = Vec::with_capacity(ws.fns.len());
    for node in &ws.fns {
        let file = &ws.files[node.file];
        let item = fn_item(file, node);
        let (params, ret_text) = match item {
            Some(it) => parse_sig(&it.sig),
            None => (Vec::new(), false),
        };
        let analyzed = scoped[node.file] && !node.in_test && node.body.is_some();
        let crate_name = file.crate_name.as_str();
        let presume = PRESUME_PARAM_CRATES.contains(&crate_name);
        let param_taint: Vec<Option<String>> = params
            .iter()
            .map(|p| {
                (analyzed && presume && p.text).then(|| {
                    format!(
                        "parameter `{}` of `{}::{}` (presumed document text)",
                        p.name, crate_name, node.name
                    )
                })
            })
            .collect();
        let ret_taint = (analyzed
            && SOURCE_FNS
                .iter()
                .any(|(c, n)| *c == crate_name && *n == node.name))
        .then(|| format!("source `{}::{}`", crate_name, node.name));
        infos.push(FnInfo {
            analyzed,
            params,
            param_taint,
            ret_text: ret_text || ret_taint.is_some(),
            ret_taint,
        });
    }
    infos
}

/// Finds the `FnItem` for a graph node (same file, same line).
fn fn_item<'a>(file: &'a crate::graph::FileGraph<'_>, node: &FnNode) -> Option<&'a FnItem> {
    file.items
        .fns
        .iter()
        .find(|it| it.line == node.line && it.name == node.name)
}

/// Parses `(params) -> ret` out of a signature: parameter names with a
/// text-typed flag, plus whether the return type can carry text.
fn parse_sig(sig: &str) -> (Vec<Param>, bool) {
    let bytes = sig.as_bytes();
    let open = match sig.find('(') {
        Some(o) => o,
        None => return (Vec::new(), false),
    };
    let close = matching_paren(bytes, open, bytes.len());
    let inner = &sig[open + 1..close.min(sig.len())];
    let mut params = Vec::new();
    for piece in crate::items::split_top_level(inner, ',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let (pat, ty) = match split_param(piece) {
            Some(p) => p,
            None => continue, // receiver (`&self`, `&mut self`, `self`)
        };
        let name = pat
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .rfind(|w| !w.is_empty() && *w != "mut" && *w != "ref")
            .unwrap_or_default()
            .to_string();
        if name.is_empty() || name == "_" {
            continue;
        }
        let text = TEXT_TYPE_WORDS.iter().any(|w| contains_word(ty, w));
        params.push(Param { name, text });
    }
    let after = &sig[close.min(sig.len())..];
    let ret = match after.find("->") {
        Some(a) => {
            let rest = &after[a + 2..];
            rest.split("where").next().unwrap_or(rest)
        }
        None => "",
    };
    let ret_text = TEXT_TYPE_WORDS.iter().any(|w| contains_word(ret, w));
    (params, ret_text)
}

/// Splits one parameter at its top-level `:`; `None` for receivers.
fn split_param(piece: &str) -> Option<(&str, &str)> {
    let mut depth = 0i32;
    for (i, c) in piece.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ':' if depth == 0 => {
                // `::` is a path, not the pattern/type separator.
                if piece[i + 1..].starts_with(':') {
                    continue;
                }
                return Some((&piece[..i], &piece[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

/// Word-bounded containment (local copy of the items helper, on &str).
fn contains_word(hay: &str, word: &str) -> bool {
    crate::items::contains_word(hay, word)
}

/// What the final replay does when a tainted value hits a sink. The
/// propagation iterations use [`NoReport`] so summaries converge before
/// anything is reported.
trait SinkObserver {
    fn flow(&mut self, rule: &'static str, off: usize, message: String, trace: Vec<String>);
}

struct NoReport;
impl SinkObserver for NoReport {
    fn flow(&mut self, _: &'static str, _: usize, _: String, _: Vec<String>) {}
}

struct Report<'a, 'b> {
    ws: &'a Workspace<'b>,
    fi: usize,
    findings: &'a mut Vec<Finding>,
}
impl SinkObserver for Report<'_, '_> {
    fn flow(&mut self, rule: &'static str, off: usize, message: String, trace: Vec<String>) {
        let node = &self.ws.fns[self.fi];
        let file = &self.ws.files[node.file];
        self.findings.push(Finding {
            rule,
            severity: Severity::Error,
            file: file.path.clone(),
            line: line_at(&file.lines, off),
            message,
            trace,
        });
    }
}

/// Replays one body: tracks tainted locals, propagates argument taint to
/// callee summaries, recomputes the return summary, and (via `sink`)
/// reports tainted flows into sinks. Returns whether any summary changed.
fn analyze_body(
    ws: &Workspace<'_>,
    fi: usize,
    infos: &mut [FnInfo],
    enum_table: &BTreeMap<(String, String), bool>,
    sink: &mut dyn SinkObserver,
) -> bool {
    let node = &ws.fns[fi];
    let file = &ws.files[node.file];
    let bytes = file.masked.masked.as_bytes();
    let body_end = node.body.map(|b| b.end).unwrap_or(0);
    let crate_name = file.crate_name.as_str();

    // Resolved callees by event index (built in pass 1).
    let targets: BTreeMap<usize, usize> = ws.call_targets[fi].iter().copied().collect();
    // Resolved calls by byte offset, for span evaluation.
    let calls_by_off: Vec<(usize, usize)> = ws.call_targets[fi]
        .iter()
        .filter_map(|&(ei, callee)| match &node.events[ei] {
            Event::Call(c) => Some((c.off, callee)),
            _ => None,
        })
        .collect();

    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    for (pi, reason) in infos[fi].param_taint.iter().enumerate() {
        if let (Some(r), Some(p)) = (reason, infos[fi].params.get(pi)) {
            tainted.insert(p.name.clone(), r.clone());
        }
    }

    let mut changed = false;
    let mut any_taint: Option<String> = infos[fi]
        .param_taint
        .iter()
        .flatten()
        .next()
        .cloned()
        .or_else(|| infos[fi].ret_taint.clone());

    // Walk state: the active `let` binding (bound at the terminating `;`
    // or at the `{` of a block/match initializer), the taint context of
    // the expression statement in flight (feeds the match-scrutinee
    // heuristic), and a stack of scrutinee contexts per brace depth.
    let mut active_let: Option<(String, usize)> = None;
    let mut pending_ctx: Option<String> = None;
    let mut ctx_stack: Vec<Option<String>> = Vec::new();

    macro_rules! eval {
        ($lo:expr, $hi:expr, $tainted:expr) => {
            eval_span(
                bytes,
                $lo,
                ($hi).min(body_end),
                $tainted,
                &file.masked.captures,
                &calls_by_off,
                infos,
            )
        };
    }

    for (ei, ev) in node.events.iter().enumerate() {
        match ev {
            Event::Open { off } => {
                if let Some((var, loff)) = active_let.take() {
                    if let Some(reason) = eval!(loff, *off, &tainted) {
                        any_taint.get_or_insert_with(|| reason.clone());
                        tainted.insert(var, reason);
                    }
                }
                ctx_stack.push(pending_ctx.take());
            }
            Event::Close => {
                ctx_stack.pop();
            }
            Event::Semi { off } => {
                if let Some((var, loff)) = active_let.take() {
                    if let Some(reason) = eval!(loff, *off, &tainted) {
                        any_taint.get_or_insert_with(|| reason.clone());
                        tainted.insert(var, reason);
                    }
                }
                pending_ctx = None;
            }
            Event::Let { var, off } => {
                active_let = var.as_ref().map(|v| (v.clone(), *off));
            }
            Event::Macro(m) => {
                let close = matching_paren(bytes, m.off, body_end);
                let name = m.name.as_str();
                if name == "write" || name == "writeln" {
                    continue;
                }
                if let Some(reason) = eval!(m.off, close + 1, &tainted) {
                    any_taint.get_or_insert_with(|| reason.clone());
                    if SINK_MACROS.contains(&name) {
                        sink.flow(
                            "INC011",
                            m.off,
                            format!("tainted document text reaches `{name}!`"),
                            vec![
                                reason,
                                format!("sink: `{name}!` in `{}::{}`", crate_name, node.name),
                            ],
                        );
                    } else {
                        pending_ctx = Some(reason);
                    }
                }
            }
            Event::Ctor(c) => {
                let Some((enm, variant)) = variant_of(&c.segs) else {
                    continue;
                };
                if enum_table.get(&(enm.clone(), variant.clone())) != Some(&true) {
                    continue;
                }
                let close = matching_brace(bytes, c.off).unwrap_or(body_end);
                if let Some(reason) = eval!(c.off + 1, close, &tainted) {
                    any_taint.get_or_insert_with(|| reason.clone());
                    sink.flow(
                        "INC013",
                        c.off,
                        format!("error variant `{enm}::{variant}` built from unredacted text"),
                        vec![
                            reason,
                            format!(
                                "sink: `{enm}::{variant}` constructed in `{}::{}`",
                                crate_name, node.name
                            ),
                        ],
                    );
                }
            }
            Event::Call(call) => {
                let close = matching_paren(bytes, call.off, body_end);

                // Match-arm binder heuristic: `Err(e) =>` inside a match
                // whose scrutinee was tainted binds a tainted error (a
                // parse error on tainted input embeds the input). Only
                // `Err` binders — `Ok`/`Some` payloads are usually the
                // *successful* (often numeric) result.
                if call.segs.len() == 1
                    && call.segs[0] == "Err"
                    && call.args.len() == 1
                    && is_plain_ident(&call.args[0])
                {
                    if let Some(ctx) = ctx_stack.iter().rev().flatten().next() {
                        tainted.insert(
                            call.args[0].clone(),
                            format!(
                                "`{}` bound from tainted match scrutinee ({ctx})",
                                call.args[0]
                            ),
                        );
                        continue;
                    }
                }

                // Tuple-variant construction of a text-carrying error.
                if !call.dotted && !call.opaque_recv {
                    if let Some((enm, variant)) = variant_of(&call.segs) {
                        if enum_table.get(&(enm.clone(), variant.clone())) == Some(&true) {
                            if let Some(reason) = eval!(call.off + 1, close, &tainted) {
                                any_taint.get_or_insert_with(|| reason.clone());
                                sink.flow(
                                    "INC013",
                                    call.off,
                                    format!(
                                        "error variant `{enm}::{variant}` built from \
                                         unredacted text"
                                    ),
                                    vec![
                                        reason,
                                        format!(
                                            "sink: `{enm}::{variant}` constructed in `{}::{}`",
                                            crate_name, node.name
                                        ),
                                    ],
                                );
                            }
                            continue;
                        }
                    }
                }

                let last = call.segs.last().map(String::as_str).unwrap_or_default();
                let sanitizer = SANITIZER_NAMES.contains(&last);

                // Receiver taint: `texts.join(…)` is tainted even though
                // the paren span is clean; metadata methods are exempt.
                let recv_taint = (call.dotted
                    && !sanitizer
                    && !CLEAN_METHODS.contains(&last)
                    && tainted.contains_key(call.segs[0].as_str()))
                .then(|| tainted[call.segs[0].as_str()].clone());
                let span_taint = if sanitizer {
                    None
                } else {
                    eval!(call.off, close + 1, &tainted)
                };
                let taint_here = recv_taint.or(span_taint);
                if let Some(reason) = &taint_here {
                    any_taint.get_or_insert_with(|| reason.clone());
                    if active_let.is_none() {
                        pending_ctx = Some(reason.clone());
                    }
                }

                if let Some(&callee) = targets.get(&ei) {
                    // Sink functions: tainted argument span = a leak.
                    let callee_node = &ws.fns[callee];
                    let callee_crate = ws.files[callee_node.file].crate_name.as_str();
                    if let Some((_, _, desc)) = SINK_FNS
                        .iter()
                        .find(|(c, n, _)| *c == callee_crate && *n == callee_node.name)
                    {
                        if let Some(reason) = eval!(call.off, close + 1, &tainted) {
                            sink.flow(
                                "INC011",
                                call.off,
                                format!(
                                    "tainted document text reaches `{}` ({desc})",
                                    callee_node.name
                                ),
                                vec![
                                    reason,
                                    format!(
                                        "sink: `{}::{}` called from `{}::{}`",
                                        callee_crate, callee_node.name, crate_name, node.name
                                    ),
                                ],
                            );
                        }
                    }
                    // Argument taint propagates into the callee summary.
                    for (ai, arg) in call.args.iter().enumerate() {
                        if infos[callee].param_taint.get(ai).is_none() {
                            break;
                        }
                        if infos[callee].param_taint[ai].is_some() {
                            continue;
                        }
                        if let Some(r) = arg_taint(arg, &tainted) {
                            let pname = infos[callee].params[ai].name.clone();
                            infos[callee].param_taint[ai] = Some(format!(
                                "parameter `{pname}` of `{}::{}` tainted at call from \
                                 `{}::{}` ({r})",
                                ws.files[ws.fns[callee].file].crate_name,
                                ws.fns[callee].name,
                                crate_name,
                                node.name
                            ));
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // Return summary: the body produced a tainted value and the return
    // type can carry it. (Which value is *returned* is not tracked; see
    // DESIGN.md §15 on over-taint.)
    if infos[fi].ret_taint.is_none() && infos[fi].ret_text {
        if let Some(reason) = &any_taint {
            infos[fi].ret_taint = Some(format!(
                "return value of `{}::{}` ({reason})",
                crate_name, node.name
            ));
            changed = true;
        }
    }
    changed
}

/// `Enum::Variant` path → (enum, variant) when the tail two segments
/// both start uppercase (filters `Type::new`, free fns, consts are
/// ALL_CAPS so their *second* letter check keeps them out).
fn variant_of(segs: &[String]) -> Option<(String, String)> {
    if segs.len() < 2 {
        return None;
    }
    let enm = &segs[segs.len() - 2];
    let variant = &segs[segs.len() - 1];
    let camel = |s: &str| {
        let mut ch = s.chars();
        ch.next().is_some_and(char::is_uppercase) && s.chars().any(char::is_lowercase)
    };
    (camel(enm) && camel(variant)).then(|| (enm.clone(), variant.clone()))
}

fn is_plain_ident(s: &str) -> bool {
    s != "_"
        && !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// One top-level argument's taint, judged lexically (the capped arg text
/// from the call event): sanitizer calls scrub their span, then tainted
/// variable words and source fields count.
fn arg_taint(arg: &str, tainted: &BTreeMap<String, String>) -> Option<String> {
    let scrubbed = scrub_sanitizers(arg);
    for (var, reason) in tainted {
        if contains_word(&scrubbed, var) {
            return Some(reason.clone());
        }
    }
    for f in SOURCE_FIELDS {
        if scrubbed.contains(&format!(".{f}")) {
            return Some(format!("`.{f}` field read (document text)"));
        }
    }
    None
}

/// Blanks `sanitizer(...)` spans in a string (lexical, for arg texts).
fn scrub_sanitizers(text: &str) -> String {
    let mut out: Vec<u8> = text.as_bytes().to_vec();
    for name in SANITIZER_NAMES {
        let mut from = 0;
        while let Some(rel) = text[from..].find(name) {
            let at = from + rel;
            from = at + 1;
            let end = at + name.len();
            let left_ok = at == 0 || !is_ident_byte(text.as_bytes()[at - 1]);
            if !left_ok || text.as_bytes().get(end) != Some(&b'(') {
                continue;
            }
            let close = matching_paren(text.as_bytes(), end, text.len());
            let cap = out.len() - 1;
            for b in &mut out[at..=close.min(cap)] {
                *b = b' ';
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Evaluates the taint of a masked-text span. Indicators, in order:
/// sanitizer spans are scrubbed first, then (1) a resolved call to a
/// taint-returning workspace fn, (2) a `format!` capture of a tainted
/// variable (string literals are masked, so captures are recorded by
/// the lexer), (3) a word occurrence of a tainted variable not
/// immediately followed by a metadata method, (4) a `.text`/`.texts`/
/// `.body` source-field read.
fn eval_span(
    bytes: &[u8],
    lo: usize,
    hi: usize,
    tainted: &BTreeMap<String, String>,
    captures: &[(usize, String)],
    calls_by_off: &[(usize, usize)],
    infos: &[FnInfo],
) -> Option<String> {
    if lo >= hi {
        return None;
    }
    // Sanitizer scrub: collect blanked sub-ranges.
    let mut scrubbed: Vec<(usize, usize)> = Vec::new();
    let text = std::str::from_utf8(&bytes[lo..hi]).unwrap_or_default();
    for name in SANITIZER_NAMES {
        let mut from = 0;
        while let Some(rel) = text[from..].find(name) {
            let at = from + rel;
            from = at + 1;
            let end = at + name.len();
            let left_ok = at == 0 || !is_ident_byte(text.as_bytes()[at - 1]);
            if !left_ok || text.as_bytes().get(end) != Some(&b'(') {
                continue;
            }
            let close = matching_paren(bytes, lo + end, hi);
            scrubbed.push((lo + at, close + 1));
        }
    }
    let clean_at = |off: usize| scrubbed.iter().any(|&(s, e)| off >= s && off < e);

    // (1) resolved taint-returning calls inside the span.
    for &(off, callee) in calls_by_off {
        if off >= lo && off < hi && !clean_at(off) {
            if let Some(r) = &infos[callee].ret_taint {
                return Some(r.clone());
            }
        }
    }
    // (2) captures of tainted variables.
    for (off, name) in captures {
        if *off >= lo && *off < hi && !clean_at(*off) {
            if let Some(r) = tainted.get(name) {
                return Some(format!("`{{{name}}}` interpolated ({r})"));
            }
        }
    }
    // (3) tainted variable words.
    for (var, reason) in tainted {
        let vb = var.as_bytes();
        let mut from = 0;
        while let Some(rel) = text[from..].find(var.as_str()) {
            let at = from + rel;
            from = at + 1;
            let tb = text.as_bytes();
            let left_ok = at == 0 || !is_ident_byte(tb[at - 1]);
            let end = at + vb.len();
            let right_ok = end >= tb.len() || !is_ident_byte(tb[end]);
            if !left_ok || !right_ok || clean_at(lo + at) {
                continue;
            }
            if followed_by_clean_method(tb, end) {
                continue;
            }
            return Some(reason.clone());
        }
    }
    // (4) source-field reads.
    for f in SOURCE_FIELDS {
        let pat = format!(".{f}");
        let mut from = 0;
        while let Some(rel) = text[from..].find(&pat) {
            let at = from + rel;
            from = at + 1;
            let tb = text.as_bytes();
            let end = at + pat.len();
            let right_ok = end >= tb.len() || !is_ident_byte(tb[end]);
            // A following `(` makes it a method call, not a field read.
            if !right_ok || tb.get(end) == Some(&b'(') || clean_at(lo + at) {
                continue;
            }
            if followed_by_clean_method(tb, end) {
                continue;
            }
            return Some(format!("`.{f}` field read (document text)"));
        }
    }
    None
}

/// `…end` is immediately `.len()`-style metadata access.
fn followed_by_clean_method(tb: &[u8], mut at: usize) -> bool {
    while at < tb.len() && tb[at].is_ascii_whitespace() {
        at += 1;
    }
    if tb.get(at) != Some(&b'.') {
        return false;
    }
    at += 1;
    let start = at;
    while at < tb.len() && is_ident_byte(tb[at]) {
        at += 1;
    }
    let name = std::str::from_utf8(&tb[start..at]).unwrap_or_default();
    CLEAN_METHODS.contains(&name) && tb.get(at) == Some(&b'(')
}

/// INC012: BFS over resolved call edges from the scoring entry points;
/// any reachable body touching a nondeterminism needle is a finding,
/// with the call path from the entry as the trace.
fn inc012_nondeterminism(
    ws: &Workspace<'_>,
    scoped: &[bool],
    findings: &mut Vec<Finding>,
    fuel: &mut u64,
) {
    let mut entries: Vec<usize> = Vec::new();
    for (fi, node) in ws.fns.iter().enumerate() {
        if !scoped[node.file] || node.in_test || node.body.is_none() {
            continue;
        }
        let is_entry = node.self_ty.as_deref() == Some(SCORING_ENTRY_TY)
            || SCORING_ENTRY_FNS.contains(&node.name.as_str());
        if is_entry {
            entries.push(fi);
        }
    }

    let mut prev: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut origin: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut visited = vec![false; ws.fns.len()];
    for &e in &entries {
        visited[e] = true;
        origin[e] = Some(e);
        queue.push_back(e);
    }
    while let Some(fi) = queue.pop_front() {
        *fuel += 1;
        for &callee in &ws.fns[fi].edges {
            if !visited[callee] && scoped[ws.fns[callee].file] && !ws.fns[callee].in_test {
                visited[callee] = true;
                prev[callee] = Some(fi);
                origin[callee] = origin[fi];
                queue.push_back(callee);
            }
        }
    }

    for fi in 0..ws.fns.len() {
        if !visited[fi] {
            continue;
        }
        let node = &ws.fns[fi];
        let Some(body) = node.body else { continue };
        let file = &ws.files[node.file];
        let text = &file.masked.masked[body.start..body.end.min(file.masked.masked.len())];
        *fuel += text.len() as u64;
        for (needle, desc) in NONDET_NEEDLES {
            let mut from = 0;
            while let Some(rel) = text[from..].find(needle) {
                let at = from + rel;
                from = at + 1;
                // Word-bound the leading ident chars of the needle.
                let tb = text.as_bytes();
                let first = needle.as_bytes()[0];
                if is_ident_byte(first) && at > 0 && is_ident_byte(tb[at - 1]) {
                    continue;
                }
                let end = at + needle.len();
                let last = *needle.as_bytes().last().unwrap_or(&b' ');
                if is_ident_byte(last) && end < tb.len() && is_ident_byte(tb[end]) {
                    continue;
                }
                let entry = origin[fi].unwrap_or(fi);
                let entry_name = qualified(ws, entry);
                let mut trace = vec![format!("scoring entry `{entry_name}`")];
                let mut chain = Vec::new();
                let mut cur = fi;
                while let Some(p) = prev[cur] {
                    chain.push(cur);
                    cur = p;
                }
                for &hop in chain.iter().rev() {
                    trace.push(format!("calls `{}`", qualified(ws, hop)));
                }
                trace.push(format!("`{}` {desc}", needle.trim()));
                findings.push(Finding {
                    rule: "INC012",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line: line_at(&file.lines, body.start + at),
                    message: format!(
                        "`{}` in `{}` — {desc}; reachable from scoring entry `{entry_name}`",
                        needle.trim(),
                        qualified(ws, fi),
                    ),
                    trace,
                });
            }
        }
    }
}

fn qualified(ws: &Workspace<'_>, fi: usize) -> String {
    let node = &ws.fns[fi];
    let krate = &ws.files[node.file].crate_name;
    match &node.self_ty {
        Some(ty) => format!("{krate}::{ty}::{}", node.name),
        None => format!("{krate}::{}", node.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(s: &str) -> (Vec<(String, bool)>, bool) {
        let (params, ret) = parse_sig(s);
        (params.into_iter().map(|p| (p.name, p.text)).collect(), ret)
    }

    #[test]
    fn parse_sig_names_params_and_flags_text_types() {
        let (params, ret) = sig("fn ingest(raw: &str, lineno: usize) -> Result<(), ParseError>");
        assert_eq!(
            params,
            vec![("raw".to_string(), true), ("lineno".to_string(), false)]
        );
        assert!(!ret, "Result<(), ParseError> carries no text");

        let (params, ret) = sig("fn read(buf: &[u8]) -> String");
        assert_eq!(params, vec![("buf".to_string(), true)]);
        assert!(ret, "String return carries text");
    }

    #[test]
    fn parse_sig_skips_receivers_and_underscore() {
        let (params, _) = sig("fn score(&mut self, _: usize, mut doc: String)");
        assert_eq!(params, vec![("doc".to_string(), true)]);
    }

    #[test]
    fn parse_sig_survives_generic_and_path_types() {
        let (params, ret) =
            sig("fn lookup(table: &BTreeMap<String, usize>, key: std::path::PathBuf) -> usize");
        assert_eq!(
            params,
            vec![("table".to_string(), true), ("key".to_string(), false)]
        );
        assert!(!ret);
        // No parameter list at all: a malformed signature parses empty.
        assert_eq!(sig("fn broken"), (vec![], false));
    }

    #[test]
    fn variant_of_wants_two_camel_case_segments() {
        let segs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            variant_of(&segs(&["ParseError", "BadRecord"])),
            Some(("ParseError".to_string(), "BadRecord".to_string()))
        );
        // Deeper paths use the last two segments.
        assert_eq!(
            variant_of(&segs(&["corpus", "ParseError", "BadRecord"])),
            Some(("ParseError".to_string(), "BadRecord".to_string()))
        );
        // ALL_CAPS consts and lowercase paths are not variants.
        assert_eq!(variant_of(&segs(&["SCOPE", "LEN"])), None);
        assert_eq!(variant_of(&segs(&["std", "mem"])), None);
        assert_eq!(variant_of(&segs(&["BadRecord"])), None);
    }

    #[test]
    fn plain_idents_are_lowercase_names_only() {
        assert!(is_plain_ident("payload"));
        assert!(is_plain_ident("_hidden"));
        assert!(!is_plain_ident("_"), "a bare wildcard binds nothing");
        assert!(!is_plain_ident("Err"));
        assert!(!is_plain_ident(""));
        assert!(!is_plain_ident("a.b"));
    }

    #[test]
    fn scrub_blanks_sanitizer_spans_only() {
        let s = scrub_sanitizers("error_body(redact(doc), doc)");
        assert!(!s.contains("redact(doc)"), "sanitizer span must blank: {s}");
        assert!(s.ends_with(", doc)"), "the raw second arg survives: {s}");
        // Name must be word-bounded and called: neither of these scrubs.
        assert_eq!(scrub_sanitizers("unredact(doc)"), "unredact(doc)");
        assert_eq!(scrub_sanitizers("redact + 1"), "redact + 1");
        // Nested parens inside the sanitizer call stay inside the blank.
        let s = scrub_sanitizers("fnv1a(text.as_bytes(), 0) ^ seed");
        assert_eq!(s, "                          ^ seed");
    }

    #[test]
    fn arg_taint_sees_variables_and_fields_through_the_scrub() {
        let mut tainted = BTreeMap::new();
        tainted.insert("doc".to_string(), "why".to_string());
        assert_eq!(arg_taint("&doc", &tainted), Some("why".to_string()));
        assert_eq!(arg_taint("redact(&doc)", &tainted), None);
        assert_eq!(arg_taint("document", &tainted), None, "word-bounded");
        assert!(arg_taint("req.body", &BTreeMap::new()).is_some_and(|r| r.contains(".body")));
    }

    #[test]
    fn clean_method_lookahead_requires_a_listed_call() {
        assert!(followed_by_clean_method(b"doc.len()", 3));
        assert!(followed_by_clean_method(b"doc .is_empty()", 3));
        assert!(!followed_by_clean_method(b"doc.to_string()", 3));
        assert!(!followed_by_clean_method(b"doc.len", 3), "field, not call");
        assert!(!followed_by_clean_method(b"doc", 3), "end of span");
    }
}
