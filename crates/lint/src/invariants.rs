//! Pass 4: invariant enforcement (INC014–INC016).
//!
//! Three rules that turn the repo's load-bearing dynamic contracts —
//! crash-recovery coverage, cross-thread byte-identity, and bounded wire
//! arithmetic — into static checks over the item graph from pass 1:
//!
//! * **INC014 checkpoint-unswept** — every `atomic_io` write/append
//!   acquisition outside tests (in `core`, `serve`, `stream`) must be
//!   reachable, through resolved call edges, from a function that
//!   consults a failpoint registry (`.check(…)` / `.trip(…)`). A write
//!   no sweep can reach is crash-recovery coverage that silently shrank.
//! * **INC015 unordered-float-fold** — a mutable `f32`/`f64` local
//!   declared *before* a `parallel::map_indexed` call and accumulated
//!   *inside* the closure folds in worker-completion order, which is the
//!   exact non-determinism the slot-indexed contract forbids. Slot
//!   writes (`out[i] = …`) and accumulators declared inside the closure
//!   are fine; so is folding the returned slot vector sequentially.
//! * **INC016 unchecked-wire-arithmetic** — interval-lite dataflow over
//!   the two wire decoders (`corpus/src/jsonl.rs`, `stream/src/event.rs`):
//!   a value originating from a wire decode (`from_le_bytes`, `.parse(`,
//!   `serde_json::from_str(…)`, …) must not flow into bare `+`/`*`
//!   arithmetic or a narrowing `as` cast until it is bounded by a
//!   comparison / `.min(…)` / `.get(…)`, or the arithmetic goes through
//!   `checked_*`/`saturating_*`/`wrapping_*`. Lengths of in-memory
//!   collections (`.len()`) are already bounded and never become tainted.
//!
//! All three honor `lint:allow` pragmas and test regions, and burn fuel
//! proportional to events + bytes scanned so the engine's deterministic
//! fuel budget keeps holding.

use crate::graph::{matching_paren, CallEvent, Event, Workspace};
use crate::items;
use crate::rules::{Finding, Severity};
use std::collections::BTreeSet;

/// Runs INC014–INC016 over the workspace graph. Returns the findings
/// (unsorted — the engine sorts globally) and the fuel consumed.
pub fn check(ws: &Workspace) -> (Vec<Finding>, u64) {
    let mut findings = Vec::new();
    let mut fuel = 0u64;
    inc014(ws, &mut findings, &mut fuel);
    inc015(ws, &mut findings, &mut fuel);
    inc016(ws, &mut findings, &mut fuel);
    (findings, fuel)
}

fn qualified(ws: &Workspace, fn_idx: usize) -> String {
    let node = &ws.fns[fn_idx];
    match &node.self_ty {
        Some(ty) => format!("{ty}::{}", node.name),
        None => node.name.clone(),
    }
}

// ------------------------------------------------------------------
// INC014 — checkpoint-unswept
// ------------------------------------------------------------------

/// Crates whose persisted artifacts the failpoint sweeps must cover.
const INC014_CRATES: &[&str] = &["core", "serve", "stream"];

/// Last-segment names that acquire the atomic-write funnel.
const FUNNEL_WRITES: &[&str] = &["write_atomic", "write_hashed", "write_framed"];

fn funnel_callee(call: &CallEvent) -> Option<String> {
    let last = call.segs.last()?;
    if FUNNEL_WRITES.contains(&last.as_str()) {
        return Some(call.segs.join("::"));
    }
    let n = call.segs.len();
    if n >= 2 && call.segs[n - 2] == "AppendLog" && last == "open" {
        return Some("AppendLog::open".to_string());
    }
    None
}

/// Whether this function body consults a failpoint registry directly.
fn is_checker(node: &crate::graph::FnNode) -> bool {
    node.events.iter().any(|ev| match ev {
        Event::Call(call) => {
            call.dotted
                && matches!(
                    call.segs.last().map(String::as_str),
                    Some("check") | Some("trip")
                )
        }
        _ => false,
    })
}

fn inc014(ws: &Workspace, findings: &mut Vec<Finding>, fuel: &mut u64) {
    // Forward reachability from every checker over resolved call edges:
    // anything a failpoint-consulting function can reach is swept.
    let mut swept = vec![false; ws.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, node) in ws.fns.iter().enumerate() {
        *fuel += node.events.len() as u64;
        if is_checker(node) {
            swept[i] = true;
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        *fuel += 1;
        for &callee in &ws.fns[i].edges {
            if !swept[callee] {
                swept[callee] = true;
                queue.push(callee);
            }
        }
    }

    for (i, node) in ws.fns.iter().enumerate() {
        let file = &ws.files[node.file];
        if node.in_test
            || !INC014_CRATES.contains(&file.crate_name.as_str())
            || file.path.ends_with("atomic_io.rs")
        {
            continue;
        }
        for ev in &node.events {
            let Event::Call(call) = ev else { continue };
            let Some(callee) = funnel_callee(call) else {
                continue;
            };
            if swept[i] {
                continue;
            }
            let line = items::line_at(&file.lines, call.off);
            if file.masked.in_test_region(line) || file.masked.is_suppressed("INC014", line) {
                continue;
            }
            findings.push(Finding {
                rule: "INC014",
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                message: format!(
                    "unswept checkpoint write: `{callee}` in `{}` is not reachable from any \
                     failpoint `check`/`trip` site, so the kill sweep cannot cover it",
                    qualified(ws, i)
                ),
                trace: Vec::new(),
            });
        }
    }
}

// ------------------------------------------------------------------
// INC015 — unordered-float-fold
// ------------------------------------------------------------------

/// Mutable float locals (`let mut x = 0.0f32;`, `let mut y: f64 = …;`)
/// declared in `bytes[start..end)`, with their names.
fn mut_float_locals(bytes: &[u8], start: usize, end: usize) -> Vec<String> {
    let text = match std::str::from_utf8(&bytes[start..end]) {
        Ok(text) => text,
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find("let mut ") {
        let at = from + rel;
        from = at + "let mut ".len();
        if at > 0 && items::is_ident_byte(text.as_bytes()[at - 1]) {
            continue;
        }
        let rest = &text[from..];
        let name_len = rest
            .bytes()
            .take_while(|&b| items::is_ident_byte(b))
            .count();
        if name_len == 0 {
            continue;
        }
        let name = &rest[..name_len];
        // Declaration tail up to the statement end: the type annotation
        // and/or initializer decide floatness.
        let tail_end = rest.find(';').unwrap_or(rest.len()).min(200);
        let tail = &rest[name_len..tail_end];
        if is_float_decl_tail(tail) {
            out.push(name.to_string());
        }
    }
    out
}

/// Whether a `let mut <name>` declaration tail declares a scalar float:
/// an `f32`/`f64` annotation or suffix, or a bare `= <digits>.<digits>`
/// initializer. Collections of floats (`vec![0.0f32; n]`) are slot
/// targets, not fold accumulators, and stay out.
fn is_float_decl_tail(tail: &str) -> bool {
    if tail.contains("vec!") || tail.contains("Vec<") || tail.contains('[') {
        return false;
    }
    for needle in ["f32", "f64"] {
        let mut from = 0;
        while let Some(rel) = tail[from..].find(needle) {
            let at = from + rel;
            from = at + needle.len();
            let before_ok = at == 0 || !items::is_ident_byte(tail.as_bytes()[at - 1]);
            let after_ok = from >= tail.len() || !items::is_ident_byte(tail.as_bytes()[from]);
            // `0.0f32` has a digit before the suffix: allow digits too.
            let before_suffix = at > 0 && tail.as_bytes()[at - 1].is_ascii_digit();
            if (before_ok || before_suffix) && after_ok {
                return true;
            }
        }
    }
    if let Some(eq) = tail.find('=') {
        let rhs = tail[eq + 1..].trim_start();
        let digits = rhs.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 && rhs.as_bytes().get(digits) == Some(&b'.') {
            return true;
        }
    }
    false
}

/// Byte offsets in `bytes[from..to)` where `name` is compound-assigned
/// (`name += …`) or self-assigned through an operator (`name = name + …`).
fn fold_mutations(bytes: &[u8], from: usize, to: usize, name: &str) -> Vec<usize> {
    let Ok(text) = std::str::from_utf8(&bytes[from..to]) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(rel) = text[at..].find(name) {
        let pos = at + rel;
        at = pos + name.len();
        let bounded_left = pos == 0 || !items::is_ident_byte(text.as_bytes()[pos - 1]);
        let bounded_right = at >= text.len() || !items::is_ident_byte(text.as_bytes()[at]);
        if !bounded_left || !bounded_right {
            continue;
        }
        let rest = text[at..].trim_start();
        let compound = ["+=", "-=", "*=", "/="]
            .iter()
            .any(|op| rest.starts_with(op));
        let self_assign = rest.starts_with('=') && !rest.starts_with("==") && {
            let rhs = rest[1..].trim_start();
            rhs.strip_prefix(name).is_some_and(|after| {
                let after = after.trim_start();
                after.starts_with('+')
                    || after.starts_with('-')
                    || after.starts_with('*')
                    || after.starts_with('/')
            })
        };
        if compound || self_assign {
            out.push(from + pos);
        }
    }
    out
}

fn inc015(ws: &Workspace, findings: &mut Vec<Finding>, fuel: &mut u64) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let Some(body) = node.body else { continue };
        let file = &ws.files[node.file];
        let bytes = file.masked.masked.as_bytes();
        for ev in &node.events {
            let Event::Call(call) = ev else { continue };
            if call.segs.last().map(String::as_str) != Some("map_indexed") {
                continue;
            }
            *fuel += (call.off.saturating_sub(body.start)) as u64;
            let accumulators = mut_float_locals(bytes, body.start, call.off);
            if accumulators.is_empty() {
                continue;
            }
            let close = matching_paren(bytes, call.off, body.end);
            // The closure is the last argument: its body runs from after
            // the parameter list (`|i|`) to the call's closing paren.
            let Some(bar1) = (call.off..close).find(|&j| bytes[j] == b'|') else {
                continue;
            };
            let Some(bar2) = (bar1 + 1..close).find(|&j| bytes[j] == b'|') else {
                continue;
            };
            for name in &accumulators {
                for off in fold_mutations(bytes, bar2 + 1, close, name) {
                    let line = items::line_at(&file.lines, off);
                    if file.masked.in_test_region(line) || file.masked.is_suppressed("INC015", line)
                    {
                        continue;
                    }
                    findings.push(Finding {
                        rule: "INC015",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line,
                        message: format!(
                            "unordered float fold: `{name}` is accumulated inside a \
                             `map_indexed` closure, so the result depends on worker \
                             completion order; return per-slot values and fold the \
                             slot vector sequentially"
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// INC016 — unchecked-wire-arithmetic
// ------------------------------------------------------------------

/// The wire decoders under interval discipline.
const INC016_FILES: &[&str] = &["corpus/src/jsonl.rs", "stream/src/event.rs"];

/// Needles whose results are attacker-controlled wire values.
const WIRE_SOURCES: &[&str] = &[
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    ".parse(",
    "parse::<",
    "serde_json::from_str(",
];

/// Cast targets narrow enough that an unbounded wire value truncates.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let at = from + rel;
        from = at + word.len();
        let left = at == 0 || !items::is_ident_byte(text.as_bytes()[at - 1]);
        let right = from >= text.len() || !items::is_ident_byte(text.as_bytes()[from]);
        if left && right {
            return true;
        }
    }
    false
}

/// The ident token ending immediately before byte `pos` (skipping back
/// over whitespace), or `None` if the preceding token is not an ident.
fn ident_before(text: &str, pos: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut j = pos;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && items::is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| &text[j..end])
}

/// The ident token starting at or after byte `pos` (skipping whitespace).
fn ident_after(text: &str, pos: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut j = pos;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && items::is_ident_byte(bytes[j]) {
        j += 1;
    }
    (j > start).then(|| &text[start..j])
}

/// Splits a body into statement-ish segments at `;`, `{` and `}` so a
/// multi-line binding is analyzed as one unit. Returns `(offset, text)`
/// pairs with offsets absolute in the masked file.
fn segments(bytes: &[u8], start: usize, end: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut seg_start = start;
    let mut i = start;
    while i < end {
        if matches!(bytes[i], b';' | b'{' | b'}') {
            if i > seg_start {
                if let Ok(text) = std::str::from_utf8(&bytes[seg_start..i]) {
                    out.push((seg_start, text.to_string()));
                }
            }
            seg_start = i + 1;
        }
        i += 1;
    }
    if end > seg_start {
        if let Ok(text) = std::str::from_utf8(&bytes[seg_start..end]) {
            out.push((seg_start, text.to_string()));
        }
    }
    out
}

/// The ident bound by a `let` segment, if any: first ident after `let`
/// that is not `mut`, with the rest of the segment as the initializer.
fn let_binding(seg: &str) -> Option<(String, &str)> {
    let at = seg.find("let ")?;
    let left_ok = at == 0 || !items::is_ident_byte(seg.as_bytes()[at - 1]);
    if !left_ok {
        return None;
    }
    let mut rest = seg[at + 4..].trim_start();
    if let Some(after) = rest.strip_prefix("mut ") {
        rest = after.trim_start();
    }
    let name_len = rest
        .bytes()
        .take_while(|&b| items::is_ident_byte(b))
        .count();
    if name_len == 0 {
        return None;
    }
    let name = rest[..name_len].to_string();
    let init = rest[name_len..].split_once('=').map(|(_, rhs)| rhs)?;
    Some((name, init))
}

/// Whether an initializer expression carries wire taint: it mentions a
/// source needle or a tainted ident, and is not a `.len()` measurement
/// (collection lengths are bounded by the buffer already in memory).
fn init_is_tainted(init: &str, tainted: &BTreeSet<String>) -> bool {
    if init.contains(".len()") {
        return false;
    }
    WIRE_SOURCES.iter().any(|s| init.contains(s)) || tainted.iter().any(|t| contains_word(init, t))
}

/// Reports unchecked `+`/`*` arithmetic and narrowing casts on tainted
/// idents inside one segment. Returns the flagged `(offset, detail)`s.
fn segment_flags(seg_off: usize, seg: &str, tainted: &BTreeSet<String>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    if seg.contains("checked_") || seg.contains("saturating_") || seg.contains("wrapping_") {
        return out;
    }
    let bytes = seg.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' | b'*' => {
                // Binary arithmetic only: both neighbors must be value
                // tokens (`a + b`), which filters derefs (`*x`), unary
                // plus in formats, and `+=`' handled below.
                let next_eq = bytes.get(i + 1) == Some(&b'=');
                let left = ident_before(seg, i);
                if next_eq {
                    // `x += wire` or `wire += n`: flag when either side
                    // carries taint.
                    let rhs = &seg[i + 2..];
                    let lhs_tainted = left.is_some_and(|l| tainted.contains(l));
                    let rhs_tainted = tainted.iter().any(|t| contains_word(rhs, t));
                    if lhs_tainted || rhs_tainted {
                        out.push((
                            seg_off + i,
                            format!("compound `{}=` on a wire-derived value", b as char),
                        ));
                    }
                    continue;
                }
                let right = ident_after(seg, i + 1);
                let (Some(left), Some(right)) = (left, right) else {
                    continue;
                };
                if tainted.contains(left) || tainted.contains(right) {
                    out.push((
                        seg_off + i,
                        format!("`{left} {} {right}` on a wire-derived value", b as char),
                    ));
                }
            }
            _ => {}
        }
    }
    // Narrowing casts: `<tainted> as u32` and friends.
    let mut from = 0;
    while let Some(rel) = seg[from..].find(" as ") {
        let at = from + rel;
        from = at + 4;
        let Some(src) = ident_before(seg, at) else {
            continue;
        };
        let Some(dst) = ident_after(seg, at + 4) else {
            continue;
        };
        if tainted.contains(src) && NARROW_CASTS.contains(&dst) {
            out.push((
                seg_off + at,
                format!("narrowing cast `{src} as {dst}` on a wire-derived value"),
            ));
        }
    }
    out
}

fn inc016(ws: &Workspace, findings: &mut Vec<Finding>, fuel: &mut u64) {
    for node in &ws.fns {
        if node.in_test {
            continue;
        }
        let file = &ws.files[node.file];
        if !INC016_FILES.iter().any(|f| file.path.ends_with(f)) {
            continue;
        }
        let Some(body) = node.body else { continue };
        let bytes = file.masked.masked.as_bytes();
        *fuel += (body.end.saturating_sub(body.start)) as u64;

        let mut tainted: BTreeSet<String> = BTreeSet::new();
        for (seg_off, seg) in segments(bytes, body.start, body.end) {
            // Bound guards first: a comparison, `.min(…)` or `.get(…)`
            // mentioning a tainted ident discharges its taint for the
            // rest of the function.
            let guarded = [" < ", " <= ", " > ", " >= ", ".min(", ".get("]
                .iter()
                .any(|g| seg.contains(g));
            if guarded {
                tainted.retain(|t| !contains_word(&seg, t));
            }

            for (off, detail) in segment_flags(seg_off, &seg, &tainted) {
                let line = items::line_at(&file.lines, off);
                if file.masked.in_test_region(line) || file.masked.is_suppressed("INC016", line) {
                    continue;
                }
                findings.push(Finding {
                    rule: "INC016",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "unchecked wire arithmetic: {detail}; bound it first or use a \
                         `checked_*` operation"
                    ),
                    trace: Vec::new(),
                });
            }

            // Taint propagation after flagging, so `let y = wire + 1;`
            // both fires and taints `y`.
            if let Some((name, init)) = let_binding(&seg) {
                if init_is_tainted(init, &tainted) {
                    tainted.insert(name);
                }
            } else if let Some(eq) = seg.find(" = ") {
                // Plain reassignment: `x = tainted_expr` propagates.
                if let Some(lhs) = ident_before(&seg, eq) {
                    let rhs = &seg[eq + 3..];
                    if init_is_tainted(rhs, &tainted) {
                        tainted.insert(lhs.to_string());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::MaskedFile;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let masked: Vec<(String, MaskedFile)> = files
            .iter()
            .map(|(path, src)| (path.to_string(), MaskedFile::new(src)))
            .collect();
        let refs: Vec<(String, &MaskedFile)> = masked.iter().map(|(p, m)| (p.clone(), m)).collect();
        let ws = graph::build(&refs);
        check(&ws).0
    }

    #[test]
    fn inc014_fires_on_unreachable_write_and_spares_swept_one() {
        let src = "\
pub struct S { fp: Reg }
impl S {
    pub fn sweep(&self) {
        self.fp.check(\"site\");
        self.save();
    }
    fn save(&self) {
        atomic_io::write_hashed(&self.p(), b\"x\");
    }
    pub fn orphan(&self) {
        atomic_io::write_hashed(&self.p(), b\"y\");
    }
    fn p(&self) -> PathBuf { PathBuf::new() }
}
";
        let findings = run_on(&[("crates/core/src/demo.rs", src)]);
        let inc014: Vec<_> = findings.iter().filter(|f| f.rule == "INC014").collect();
        assert_eq!(inc014.len(), 1, "{findings:?}");
        assert_eq!(inc014[0].line, 11);
        assert!(inc014[0].message.contains("S::orphan"));
    }

    #[test]
    fn inc014_ignores_out_of_scope_crates_and_tests() {
        let src = "\
pub fn orphan() {
    atomic_io::write_hashed(&p(), b\"y\");
}
";
        assert!(run_on(&[("crates/ml/src/demo.rs", src)])
            .iter()
            .all(|f| f.rule != "INC014"));
        let test_src = "\
#[cfg(test)]
mod tests {
    fn orphan() {
        atomic_io::write_hashed(&p(), b\"y\");
    }
}
";
        assert!(run_on(&[("crates/core/src/demo.rs", test_src)])
            .iter()
            .all(|f| f.rule != "INC014"));
    }

    #[test]
    fn inc014_counts_append_log_acquisition() {
        let src = "\
pub fn open_log(path: &Path) -> Result<AppendLog, E> {
    let log = atomic_io::AppendLog::open(path)?;
    Ok(log)
}
";
        let findings = run_on(&[("crates/serve/src/demo.rs", src)]);
        assert!(
            findings.iter().any(|f| f.rule == "INC014"
                && f.line == 2
                && f.message.contains("AppendLog::open")),
            "{findings:?}"
        );
    }

    #[test]
    fn inc015_flags_captured_accumulator_not_slot_writes() {
        let src = "\
pub fn bad(vals: &[f32], threads: usize) -> f32 {
    let mut total = 0.0f32;
    let _ = map_indexed(vals.len(), threads, |i| {
        total += vals[i];
        0u32
    });
    total
}
pub fn good(vals: &[f32], threads: usize) -> f32 {
    let slots = map_indexed(vals.len(), threads, |i| vals[i] * 2.0);
    let mut total = 0.0f32;
    for s in slots.unwrap_or_default() {
        total += s;
    }
    total
}
";
        let findings = run_on(&[("crates/core/src/demo.rs", src)]);
        let inc015: Vec<_> = findings.iter().filter(|f| f.rule == "INC015").collect();
        assert_eq!(inc015.len(), 1, "{findings:?}");
        assert_eq!(inc015[0].line, 4);
        assert!(inc015[0].message.contains("total"));
    }

    #[test]
    fn inc015_allows_accumulator_declared_inside_closure() {
        let src = "\
pub fn ok(vals: &[f32], threads: usize) {
    let _ = map_indexed(vals.len(), threads, |i| {
        let mut acc = 0.0f32;
        acc += vals[i];
        acc
    });
}
";
        assert!(run_on(&[("crates/core/src/demo.rs", src)])
            .iter()
            .all(|f| f.rule != "INC015"));
    }

    #[test]
    fn inc016_flags_arithmetic_and_narrowing_until_bounded() {
        let src = "\
pub fn decode(bytes: &[u8]) -> u32 {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let end = len + 4;
    let short = len as u16;
    if len < 1024 {
        let fine = len + 1;
        return fine;
    }
    end + u32::from(short)
}
";
        let findings = run_on(&[("crates/corpus/src/jsonl.rs", src)]);
        let inc016: Vec<_> = findings.iter().filter(|f| f.rule == "INC016").collect();
        let lines: Vec<usize> = inc016.iter().map(|f| f.line).collect();
        // `len + 4` and `len as u16` fire; after the `<` bound, `len + 1`
        // is clean. `end` is tainted transitively, so `end + …` fires.
        assert_eq!(lines, vec![3, 4, 9], "{findings:?}");
    }

    #[test]
    fn inc016_accepts_checked_math_and_len_measurements() {
        let src = "\
pub fn decode(bytes: &[u8], table: &[u8]) -> Option<u32> {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let end = len.checked_add(4)?;
    let n = table.len() as u32;
    let total = n + 7;
    Some(end.min(total))
}
";
        assert!(run_on(&[("crates/corpus/src/jsonl.rs", src)])
            .iter()
            .all(|f| f.rule != "INC016"));
    }

    #[test]
    fn inc016_only_watches_the_wire_decoders() {
        let src = "\
pub fn decode(bytes: &[u8]) -> u32 {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    len + 4
}
";
        assert!(run_on(&[("crates/corpus/src/scan.rs", src)])
            .iter()
            .all(|f| f.rule != "INC016"));
    }
}
