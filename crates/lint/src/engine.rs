//! Workspace walking and orchestration.
//!
//! The per-file stage (UTF-8 decode, masking, INC001–INC007 pattern
//! scan) fans out on [`incite_core::parallel::map_indexed_coarse`] — one
//! file per work unit — and merges back in slot order, so the findings
//! are byte-identical at every thread count. Results are memoized in a
//! content-hash-keyed [`cache::ScanCache`]; a warm run re-analyzes only
//! files whose bytes changed (see [`Report::files_reanalyzed`]). The
//! global passes always run over the merged [`MaskedFile`]s: the INC005
//! spec checks, the two-pass graph rules (INC008–INC010), the taint pass
//! (INC011–INC013), and the invariant pass (INC014–INC016). Everything
//! ends sorted by `(file, line, rule)` and ratcheted against a baseline.

use crate::baseline::{Baseline, Comparison};
use crate::cache::{CachedFile, ScanCache};
use crate::concurrency;
use crate::graph;
use crate::invariants;
use crate::lexer::MaskedFile;
use crate::rules::{self, Finding};
use crate::spec;
use crate::taint;
use incite_core::checkpoint::atomic_io;
use incite_core::parallel;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Deterministic work budget for a full run, in fuel units (roughly:
/// bytes scanned per pass plus graph events processed). The whole
/// workspace currently burns well under a tenth of this; the budget is
/// the analyzer's stand-in for a wall-clock ceiling, counted the same
/// way on every machine (no clocks — INC002 applies to us too). Fuel is
/// charged identically on cache hits and misses, so a report is
/// byte-identical whether the run was cold or warm.
pub const FUEL_BUDGET: u64 = 50_000_000;

/// Engine tuning: thread count for the per-file stage and an optional
/// cache directory for warm runs.
pub struct Options {
    /// Worker threads for the per-file fan-out. `1` is fully sequential.
    /// Any value produces byte-identical findings.
    pub threads: usize,
    /// Where to read/write the scan cache. `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            threads: 1,
            cache_dir: None,
        }
    }
}

/// A full lint run over one workspace root.
pub struct Report {
    /// Every current finding, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Ratchet outcome against the provided baseline.
    pub comparison: Comparison,
    /// Number of files scanned (for the summary line).
    pub files_scanned: usize,
    /// Files whose per-file stage actually ran (scan-cache misses). On a
    /// warm run with no edits this is 0. Not part of the JSON report —
    /// the report must be byte-identical across cache states.
    pub files_reanalyzed: usize,
    /// Deterministic work performed, in fuel units (see [`FUEL_BUDGET`]).
    pub fuel: u64,
}

/// Collects the repo-relative paths of all `.rs` files under `crates/*/src`,
/// sorted for determinism.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One per-file stage result, produced in parallel and merged in slot
/// order. `Default` is required by the parallel executor; an empty slot
/// only survives if the closure never ran, which `error` distinguishes.
#[derive(Default)]
struct FileSlot {
    masked: Option<MaskedFile>,
    findings: Vec<Finding>,
    content_hash: u64,
    from_cache: bool,
    error: Option<String>,
}

/// Runs the whole catalog against `root` and ratchets against `baseline`,
/// sequentially and uncached. Equivalent to [`run_with`] at default
/// [`Options`]; the CLI uses [`run_with`] directly.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    run_with(root, baseline, &Options::default())
}

/// Runs the whole catalog against `root` with explicit engine options.
pub fn run_with(root: &Path, baseline: &Baseline, options: &Options) -> io::Result<Report> {
    let sources = collect_sources(root)?;
    let cache = match options.cache_dir.as_deref() {
        Some(dir) => ScanCache::load(dir),
        None => ScanCache::default(),
    };

    // Per-file stage: read + hash every file; lex and pattern-scan the
    // ones the cache does not already cover. One file per work unit —
    // slot `i` always holds file `i`, so the merge below is independent
    // of the thread count.
    let slots = parallel::map_indexed_coarse(sources.len(), options.threads.max(1), 1, |i| {
        let rel = &sources[i];
        let mut slot = FileSlot::default();
        let raw = match fs::read(root.join(rel)) {
            Ok(raw) => raw,
            Err(err) => {
                slot.error = Some(format!("{rel}: {err}"));
                return slot;
            }
        };
        slot.content_hash = atomic_io::fnv64(&raw);
        if let Some(hit) = cache.hit(rel, slot.content_hash) {
            slot.masked = Some(hit.masked.clone());
            slot.findings = hit.findings.clone();
            slot.from_cache = true;
            return slot;
        }
        let text = match String::from_utf8(raw) {
            Ok(text) => text,
            Err(err) => {
                slot.error = Some(format!("{rel}: {err}"));
                return slot;
            }
        };
        let masked = MaskedFile::new(&text);
        slot.findings = rules::scan_file(rel, &masked);
        slot.masked = Some(masked);
        slot
    })
    .map_err(|err| io::Error::other(format!("per-file stage failed: {err}")))?;

    // Deterministic sequential merge, in sorted-path (= slot) order.
    let mut fuel: u64 = 0;
    let mut findings = Vec::new();
    let mut files_reanalyzed = 0usize;
    let mut fresh = ScanCache::default();
    let mut masked: BTreeMap<String, MaskedFile> = BTreeMap::new();
    for (rel, slot) in sources.iter().zip(slots) {
        if let Some(err) = slot.error {
            return Err(io::Error::other(err));
        }
        let Some(file) = slot.masked else {
            return Err(io::Error::other(format!(
                "{rel}: per-file stage produced no result"
            )));
        };
        if !slot.from_cache {
            files_reanalyzed += 1;
        }
        fuel += file.masked.len() as u64;
        findings.extend(slot.findings.iter().cloned());
        if options.cache_dir.is_some() {
            fresh.entries.insert(
                rel.clone(),
                CachedFile {
                    content_hash: slot.content_hash,
                    masked: file.clone(),
                    findings: slot.findings,
                },
            );
        }
        masked.insert(rel.clone(), file);
    }
    if let Some(dir) = options.cache_dir.as_deref() {
        // A failed save means the next run is cold, not that this one
        // failed: the cache is an accelerator, never a gate.
        let _ = fresh.store(dir);
    }

    let lookup = |path: &str| masked.get(path);
    findings.extend(spec::check(&spec::SpecSource { files: &lookup }));

    // Two-pass graph rules: build the item graph (pass 1), then walk it
    // (pass 2). `masked` is a BTreeMap, so the build order is the sorted
    // path order and the graph is deterministic.
    let graph_sources: Vec<(String, &MaskedFile)> =
        masked.iter().map(|(p, m)| (p.clone(), m)).collect();
    let ws = graph::build(&graph_sources);
    fuel += ws.fuel;
    findings.extend(concurrency::check(&ws));

    // Pass 3: interprocedural taint & purity dataflow (INC011–INC013).
    let (taint_findings, taint_fuel) = taint::check(&ws);
    fuel += taint_fuel;
    findings.extend(taint_findings);

    // Pass 4: invariant enforcement (INC014–INC016).
    let (invariant_findings, invariant_fuel) = invariants::check(&ws);
    fuel += invariant_fuel;
    findings.extend(invariant_findings);

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let comparison = baseline.compare(&findings);
    Ok(Report {
        findings,
        comparison,
        files_scanned: sources.len(),
        files_reanalyzed,
        fuel,
    })
}

/// Renders the machine-readable JSON report (deterministic field order).
pub fn report_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    let grandfathered_ok = |f: &Finding| !report.comparison.new_findings.contains(f);
    for (i, f) in report.findings.iter().enumerate() {
        let trace = f
            .trace
            .iter()
            .map(|t| format!("\"{}\"", escape(t)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\", \"trace\": [{}], \
             \"grandfathered\": {}}}{}\n",
            f.rule,
            f.severity.as_str(),
            escape(&f.file),
            f.line,
            escape(&f.message),
            trace,
            grandfathered_ok(f),
            if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"total\": {},\n  \"new\": {},\n  \
         \"stale_baseline_entries\": {},\n  \"fuel\": {}\n}}\n",
        report.files_scanned,
        report.findings.len(),
        report.comparison.new_findings.len(),
        report.comparison.improved.len(),
        report.fuel,
    ));
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The repo root, from the lint crate's own manifest dir.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    }

    #[test]
    fn collects_lint_crate_sources() {
        let sources = collect_sources(&repo_root()).unwrap();
        assert!(sources.contains(&"crates/lint/src/engine.rs".to_string()));
        assert!(sources.iter().all(|s| s.ends_with(".rs")));
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted, "source order must be deterministic");
    }

    /// Self-test: the repository must be clean against its checked-in
    /// baseline. This is the same check CI's static-analysis job runs.
    #[test]
    fn repo_is_clean_against_committed_baseline() {
        let root = repo_root();
        let text = fs::read_to_string(root.join("lint.baseline.json"))
            .expect("lint.baseline.json is committed at the workspace root");
        let baseline = Baseline::parse(&text).expect("baseline parses");
        let report = run(&root, &baseline).unwrap();
        let rendered: Vec<String> = report
            .comparison
            .new_findings
            .iter()
            .map(Finding::render)
            .collect();
        assert!(
            rendered.is_empty(),
            "new lint violations:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn report_json_is_valid_shape() {
        let root = repo_root();
        let report = run(&root, &Baseline::default()).unwrap();
        let json = report_json(&report);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"files_scanned\""));
        assert!(json.contains("\"fuel\""));
        assert!(json.trim_end().ends_with('}'));
    }

    /// The performance contract for the full run, stated in deterministic
    /// fuel units rather than wall-clock (INC002 bans the clock for a
    /// reason: a loaded CI machine must not flake this). The budget is
    /// calibrated so that staying inside it keeps a full run comfortably
    /// under the 5-second wall-clock target on any hardware that builds
    /// the workspace at all.
    #[test]
    fn full_run_stays_inside_the_fuel_budget() {
        let report = run(&repo_root(), &Baseline::default()).unwrap();
        assert!(report.fuel > 0, "fuel accounting must be wired up");
        assert!(
            report.fuel <= FUEL_BUDGET,
            "full run burned {} fuel, budget is {} — the item graph \
             or a fixpoint regressed",
            report.fuel,
            FUEL_BUDGET
        );
    }
}
