//! Workspace walking and orchestration: collects sources, runs the
//! pattern catalog (pass over each masked file), the INC005 spec checks,
//! and the two-pass graph rules (INC008–INC010), then compares against a
//! baseline.

use crate::baseline::{Baseline, Comparison};
use crate::concurrency;
use crate::graph;
use crate::lexer::MaskedFile;
use crate::rules::{self, Finding};
use crate::spec;
use crate::taint;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Deterministic work budget for a full run, in fuel units (roughly:
/// bytes scanned per pass plus graph events processed). The whole
/// workspace currently burns well under a tenth of this; the budget is
/// the two-pass analyzer's stand-in for a wall-clock ceiling, counted
/// the same way on every machine (no clocks — INC002 applies to us too).
pub const FUEL_BUDGET: u64 = 50_000_000;

/// A full lint run over one workspace root.
pub struct Report {
    /// Every current finding, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Ratchet outcome against the provided baseline.
    pub comparison: Comparison,
    /// Number of files scanned (for the summary line).
    pub files_scanned: usize,
    /// Deterministic work performed, in fuel units (see [`FUEL_BUDGET`]).
    pub fuel: u64,
}

/// Collects the repo-relative paths of all `.rs` files under `crates/*/src`,
/// sorted for determinism.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the whole catalog against `root` and ratchets against `baseline`.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let sources = collect_sources(root)?;
    let mut masked: BTreeMap<String, MaskedFile> = BTreeMap::new();
    for rel in &sources {
        let text = fs::read_to_string(root.join(rel))?;
        masked.insert(rel.clone(), MaskedFile::new(&text));
    }

    // Pass over each file: the pattern rules and the spec checks.
    let mut fuel: u64 = 0;
    let mut findings = Vec::new();
    for (rel, file) in &masked {
        fuel += file.masked.len() as u64;
        findings.extend(rules::scan_file(rel, file));
    }
    let lookup = |path: &str| masked.get(path);
    findings.extend(spec::check(&spec::SpecSource { files: &lookup }));

    // Two-pass graph rules: build the item graph (pass 1), then walk it
    // (pass 2). `masked` is a BTreeMap, so the build order is the sorted
    // path order and the graph is deterministic.
    let graph_sources: Vec<(String, &MaskedFile)> =
        masked.iter().map(|(p, m)| (p.clone(), m)).collect();
    let ws = graph::build(&graph_sources);
    fuel += ws.fuel;
    findings.extend(concurrency::check(&ws));

    // Pass 3: interprocedural taint & purity dataflow (INC011–INC013).
    let (taint_findings, taint_fuel) = taint::check(&ws);
    fuel += taint_fuel;
    findings.extend(taint_findings);

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let comparison = baseline.compare(&findings);
    Ok(Report {
        findings,
        comparison,
        files_scanned: sources.len(),
        fuel,
    })
}

/// Renders the machine-readable JSON report (deterministic field order).
pub fn report_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    let grandfathered_ok = |f: &Finding| !report.comparison.new_findings.contains(f);
    for (i, f) in report.findings.iter().enumerate() {
        let trace = f
            .trace
            .iter()
            .map(|t| format!("\"{}\"", escape(t)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\", \"trace\": [{}], \
             \"grandfathered\": {}}}{}\n",
            f.rule,
            f.severity.as_str(),
            escape(&f.file),
            f.line,
            escape(&f.message),
            trace,
            grandfathered_ok(f),
            if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"total\": {},\n  \"new\": {},\n  \
         \"stale_baseline_entries\": {},\n  \"fuel\": {}\n}}\n",
        report.files_scanned,
        report.findings.len(),
        report.comparison.new_findings.len(),
        report.comparison.improved.len(),
        report.fuel,
    ));
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The repo root, from the lint crate's own manifest dir.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    }

    #[test]
    fn collects_lint_crate_sources() {
        let sources = collect_sources(&repo_root()).unwrap();
        assert!(sources.contains(&"crates/lint/src/engine.rs".to_string()));
        assert!(sources.iter().all(|s| s.ends_with(".rs")));
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted, "source order must be deterministic");
    }

    /// Self-test: the repository must be clean against its checked-in
    /// baseline. This is the same check CI's static-analysis job runs.
    #[test]
    fn repo_is_clean_against_committed_baseline() {
        let root = repo_root();
        let text = fs::read_to_string(root.join("lint.baseline.json"))
            .expect("lint.baseline.json is committed at the workspace root");
        let baseline = Baseline::parse(&text).expect("baseline parses");
        let report = run(&root, &baseline).unwrap();
        let rendered: Vec<String> = report
            .comparison
            .new_findings
            .iter()
            .map(Finding::render)
            .collect();
        assert!(
            rendered.is_empty(),
            "new lint violations:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn report_json_is_valid_shape() {
        let root = repo_root();
        let report = run(&root, &Baseline::default()).unwrap();
        let json = report_json(&report);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"files_scanned\""));
        assert!(json.contains("\"fuel\""));
        assert!(json.trim_end().ends_with('}'));
    }

    /// The performance contract for the full two-pass run, stated in
    /// deterministic fuel units rather than wall-clock (INC002 bans the
    /// clock for a reason: a loaded CI machine must not flake this). The
    /// budget is calibrated so that staying inside it keeps a full run
    /// comfortably under the 5-second wall-clock target on any hardware
    /// that builds the workspace at all.
    #[test]
    fn full_run_stays_inside_the_fuel_budget() {
        let report = run(&repo_root(), &Baseline::default()).unwrap();
        assert!(report.fuel > 0, "fuel accounting must be wired up");
        assert!(
            report.fuel <= FUEL_BUDGET,
            "two-pass run burned {} fuel, budget is {} — the item graph \
             or a fixpoint regressed",
            report.fuel,
            FUEL_BUDGET
        );
    }
}
