//! The ratcheted baseline: a debt ledger of grandfathered violations.
//!
//! `lint.baseline.json` maps `rule → { file → count }`. The ratchet
//! semantics are:
//!
//! - a `(rule, file)` with **more** findings than its grandfathered count
//!   is a failure — new debt is never accepted;
//! - **fewer** findings than grandfathered is rejected too, with a typed
//!   [`BaselineError::Inflated`]: either debt was paid down without
//!   ratcheting the file (stale ledger) or the count was hand-edited
//!   upward to smuggle in headroom. Counts in the committed file may only
//!   decrease, and must decrease in the same change that pays the debt;
//! - `--update-baseline` rewrites the file from the current findings.
//!
//! The lint crate is std-only by contract, so this module carries its own
//! ~60-line parser for exactly the JSON subset the baseline uses
//! (two-level object of integers), with deterministic sorted output.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt;

/// Typed failure modes of the baseline ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The file is not the JSON subset the baseline uses. `offset` is
    /// the byte offset of the first problem; `line` the 1-based line
    /// it falls on.
    Parse {
        what: String,
        offset: usize,
        line: usize,
    },
    /// An entry grandfathers more findings than currently exist — a
    /// stale ledger after a pay-down, or a hand-inflated count. Either
    /// way the committed file no longer describes reality and must be
    /// regenerated with `--update-baseline`.
    Inflated {
        rule: String,
        file: String,
        grandfathered: usize,
        current: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Parse { what, offset, line } => write!(
                f,
                "baseline does not parse: {what} at byte {offset} (line {line})"
            ),
            BaselineError::Inflated {
                rule,
                file,
                grandfathered,
                current,
            } => write!(
                f,
                "baseline entry {rule}/{file} grandfathers {grandfathered} \
                 finding(s) but only {current} exist — counts may only \
                 decrease; run `cargo run -p incite-lint -- check \
                 --update-baseline` to ratchet the ledger down"
            ),
        }
    }
}

/// `rule → file → grandfathered count`. `BTreeMap` keeps serialization
/// deterministic.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings in excess of the grandfathered counts, per `(rule, file)`.
    /// These fail the run. All findings for an over-budget `(rule, file)`
    /// are listed so the offending sites are visible.
    pub new_findings: Vec<Finding>,
    /// `(rule, file, current, grandfathered)` where current < grandfathered:
    /// debt was paid down and the committed baseline is stale.
    pub improved: Vec<(String, String, usize, usize)>,
}

impl Baseline {
    /// Builds a baseline from current findings (what `--update-baseline`
    /// writes).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(f.rule.to_string())
                .or_default()
                .entry(f.file.clone())
                .or_default() += 1;
        }
        Baseline { counts }
    }

    fn allowed(&self, rule: &str, file: &str) -> usize {
        self.counts
            .get(rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Ratchet check: current findings vs. grandfathered counts.
    pub fn compare(&self, findings: &[Finding]) -> Comparison {
        let current = Baseline::from_findings(findings);
        let mut cmp = Comparison::default();
        for (rule, files) in &current.counts {
            for (file, &n) in files {
                let allowed = self.allowed(rule, file);
                if n > allowed {
                    cmp.new_findings.extend(
                        findings
                            .iter()
                            .filter(|f| f.rule == rule && f.file == *file)
                            .cloned(),
                    );
                }
            }
        }
        for (rule, files) in &self.counts {
            for (file, &grandfathered) in files {
                let now = current.allowed(rule, file);
                if now < grandfathered {
                    cmp.improved
                        .push((rule.clone(), file.clone(), now, grandfathered));
                }
            }
        }
        cmp
    }

    /// Deterministic pretty JSON (sorted keys, 2-space indent, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if !first_rule {
                out.push_str(",\n");
            }
            first_rule = false;
            out.push_str(&format!("  {}: {{\n", quote(rule)));
            let mut first_file = true;
            for (file, n) in files {
                if !first_file {
                    out.push_str(",\n");
                }
                first_file = false;
                out.push_str(&format!("    {}: {}", quote(file), n));
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Rejects entries that grandfather more findings than currently
    /// exist (see [`BaselineError::Inflated`]). The first offender in
    /// sorted (rule, file) order is reported, deterministically.
    pub fn verify(&self, findings: &[Finding]) -> Result<(), BaselineError> {
        let current = Baseline::from_findings(findings);
        for (rule, files) in &self.counts {
            for (file, &grandfathered) in files {
                let now = current.allowed(rule, file);
                if grandfathered > now {
                    return Err(BaselineError::Inflated {
                        rule: rule.clone(),
                        file: file.clone(),
                        grandfathered,
                        current: now,
                    });
                }
            }
        }
        Ok(())
    }

    /// Parses the baseline JSON subset. Errors carry both the byte
    /// offset and the 1-based line number of the first problem, so a
    /// hand-edited ledger points straight at the typo.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        Baseline::parse_inner(text).map_err(|(what, offset)| {
            let line = 1 + text
                .as_bytes()
                .iter()
                .take(offset)
                .filter(|&&b| b == b'\n')
                .count();
            BaselineError::Parse { what, offset, line }
        })
    }

    fn parse_inner(text: &str) -> Result<Baseline, (String, usize)> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let mut counts = BTreeMap::new();
        p.expect(b'{')?;
        p.skip_ws();
        if !p.eat(b'}') {
            loop {
                let rule = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let mut files = BTreeMap::new();
                p.expect(b'{')?;
                p.skip_ws();
                if !p.eat(b'}') {
                    loop {
                        let file = p.string()?;
                        p.skip_ws();
                        p.expect(b':')?;
                        p.skip_ws();
                        let n = p.integer()?;
                        files.insert(file, n);
                        p.skip_ws();
                        if p.eat(b'}') {
                            break;
                        }
                        p.expect(b',')?;
                        p.skip_ws();
                    }
                }
                counts.insert(rule, files);
                p.skip_ws();
                if p.eat(b'}') {
                    break;
                }
                p.expect(b',')?;
                p.skip_ws();
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(("trailing characters".to_string(), p.pos));
        }
        Ok(Baseline { counts })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), (String, usize)> {
        if self.eat(b) {
            Ok(())
        } else {
            Err((format!("expected `{}`", b as char), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, (String, usize)> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(("unterminated string".to_string(), self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        other => {
                            return Err((
                                format!("unsupported escape {:?}", other.map(|&b| b as char)),
                                self.pos,
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Baseline keys are repo-relative paths and rule IDs:
                    // plain UTF-8, consumed bytewise.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn integer(&mut self) -> Result<usize, (String, usize)> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(("expected integer".to_string(), start));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ("invalid integer".to_string(), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: "m".into(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let findings = vec![
            finding("INC001", "crates/core/src/a.rs", 1),
            finding("INC001", "crates/core/src/a.rs", 9),
            finding("INC003", "crates/stats/src/b.rs", 4),
        ];
        let b = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.counts["INC001"]["crates/core/src/a.rs"], 2);
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(Baseline::parse("{}\n").unwrap().counts.is_empty());
        assert_eq!(Baseline::default().to_json(), "{\n\n}\n");
    }

    #[test]
    fn parse_rejects_garbage_with_typed_offset_error() {
        let err = Baseline::parse("{\"INC001\": {\"f\": }}").unwrap_err();
        match &err {
            BaselineError::Parse { what, offset, line } => {
                assert_eq!(*offset, 17, "{what}");
                assert_eq!(*line, 1);
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        assert!(err.to_string().contains("does not parse"));
        assert!(err.to_string().contains("at byte 17 (line 1)"));
        assert!(Baseline::parse("{} trailing").is_err());
    }

    #[test]
    fn parse_error_line_counts_newlines_before_the_offset() {
        // The problem byte (`}` where an integer belongs) sits on line 3.
        let err = Baseline::parse("{\n  \"INC001\": {\n    \"f\": }\n  }\n}\n").unwrap_err();
        match &err {
            BaselineError::Parse { line, .. } => assert_eq!(*line, 3),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn verify_accepts_exact_ledgers_and_rejects_inflated_ones() {
        let findings = vec![finding("INC001", "a.rs", 1), finding("INC001", "a.rs", 2)];
        let exact = Baseline::from_findings(&findings);
        assert_eq!(exact.verify(&findings), Ok(()));

        // Hand-edit the count upward: typed rejection, not a silent pass.
        let mut inflated = exact.clone();
        *inflated
            .counts
            .get_mut("INC001")
            .unwrap()
            .get_mut("a.rs")
            .unwrap() = 5;
        match inflated.verify(&findings) {
            Err(BaselineError::Inflated {
                rule,
                file,
                grandfathered,
                current,
            }) => {
                assert_eq!((rule.as_str(), file.as_str()), ("INC001", "a.rs"));
                assert_eq!((grandfathered, current), (5, 2));
            }
            other => panic!("expected Inflated, got {other:?}"),
        }

        // A paid-down entry is the same shape: stale ledgers are rejected
        // until the baseline is regenerated.
        assert!(matches!(
            exact.verify(&findings[..1]),
            Err(BaselineError::Inflated { current: 1, .. })
        ));
    }

    #[test]
    fn ratchet_passes_at_or_below_grandfathered_counts() {
        let grandfathered =
            Baseline::from_findings(&[finding("INC001", "a.rs", 1), finding("INC001", "a.rs", 2)]);
        // Same count: clean.
        let cmp =
            grandfathered.compare(&[finding("INC001", "a.rs", 5), finding("INC001", "a.rs", 6)]);
        assert!(cmp.new_findings.is_empty());
        assert!(cmp.improved.is_empty());
        // Fewer: clean but reported as improvement.
        let cmp = grandfathered.compare(&[finding("INC001", "a.rs", 5)]);
        assert!(cmp.new_findings.is_empty());
        assert_eq!(cmp.improved, vec![("INC001".into(), "a.rs".into(), 1, 2)]);
    }

    #[test]
    fn ratchet_fails_on_any_increase() {
        let grandfathered = Baseline::from_findings(&[finding("INC001", "a.rs", 1)]);
        let cmp =
            grandfathered.compare(&[finding("INC001", "a.rs", 1), finding("INC001", "a.rs", 8)]);
        // Both sites are reported, not just the delta.
        assert_eq!(cmp.new_findings.len(), 2);
    }

    #[test]
    fn ratchet_fails_on_new_rule_or_file() {
        let grandfathered = Baseline::from_findings(&[finding("INC001", "a.rs", 1)]);
        assert_eq!(
            grandfathered
                .compare(&[finding("INC001", "b.rs", 1)])
                .new_findings
                .len(),
            1
        );
        assert_eq!(
            grandfathered
                .compare(&[finding("INC002", "a.rs", 1)])
                .new_findings
                .len(),
            1
        );
    }

    #[test]
    fn fully_paid_file_reports_improvement() {
        let grandfathered = Baseline::from_findings(&[finding("INC001", "a.rs", 1)]);
        let cmp = grandfathered.compare(&[]);
        assert!(cmp.new_findings.is_empty());
        assert_eq!(cmp.improved, vec![("INC001".into(), "a.rs".into(), 0, 1)]);
    }
}
