//! INC005: spec-consistency lints.
//!
//! The paper pins the taxonomy sizes — 10 parent attack types (Table 5),
//! 28 subcategories plus the parent-only generic label (Table 11), 9 PII
//! families matched by 12 regular expressions (§5.6, Table 6), and 6 crawl
//! platforms folded into 5 data sets (Table 1). These counts are encoded
//! independently in `taxonomy`, `pii`, and `corpus`; INC005 parses the
//! actual declarations out of the masked source and fails if any copy
//! drifts. The same invariants live as `debug_assert!`s at the
//! construction sites so they also trip in debug test runs.

use crate::lexer::MaskedFile;
use crate::rules::{Finding, Severity};

/// Expected spec constants, in one place.
pub mod expected {
    /// Parent attack types (paper Table 5).
    pub const ATTACK_PARENTS: usize = 10;
    /// Subcategories (Table 11): 28 plus the parent-only generic label.
    pub const SUBCATEGORIES: usize = 29;
    /// PII families (Table 6).
    pub const PII_FAMILIES: usize = 9;
    /// PII regular expressions (§5.6): one field per single-pattern family
    /// plus URL/inline forms per social network.
    pub const PII_EXPRESSIONS: usize = 12;
    /// Card networks sharing the credit-card family.
    pub const CARD_NETWORKS: usize = 4;
    /// Concrete crawl platforms (Table 1, chat split in two).
    pub const PLATFORMS: usize = 6;
    /// Data-set families (Table 1 rows).
    pub const DATA_SETS: usize = 5;
}

/// A parsed enum declaration.
pub struct EnumDecl {
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    pub variants: Vec<String>,
}

/// Finds `enum <name> { ... }` in masked source and returns its variants.
pub fn parse_enum(masked: &str, name: &str) -> Option<EnumDecl> {
    let (line, body) = find_braced_item(masked, "enum", name)?;
    let variants = split_top_level(body).filter_map(first_ident).collect();
    Some(EnumDecl { line, variants })
}

/// A parsed struct declaration: field `(name, type_text)` pairs.
pub struct StructDecl {
    pub line: usize,
    pub fields: Vec<(String, String)>,
}

/// Finds `struct <name> { ... }` in masked source and returns its fields.
pub fn parse_struct(masked: &str, name: &str) -> Option<StructDecl> {
    let (line, body) = find_braced_item(masked, "struct", name)?;
    let fields = split_top_level(body)
        .filter_map(|seg| {
            let (lhs, ty) = seg.split_once(':')?;
            let field = first_ident(strip_visibility(lhs))?;
            Some((field, ty.trim().to_string()))
        })
        .collect();
    Some(StructDecl { line, fields })
}

/// Array length declared as `NAME: [Type; N]`, e.g. `ALL: [Platform; 6]`.
pub fn declared_array_len(masked: &str, const_name: &str, elem_type: &str) -> Option<usize> {
    let pat = format!("{const_name}: [{elem_type}; ");
    let at = masked.find(&pat)?;
    let rest = &masked[at + pat.len()..];
    let end = rest.find(']')?;
    rest[..end].trim().parse().ok()
}

/// Value of `const NAME: usize = N;`.
pub fn declared_const_usize(masked: &str, const_name: &str) -> Option<usize> {
    let pat = format!("const {const_name}: usize = ");
    let at = masked.find(&pat)?;
    let rest = &masked[at + pat.len()..];
    let end = rest.find(';')?;
    rest[..end].trim().parse().ok()
}

fn strip_visibility(s: &str) -> &str {
    let s = s.trim();
    let s = s.strip_prefix("pub").map_or(s, |r| {
        // `pub(crate)` etc.
        let r = r.trim_start();
        r.strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map_or(r, |(_, tail)| tail)
    });
    s.trim()
}

/// Locates `<kw> <name> {` (word-bounded) and returns `(line, body)` where
/// body excludes the outer braces.
fn find_braced_item<'a>(masked: &'a str, kw: &str, name: &str) -> Option<(usize, &'a str)> {
    let pat = format!("{kw} {name}");
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(rel) = masked[from..].find(&pat) {
        let at = from + rel;
        from = at + 1;
        // Word boundaries on both sides of the name.
        let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        let after = at + pat.len();
        let after_ok = bytes
            .get(after)
            .is_none_or(|&b| !b.is_ascii_alphanumeric() && b != b'_');
        if !(before_ok && after_ok) {
            continue;
        }
        // Skip generics/where clauses: take the first `{` after the name.
        let open_rel = masked[after..].find('{')?;
        let open = after + open_rel;
        let mut depth = 0i64;
        for (off, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let line = 1 + bytes[..at].iter().filter(|&&b| b == b'\n').count();
                        return Some((line, &masked[open + 1..open + off]));
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    None
}

/// Splits a declaration body at top-level commas (ignoring nested
/// `()`/`{}`/`[]`/`<>` groups), yielding non-empty segments.
fn split_top_level(body: &str) -> impl Iterator<Item = &str> {
    let mut segments = Vec::new();
    let mut depth = 0i64;
    let mut start = 0;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'(' | b'{' | b'[' | b'<' => depth += 1,
            b')' | b'}' | b']' | b'>' => depth -= 1,
            b',' if depth == 0 => {
                segments.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    segments.push(&body[start..]);
    segments.into_iter().filter(|s| !s.trim().is_empty())
}

/// First identifier in a segment, skipping attributes (already masked if in
/// comments; `#[...]` attributes survive masking) and discriminants.
fn first_ident(seg: &str) -> Option<String> {
    let mut rest = seg.trim_start();
    while let Some(tail) = rest.strip_prefix("#[") {
        let close = tail.find(']')?;
        rest = tail[close + 1..].trim_start();
    }
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let ident = &rest[..end];
    (!ident.is_empty() && !ident.as_bytes()[0].is_ascii_digit()).then(|| ident.to_string())
}

/// Interface the engine uses to hand spec checks the files they need.
pub struct SpecSource<'a> {
    /// Repo-relative path → masked file.
    pub files: &'a dyn Fn(&str) -> Option<&'a MaskedFile>,
}

fn fail(file: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: "INC005",
        severity: Severity::Error,
        file: file.to_string(),
        // File-level findings pass 0; diagnostics are 1-based.
        line: line.max(1),
        message,
        trace: Vec::new(),
    }
}

/// Runs all INC005 checks. Missing files or unparseable declarations are
/// themselves findings: the spec lint must never silently pass.
pub fn check(src: &SpecSource<'_>) -> Vec<Finding> {
    let mut out = Vec::new();

    const ATTACK: &str = "crates/taxonomy/src/attack.rs";
    const PII_KIND: &str = "crates/taxonomy/src/pii_kind.rs";
    const PLATFORM: &str = "crates/taxonomy/src/platform.rs";
    const EXTRACT: &str = "crates/pii/src/extract.rs";
    const CORPUS_PLATFORMS: &str = "crates/corpus/src/platforms.rs";

    let get = |path: &str, out: &mut Vec<Finding>| -> Option<&MaskedFile> {
        let f = (src.files)(path);
        if f.is_none() {
            out.push(fail(path, 0, "spec file missing from workspace".into()));
        }
        f
    };

    // 10 attack parents; 28 subcategories + GenericCall; COUNT and ALL agree.
    if let Some(m) = get(ATTACK, &mut out) {
        match parse_enum(&m.masked, "AttackType") {
            Some(e) if e.variants.len() == expected::ATTACK_PARENTS => {
                if declared_array_len(&m.masked, "ALL", "AttackType")
                    != Some(expected::ATTACK_PARENTS)
                {
                    out.push(fail(
                        ATTACK,
                        e.line,
                        format!(
                            "AttackType::ALL length must be declared [AttackType; {}]",
                            expected::ATTACK_PARENTS
                        ),
                    ));
                }
            }
            Some(e) => out.push(fail(
                ATTACK,
                e.line,
                format!(
                    "AttackType has {} variants; the paper (Table 5) fixes {} parents",
                    e.variants.len(),
                    expected::ATTACK_PARENTS
                ),
            )),
            None => out.push(fail(ATTACK, 0, "cannot parse `enum AttackType`".into())),
        }
        match parse_enum(&m.masked, "Subcategory") {
            Some(e) => {
                if e.variants.len() != expected::SUBCATEGORIES {
                    out.push(fail(
                        ATTACK,
                        e.line,
                        format!(
                            "Subcategory has {} variants; the paper fixes 28 (Table 11) \
                             plus the generic parent = {}",
                            e.variants.len(),
                            expected::SUBCATEGORIES
                        ),
                    ));
                }
                if !e.variants.iter().any(|v| v == "GenericCall") {
                    out.push(fail(
                        ATTACK,
                        e.line,
                        "Subcategory must keep the parent-only `GenericCall` label".into(),
                    ));
                }
                if declared_const_usize(&m.masked, "COUNT") != Some(expected::SUBCATEGORIES) {
                    out.push(fail(
                        ATTACK,
                        e.line,
                        format!("Subcategory::COUNT must equal {}", expected::SUBCATEGORIES),
                    ));
                }
            }
            None => out.push(fail(ATTACK, 0, "cannot parse `enum Subcategory`".into())),
        }
    }

    // 9 PII families.
    if let Some(m) = get(PII_KIND, &mut out) {
        match parse_enum(&m.masked, "PiiKind") {
            Some(e) if e.variants.len() == expected::PII_FAMILIES => {
                if declared_array_len(&m.masked, "ALL", "PiiKind") != Some(expected::PII_FAMILIES) {
                    out.push(fail(
                        PII_KIND,
                        e.line,
                        format!(
                            "PiiKind::ALL length must be declared [PiiKind; {}]",
                            expected::PII_FAMILIES
                        ),
                    ));
                }
            }
            Some(e) => out.push(fail(
                PII_KIND,
                e.line,
                format!(
                    "PiiKind has {} variants; the paper (Table 6) fixes {} families",
                    e.variants.len(),
                    expected::PII_FAMILIES
                ),
            )),
            None => out.push(fail(PII_KIND, 0, "cannot parse `enum PiiKind`".into())),
        }
    }

    // 12 PII expressions: 12 `Regex` fields plus the card-network vector.
    if let Some(m) = get(EXTRACT, &mut out) {
        match parse_struct(&m.masked, "PiiExtractor") {
            Some(s) => {
                let regex_fields = s.fields.iter().filter(|(_, ty)| ty == "Regex").count();
                if regex_fields != expected::PII_EXPRESSIONS {
                    out.push(fail(
                        EXTRACT,
                        s.line,
                        format!(
                            "PiiExtractor declares {} `Regex` fields; §5.6 fixes {} \
                             expressions",
                            regex_fields,
                            expected::PII_EXPRESSIONS
                        ),
                    ));
                }
                if !s.fields.iter().any(|(name, _)| name == "cards") {
                    out.push(fail(
                        EXTRACT,
                        s.line,
                        "PiiExtractor must keep the `cards` per-network patterns".into(),
                    ));
                }
            }
            None => out.push(fail(
                EXTRACT,
                0,
                "cannot parse `struct PiiExtractor`".into(),
            )),
        }
    }

    // 6 platforms folded into 5 data sets; corpus must name every platform.
    if let Some(m) = get(PLATFORM, &mut out) {
        let platform_variants = match parse_enum(&m.masked, "Platform") {
            Some(e) => {
                if e.variants.len() != expected::PLATFORMS {
                    out.push(fail(
                        PLATFORM,
                        e.line,
                        format!(
                            "Platform has {} variants; Table 1 fixes {} crawl sources",
                            e.variants.len(),
                            expected::PLATFORMS
                        ),
                    ));
                }
                if declared_array_len(&m.masked, "ALL", "Platform") != Some(expected::PLATFORMS) {
                    out.push(fail(
                        PLATFORM,
                        e.line,
                        format!(
                            "Platform::ALL length must be declared [Platform; {}]",
                            expected::PLATFORMS
                        ),
                    ));
                }
                e.variants
            }
            None => {
                out.push(fail(PLATFORM, 0, "cannot parse `enum Platform`".into()));
                Vec::new()
            }
        };
        match parse_enum(&m.masked, "DataSet") {
            Some(e) if e.variants.len() == expected::DATA_SETS => {}
            Some(e) => out.push(fail(
                PLATFORM,
                e.line,
                format!(
                    "DataSet has {} variants; Table 1 fixes {} data-set families",
                    e.variants.len(),
                    expected::DATA_SETS
                ),
            )),
            None => out.push(fail(PLATFORM, 0, "cannot parse `enum DataSet`".into())),
        }
        if let Some(corpus) = get(CORPUS_PLATFORMS, &mut out) {
            for v in &platform_variants {
                let pat = format!("Platform::{v}");
                if !corpus.masked.contains(&pat) {
                    out.push(fail(
                        CORPUS_PLATFORMS,
                        0,
                        format!("corpus platform model never mentions `{pat}`"),
                    ));
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_enum_counts_variants_with_payloads_and_discriminants() {
        let src = "pub enum E {\n  A = 0,\n  B { x: u8, y: u8 },\n  C(Vec<u8>, u8),\n  D,\n}\n";
        let m = MaskedFile::new(src);
        let e = parse_enum(&m.masked, "E").unwrap();
        assert_eq!(e.variants, vec!["A", "B", "C", "D"]);
        assert_eq!(e.line, 1);
    }

    #[test]
    fn parse_enum_skips_attributes_and_doc_comments() {
        let src = "enum E {\n  /// doc, with, commas\n  #[serde(rename = \"a\")]\n  A,\n  B,\n}\n";
        let m = MaskedFile::new(src);
        assert_eq!(parse_enum(&m.masked, "E").unwrap().variants.len(), 2);
    }

    #[test]
    fn parse_enum_is_word_bounded() {
        let src = "enum NotE { X, Y }\nenum E { A }\n";
        let m = MaskedFile::new(src);
        assert_eq!(parse_enum(&m.masked, "E").unwrap().variants, vec!["A"]);
    }

    #[test]
    fn parse_struct_extracts_field_types() {
        let src = "pub struct S {\n  pub a: Regex,\n  b: Vec<(Regex, &'static str)>,\n  pub(crate) c: Regex,\n}\n";
        let m = MaskedFile::new(src);
        let s = parse_struct(&m.masked, "S").unwrap();
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields.iter().filter(|(_, t)| t == "Regex").count(), 2);
        assert!(s.fields.iter().any(|(n, _)| n == "b"));
    }

    #[test]
    fn declared_lengths_and_consts() {
        let src = "const COUNT: usize = 29;\npub const ALL: [Platform; 6] = [];\n";
        let m = MaskedFile::new(src);
        assert_eq!(declared_const_usize(&m.masked, "COUNT"), Some(29));
        assert_eq!(declared_array_len(&m.masked, "ALL", "Platform"), Some(6));
        assert_eq!(declared_array_len(&m.masked, "ALL", "DataSet"), None);
    }
}
