//! CLI: `cargo run -p incite-lint -- check [--baseline PATH]
//! [--format json|text] [--update-baseline] [--root PATH]`.
//!
//! Exit codes: 0 clean (or baseline updated), 1 new violations, 2 usage,
//! I/O, or baseline-ledger error.

use incite_lint::baseline::Baseline;
use incite_lint::engine;
use incite_lint::rules::{RuleInfo, CATALOG};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
incite-lint: workspace static analysis

USAGE:
    incite-lint check [OPTIONS]
    incite-lint rules       (alias: --list-rules)
    incite-lint explain <RULE>   (alias: --explain; e.g. explain INC011)

OPTIONS:
    --baseline <PATH>    Baseline file (default: <root>/lint.baseline.json)
    --update-baseline    Rewrite the baseline from current findings and exit 0
    --format <FMT>       Report format: `text` (rustc-style, default) or
                         `json` (machine-readable, on stdout)
    --json               Shorthand for --format json
    --root <PATH>        Workspace root (default: current directory)
";

struct Args {
    baseline: Option<PathBuf>,
    update_baseline: bool,
    json: bool,
    root: PathBuf,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        baseline: None,
        update_baseline: false,
        json: false,
        root: PathBuf::from("."),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--baseline" => {
                let v = argv.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "--json" => args.json = true,
            "--format" => {
                let v = argv.next().ok_or("--format requires `json` or `text`")?;
                match v.as_str() {
                    "json" => args.json = true,
                    "text" => args.json = false,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (expected `json` or `text`)\n\n{USAGE}"
                        ))
                    }
                }
            }
            "--root" => {
                let v = argv.next().ok_or("--root requires a path")?;
                args.root = PathBuf::from(v);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok((command, args))
}

fn main() -> ExitCode {
    // `explain` takes a positional rule id, which the flag parser would
    // reject; route it before the flag loop runs.
    let mut peek = std::env::args().skip(1);
    if let Some(first) = peek.next() {
        if first == "explain" || first == "--explain" {
            return explain(peek.next());
        }
    }
    let (command, args) = match parse_args(std::env::args()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "check" => check(args),
        "rules" | "--list-rules" | "list-rules" => {
            for rule in CATALOG {
                println!("{}: {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `explain INCxxx`: the full catalog entry for one rule — contract, an
/// example that fires, and the expected fix — from the same table that
/// `rules` lists.
fn explain(id: Option<String>) -> ExitCode {
    let Some(id) = id else {
        eprintln!("explain requires a rule id (e.g. `incite-lint explain INC011`)\n\n{USAGE}");
        return ExitCode::from(2);
    };
    match RuleInfo::find(&id.to_ascii_uppercase()) {
        Some(rule) => {
            println!("{} — {}", rule.id, rule.summary);
            println!("\ncontract:\n  {}", rule.contract);
            println!("\nexample (fires):\n  {}", rule.example);
            println!("\nfix:\n  {}", rule.fix);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{id}` (run `incite-lint rules` for the catalog)");
            ExitCode::from(2)
        }
    }
}

fn check(args: Args) -> ExitCode {
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint.baseline.json"));

    let baseline = if args.update_baseline {
        // Regeneration ignores the existing file entirely.
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            // Missing baseline = empty baseline: every finding is new.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match engine::run(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let regenerated = Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(&baseline_path, regenerated.to_json()) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} grandfathered findings across {} files)",
            baseline_path.display(),
            report.findings.len(),
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    // The ledger must describe reality exactly: an entry above the
    // current count (stale after a pay-down, or hand-inflated) is a
    // typed hard error, not a note.
    if let Err(e) = baseline.verify(&report.findings) {
        eprintln!("error: {}: {e}", baseline_path.display());
        return ExitCode::from(2);
    }

    if args.json {
        print!("{}", engine::report_json(&report));
    } else {
        for f in &report.comparison.new_findings {
            eprintln!("{}\n", f.render());
        }
        eprintln!(
            "incite-lint: {} file(s), {} finding(s) ({} grandfathered, {} new)",
            report.files_scanned,
            report.findings.len(),
            report.findings.len() - report.comparison.new_findings.len(),
            report.comparison.new_findings.len()
        );
    }

    if report.comparison.new_findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
