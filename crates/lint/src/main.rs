//! CLI: `cargo run -p incite-lint -- check [--baseline PATH]
//! [--format json|text|sarif] [--threads N] [--no-cache]
//! [--update-baseline] [--root PATH]`.
//!
//! Exit codes: 0 clean (or baseline updated), 1 new violations, 2 usage,
//! I/O, or baseline-ledger error.

use incite_lint::baseline::Baseline;
use incite_lint::engine;
use incite_lint::rules::{RuleInfo, CATALOG};
use incite_lint::sarif;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
incite-lint: workspace static analysis

USAGE:
    incite-lint check [OPTIONS]
    incite-lint rules       (alias: --list-rules)
    incite-lint explain <RULE>   (alias: --explain; e.g. explain INC011)

OPTIONS:
    --baseline <PATH>    Baseline file (default: <root>/lint.baseline.json)
    --update-baseline    Rewrite the baseline from current findings and exit 0
    --format <FMT>       Report format: `text` (rustc-style, default),
                         `json` (machine-readable) or `sarif` (SARIF 2.1.0),
                         both on stdout
    --json               Shorthand for --format json
    --threads <N>        Worker threads for the per-file stage (default: the
                         machine's parallelism, capped at 8). Findings are
                         byte-identical at any thread count.
    --no-cache           Disable the warm-scan cache (default location:
                         <root>/target/incite-lint/)
    --root <PATH>        Workspace root (default: current directory)
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    baseline: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    threads: Option<usize>,
    no_cache: bool,
    root: PathBuf,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        baseline: None,
        update_baseline: false,
        format: Format::Text,
        threads: None,
        no_cache: false,
        root: PathBuf::from("."),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--baseline" => {
                let v = argv.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "--json" => args.format = Format::Json,
            "--format" => {
                let v = argv
                    .next()
                    .ok_or("--format requires `json`, `text` or `sarif`")?;
                match v.as_str() {
                    "json" => args.format = Format::Json,
                    "text" => args.format = Format::Text,
                    "sarif" => args.format = Format::Sarif,
                    other => {
                        return Err(format!(
                        "unknown format `{other}` (expected `json`, `text` or `sarif`)\n\n{USAGE}"
                    ))
                    }
                }
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads requires a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer".to_string());
                }
                args.threads = Some(n);
            }
            "--no-cache" => args.no_cache = true,
            "--root" => {
                let v = argv.next().ok_or("--root requires a path")?;
                args.root = PathBuf::from(v);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok((command, args))
}

fn main() -> ExitCode {
    // `explain` takes a positional rule id, which the flag parser would
    // reject; route it before the flag loop runs.
    let mut peek = std::env::args().skip(1);
    if let Some(first) = peek.next() {
        if first == "explain" || first == "--explain" {
            return explain(peek.next());
        }
    }
    let (command, args) = match parse_args(std::env::args()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "check" => check(args),
        "rules" | "--list-rules" | "list-rules" => {
            for rule in CATALOG {
                println!("{}: {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `explain INCxxx`: the full catalog entry for one rule — contract, an
/// example that fires, and the expected fix — from the same table that
/// `rules` lists.
fn explain(id: Option<String>) -> ExitCode {
    let Some(id) = id else {
        eprintln!("explain requires a rule id (e.g. `incite-lint explain INC011`)\n\n{USAGE}");
        return ExitCode::from(2);
    };
    match RuleInfo::find(&id.to_ascii_uppercase()) {
        Some(rule) => {
            println!("{} — {}", rule.id, rule.summary);
            println!("\ncontract:\n  {}", rule.contract);
            println!("\nexample (fires):\n  {}", rule.example);
            println!("\nfix:\n  {}", rule.fix);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{id}` (run `incite-lint rules` for the catalog)");
            ExitCode::from(2)
        }
    }
}

fn check(args: Args) -> ExitCode {
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint.baseline.json"));

    let baseline = if args.update_baseline {
        // Regeneration ignores the existing file entirely.
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            // Missing baseline = empty baseline: every finding is new.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    };

    let threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    });
    let options = engine::Options {
        threads,
        cache_dir: if args.no_cache {
            None
        } else {
            Some(args.root.join("target").join("incite-lint"))
        },
    };
    let report = match engine::run_with(&args.root, &baseline, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let regenerated = Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(&baseline_path, regenerated.to_json()) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} grandfathered findings across {} files)",
            baseline_path.display(),
            report.findings.len(),
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    // The ledger must describe reality exactly: an entry above the
    // current count (stale after a pay-down, or hand-inflated) is a
    // typed hard error, not a note.
    if let Err(e) = baseline.verify(&report.findings) {
        eprintln!("error: {}: {e}", baseline_path.display());
        return ExitCode::from(2);
    }

    match args.format {
        Format::Json => print!("{}", engine::report_json(&report)),
        Format::Sarif => print!("{}", sarif::report_sarif(&report)),
        Format::Text => {
            for f in &report.comparison.new_findings {
                eprintln!("{}\n", f.render());
            }
            eprintln!(
                "incite-lint: {} file(s) ({} re-analyzed), {} finding(s) \
                 ({} grandfathered, {} new)",
                report.files_scanned,
                report.files_reanalyzed,
                report.findings.len(),
                report.findings.len() - report.comparison.new_findings.len(),
                report.comparison.new_findings.len()
            );
        }
    }

    if report.comparison.new_findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
