//! The pattern-based rule catalog (INC001–INC007) and the finding type.
//!
//! Each rule scans the *masked* text of a file (see [`crate::lexer`]), so
//! occurrences inside comments and string literals never match. Rules are
//! scoped by repo-relative path; the scoping encodes which invariant each
//! rule protects (see DESIGN.md, "Static analysis").

use crate::lexer::MaskedFile;

/// Diagnostic severity. Every shipped rule is `Error` today; the field
/// exists so a future rule can be introduced as `Warn` before ratcheting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, e.g. `INC001`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    pub message: String,
    /// Dataflow steps for taint findings (INC011–INC013): source → hops
    /// → sink, one human-readable step per entry. Empty for lexical and
    /// graph rules.
    pub trace: Vec<String>,
}

impl Finding {
    /// Rustc-style rendering: `error[INC001]: message\n  --> file:line`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}",
            self.severity.as_str(),
            self.rule,
            self.message,
            self.file,
            self.line
        )
    }
}

/// Static description of a rule. One table backs `--list-rules` (id +
/// summary), `--explain INCxxx` (contract + example + fix) and the docs
/// test, so the three can never drift apart.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    /// The invariant the rule enforces, stated as a contract.
    pub contract: &'static str,
    /// A minimal violating snippet (or scenario) that fires the rule.
    pub example: &'static str,
    /// How to bring violating code back into contract.
    pub fix: &'static str,
}

impl RuleInfo {
    /// Catalog lookup by rule id (`"INC011"` → its entry).
    pub fn find(id: &str) -> Option<&'static RuleInfo> {
        CATALOG.iter().find(|r| r.id == id)
    }
}

/// The shipped catalog.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "INC001",
        summary: "no unwrap()/expect()/panic!/todo! in library code of \
                  core, ml, pii, regexlite, stats, cli, serve, stream \
                  (tests and benches exempt)",
        contract: "Library code in core, ml, pii, regexlite, stats, cli, \
                   serve and stream never aborts the process: every fallible \
                   operation returns a typed error the caller can handle.",
        example: "let doc = serde_json::from_str(line).unwrap();",
        fix: "Propagate with `?` into the crate's typed error enum, or handle \
              the failure locally (skip / quarantine / default).",
    },
    RuleInfo {
        id: "INC002",
        summary: "no nondeterminism (thread_rng, SystemTime::now, Instant::now) \
                  in library crates; bench binaries exempt",
        contract: "Library crates derive every value from their inputs: no \
                   ambient entropy or wall clock, so identical inputs always \
                   produce byte-identical outputs.",
        example: "let seed = SystemTime::now().duration_since(UNIX_EPOCH);",
        fix: "Thread an explicit seed / timestamp through the API (the \
              pipeline config carries `seed: u64`); keep clocks in bench \
              binaries and the serve crate only.",
    },
    RuleInfo {
        id: "INC003",
        summary: "no float == / != comparisons in stats and ml library code",
        contract: "Statistical code never compares floats for exact equality; \
                   thresholds and convergence checks use explicit epsilons.",
        example: "if score == prev_score { break; }",
        fix: "Compare with an explicit tolerance: \
              `(score - prev_score).abs() < EPS`, or compare `to_bits()` when \
              byte-identity is genuinely intended.",
    },
    RuleInfo {
        id: "INC004",
        summary: "no unchecked slice indexing in the regexlite VM hot loop",
        contract: "The regex VM inner loop only reads through checked \
                   accessors (`get`, iterators), so crafted patterns or \
                   inputs cannot panic the matcher.",
        example: "let op = self.prog[pc];",
        fix: "Use `self.prog.get(pc)` and treat `None` as a match failure \
              (the VM's bail-out path).",
    },
    RuleInfo {
        id: "INC005",
        summary: "taxonomy/pii/corpus spec constants must agree with the paper \
                  (10 attack parents, 28+1 subcategories, 9 PII families / 12 \
                  expressions, 6 platforms / 5 data sets)",
        contract: "The taxonomy, PII expression set and platform list encode \
                   the paper's published counts; drifting constants would \
                   silently change every downstream table.",
        example: "Adding an 11th attack parent without updating the spec \
                  tables in DESIGN.md.",
        fix: "Either revert the constant or update the paper-spec table and \
              DESIGN.md together, then adjust the rule's expected counts in \
              the same commit.",
    },
    RuleInfo {
        id: "INC006",
        summary: "no raw file writes (File::create, fs::write, OpenOptions) in \
                  library code outside checkpoint::atomic_io — all persisted \
                  state must go through the atomic write-rename + hash funnel",
        contract: "Every persisted artifact is written atomically (temp file + \
                   rename) with a content hash, so a crash can never leave a \
                   torn or unverifiable file behind.",
        example: "std::fs::write(path, payload)?; // in crates/core/src/...",
        fix: "Route the write through `checkpoint::atomic_io::write_hashed` \
              (or add a typed wrapper there if the shape is new).",
    },
    RuleInfo {
        id: "INC007",
        summary: "no std::net (TcpListener, TcpStream, UdpSocket) outside the \
                  serve crate and the CLI — the network edge stays behind \
                  incite-serve's typed HTTP surface",
        contract: "Exactly one crate owns sockets. Analysis code cannot grow \
                   hidden network dependencies, and the offline build stays \
                   provably offline.",
        example: "TcpStream::connect(addr) inside crates/ml/src/...",
        fix: "Move the network interaction behind incite-serve's typed \
              client/server API, or pass the data in as a value.",
    },
    RuleInfo {
        id: "INC008",
        summary: "workspace locks are acquired in one consistent order — the \
                  item graph must not show the same two locks taken in both \
                  orders anywhere (potential deadlock)",
        contract: "For any two workspace locks A and B, all code paths agree \
                   on which is taken first; the item graph proves no A→B and \
                   B→A pair exists.",
        example: "Thread 1 locks `queue` then `metrics`; thread 2 locks \
                  `metrics` then `queue`.",
        fix: "Pick one order (document it on the struct holding the locks) \
              and reorder the minority call sites; or merge the two locks.",
    },
    RuleInfo {
        id: "INC009",
        summary: "no blocking operation (file I/O via checkpoint::atomic_io, \
                  thread::sleep, Condvar::wait, channel recv, TcpStream reads, \
                  join) while a Mutex/RwLock guard is live",
        contract: "Critical sections are compute-only: a held guard never \
                   spans file I/O, sleeps, channel waits or joins, so lock \
                   hold times stay bounded.",
        example: "let g = state.lock().unwrap(); write_hashed(path, &g.data)?;",
        fix: "Clone or take what the blocking call needs, drop the guard \
              (end the scope or `drop(g)`), then block.",
    },
    RuleInfo {
        id: "INC010",
        summary: "serve request handlers only grow buffers (push/extend/\
                  push_str) inside loops under a visible bound — with_capacity \
                  pre-allocation or a max_batch/queue_depth/constant check",
        contract: "No request can make the server allocate unboundedly: every \
                   buffer grown in a handler loop is pre-sized or guarded by \
                   a visible max_batch/queue_depth/constant bound.",
        example: "for doc in body_docs { batch.push(doc); } // no bound check",
        fix: "Pre-allocate with `Vec::with_capacity(max_batch)` or guard the \
              loop with the configured bound and reject oversized requests.",
    },
    RuleInfo {
        id: "INC011",
        summary: "tainted document text never reaches a diagnostic sink \
                  (println!/eprintln!/panic!, serve error bodies, CLI error \
                  funnel) without passing a registered sanitizer",
        contract: "Corpus text, request bodies and values derived from them \
                   are taint-tracked across calls, returns, bindings and \
                   format! captures; only `pii::redact`, \
                   `corpus::redact_excerpt`, feature hashing and the \
                   panic-message funnel launder taint. No tainted value may \
                   flow into stderr/stdout diagnostics, serve error \
                   responses or the CLI error funnel.",
        example: "eprintln!(\"bad doc: {text}\");  // text came from \
                  read_jsonl",
        fix: "Report structure, not content: byte offsets, lengths, hashes, \
              or a `redact_excerpt`-shaped excerpt. If content is truly \
              required, pass it through `pii::redact` first.",
    },
    RuleInfo {
        id: "INC012",
        summary: "no nondeterminism source (wall clock, RandomState hash \
                  iteration, thread ids, pointer-to-int casts) is reachable \
                  from the scoring entry points",
        contract: "Every function reachable in the call graph from \
                   ScoringEngine's methods or the pipeline entry points is \
                   pure: no Instant/SystemTime reads, no thread_rng, no \
                   thread-id observation, no HashMap/HashSet (RandomState \
                   iteration order), no pointer-to-integer casts. Scoring is \
                   a function of (model, text) and nothing else.",
        example: "let mut by_label: HashMap<Label, f32> = HashMap::new(); \
                  // inside a fn called from score_texts",
        fix: "Use BTreeMap/BTreeSet (deterministic order) or a seeded \
              hasher; take timestamps outside the scoring path and pass \
              them in as values.",
    },
    RuleInfo {
        id: "INC013",
        summary: "error enum variants carrying String/str are never \
                  constructed from unredacted document text",
        contract: "Typed errors travel far (logs, quarantine reports, serve \
                   bodies), so any `Enum::Variant(..)` or \
                   `Enum::Variant { .. }` whose payload can carry text must \
                   be built from static strings or sanitizer output, never \
                   from tainted values.",
        example: "JsonlError::Malformed { excerpt: raw_line.to_string() }",
        fix: "Store structure (offsets, counts) in the variant, or sanitize \
              at construction: `excerpt: redact_excerpt(raw, 40)`.",
    },
    RuleInfo {
        id: "INC014",
        summary: "every atomic_io write/append site in core, serve and \
                  stream is reachable from a failpoint check/trip site, so \
                  the kill sweep covers it",
        contract: "Crash-recovery is proven by the failpoint sweeps, and a \
                   sweep can only kill what a failpoint brackets: every \
                   `write_atomic`/`write_hashed`/`write_framed`/\
                   `AppendLog::open` call site outside tests must be \
                   reachable, through the call graph, from a function that \
                   consults a failpoint registry (`.check(..)`/`.trip(..)`). \
                   An unreachable write is persistence the sweep silently \
                   stopped covering.",
        example: "pub fn save(&self) { atomic_io::write_hashed(&self.path, \
                  payload)?; } // no sweep reaches save()",
        fix: "Route the write under an existing swept entry point, or add a \
              registered failpoint site on the path to it (see \
              `core::failpoints` / `serve::chaos`) and cover it in the \
              sweep tests.",
    },
    RuleInfo {
        id: "INC015",
        summary: "no f32/f64 accumulation across parallel::map_indexed \
                  slots: closures must be slot-indexed, folds sequential",
        contract: "The parallel executor guarantees byte-identical output \
                   at any thread count because slot `i` is exactly `f(i)`. \
                   A mutable float declared before a `map_indexed` call and \
                   accumulated inside the closure folds in worker-completion \
                   order, which breaks that guarantee in exactly the way the \
                   determinism ratchets exist to catch.",
        example: "let mut total = 0.0f32;\nmap_indexed(n, threads, |i| { \
                  total += score(i); 0 });",
        fix: "Return the per-slot value from the closure and fold the \
              returned slot vector sequentially: `let slots = \
              map_indexed(n, threads, score)?; let total: f32 = \
              slots.iter().sum();`.",
    },
    RuleInfo {
        id: "INC016",
        summary: "wire-decoded lengths/offsets in corpus::jsonl and \
                  stream::event are bounded before +/*/narrowing-as \
                  arithmetic",
        contract: "Values decoded from wire bytes (`from_le_bytes`, \
                   `.parse(..)`, `serde_json::from_str(..)`) are attacker- \
                   controlled: until a bound guard (`<`/`<=`/`.min(..)`/\
                   `.get(..)`) or a `checked_*`/`saturating_*` operation \
                   intervenes, they must not feed bare `+`/`*` arithmetic \
                   or a narrowing `as` cast, where overflow or truncation \
                   silently corrupts offsets. Collection `.len()` values \
                   are already bounded and stay clean.",
        example: "let len = u32::from_le_bytes(hdr);\nlet end = offset + \
                  len; // unbounded wire value",
        fix: "Guard first (`if len <= MAX_FRAME { .. }`), or use \
              `checked_add`/`checked_mul` and handle `None` as a typed \
              decode error.",
    },
];

/// Crates whose library code must be panic-free (INC001).
const PANIC_FREE_CRATES: &[&str] = &[
    "core",
    "ml",
    "pii",
    "regexlite",
    "stats",
    "cli",
    "serve",
    "stream",
];

/// Crates whose library code INC003 (float equality) applies to.
const FLOAT_EQ_CRATES: &[&str] = &["stats", "ml"];

fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    // Only library sources: crates/<name>/src/**. `tests/` and `benches/`
    // directories fall outside `src/` and are exempt by construction.
    tail.starts_with("src/").then_some(name)
}

fn in_scope_inc001(path: &str) -> bool {
    crate_of(path).is_some_and(|c| PANIC_FREE_CRATES.contains(&c))
}

fn in_scope_inc002(path: &str) -> bool {
    // All library crates except the bench harness (its binaries measure
    // wall-clock by design) and the serving layer (request deadlines and
    // latency histograms are wall-clock by definition; scoring itself
    // stays deterministic because the engine never reads the clock).
    crate_of(path).is_some_and(|c| c != "bench" && c != "serve")
}

fn in_scope_inc003(path: &str) -> bool {
    crate_of(path).is_some_and(|c| FLOAT_EQ_CRATES.contains(&c))
}

fn in_scope_inc004(path: &str) -> bool {
    path == "crates/regexlite/src/vm.rs"
}

fn in_scope_inc006(path: &str) -> bool {
    // The crash-recovery contract (DESIGN.md §12): every persisted file
    // goes through `checkpoint::atomic_io`, the one module allowed to
    // open files for writing. The bench harness writes reports and the
    // linter rewrites its own baseline; neither holds pipeline state.
    if path == "crates/core/src/checkpoint/atomic_io.rs" {
        return false;
    }
    crate_of(path).is_some_and(|c| c != "bench" && c != "lint")
}

fn in_scope_inc007(path: &str) -> bool {
    // The network edge lives in exactly two places: the serve crate (the
    // server, plus the test/bench HTTP client in serve::client) and the
    // CLI that boots it. Everything else must go through those types.
    crate_of(path).is_some_and(|c| c != "serve" && c != "cli")
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `hay[at..]` starts with `needle` at a word boundary on the left.
fn word_start_at(hay: &[u8], at: usize) -> bool {
    at == 0 || !is_ident_byte(hay[at - 1])
}

/// All byte offsets where `needle` occurs in `line`.
fn occurrences<'a>(line: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        let rel = line[from..].find(needle)?;
        let at = from + rel;
        from = at + 1;
        Some(at)
    })
}

/// Runs INC001–INC004 over one masked file. `path` is repo-relative.
pub fn scan_file(path: &str, masked: &MaskedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let inc001 = in_scope_inc001(path);
    let inc002 = in_scope_inc002(path);
    let inc003 = in_scope_inc003(path);
    let inc004 = in_scope_inc004(path);
    let inc006 = in_scope_inc006(path);
    let inc007 = in_scope_inc007(path);
    if !(inc001 || inc002 || inc003 || inc004 || inc006 || inc007) {
        return findings;
    }

    for (idx, line) in masked.masked.lines().enumerate() {
        let lineno = idx + 1;
        let in_tests = masked.in_test_region(lineno);
        let mut push = |rule: &'static str, message: String| {
            if !masked.is_suppressed(rule, lineno) {
                findings.push(Finding {
                    rule,
                    severity: Severity::Error,
                    file: path.to_string(),
                    line: lineno,
                    message,
                    trace: Vec::new(),
                });
            }
        };

        if inc001 && !in_tests {
            // `.expect(` cannot match `.expect_err(`: the needle includes
            // the open paren.
            for (needle, label) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
                for _ in occurrences(line, needle) {
                    push("INC001", format!("`{label}` in library code"));
                }
            }
            for needle in ["panic!", "todo!"] {
                for at in occurrences(line, needle) {
                    if word_start_at(line.as_bytes(), at) {
                        push("INC001", format!("`{needle}` in library code"));
                    }
                }
            }
        }

        if inc002 {
            for needle in ["thread_rng", "SystemTime::now", "Instant::now"] {
                for at in occurrences(line, needle) {
                    if word_start_at(line.as_bytes(), at) {
                        push(
                            "INC002",
                            format!("nondeterministic `{needle}` in library crate"),
                        );
                    }
                }
            }
        }

        if inc003 && !in_tests {
            for op in ["==", "!="] {
                for at in occurrences(line, op) {
                    // Skip `!==`/`===` fragments and pattern arms `=>`.
                    if at + op.len() < line.len() && line.as_bytes()[at + op.len()] == b'=' {
                        continue;
                    }
                    if at > 0
                        && (line.as_bytes()[at - 1] == b'=' || line.as_bytes()[at - 1] == b'!')
                    {
                        continue;
                    }
                    let left = last_token(&line[..at]);
                    let right = first_token(&line[at + op.len()..]);
                    if is_float_token(left) || is_float_token(right) || casts_to_float(&line[..at])
                    {
                        push(
                            "INC003",
                            format!("float `{op}` comparison (use an epsilon or total ordering)"),
                        );
                    }
                }
            }
        }

        if inc006 && !in_tests {
            // Tests stage fixtures and corrupt checkpoint bytes on purpose;
            // library code must route every write through the funnel.
            for needle in ["File::create", "fs::write", "OpenOptions"] {
                for at in occurrences(line, needle) {
                    if word_start_at(line.as_bytes(), at) {
                        push(
                            "INC006",
                            format!(
                                "raw file write `{needle}` outside checkpoint::atomic_io \
                                 (use write_atomic/write_hashed)"
                            ),
                        );
                    }
                }
            }
        }

        if inc007 && !in_tests {
            // `use std::net::TcpStream` would trip both the module needle
            // and the type needle; report the module path once and only
            // fall back to bare type names (e.g. after a `use`).
            let mut module_hit = false;
            for at in occurrences(line, "std::net") {
                if word_start_at(line.as_bytes(), at) {
                    push(
                        "INC007",
                        "`std::net` outside incite-serve/cli (route network I/O \
                         through the serve crate)"
                            .to_string(),
                    );
                    module_hit = true;
                }
            }
            if !module_hit {
                for needle in ["TcpListener", "TcpStream", "UdpSocket"] {
                    for at in occurrences(line, needle) {
                        if word_start_at(line.as_bytes(), at) {
                            push(
                                "INC007",
                                format!(
                                    "`{needle}` outside incite-serve/cli (route network \
                                     I/O through the serve crate)"
                                ),
                            );
                        }
                    }
                }
            }
        }

        if inc004 && !in_tests {
            for (at, _) in line.match_indices('[') {
                if at == 0 {
                    continue;
                }
                let prev = line.as_bytes()[at - 1];
                // `ident[`, `)[`, `][` index a place expression. Attributes
                // (`#[`), macros (`vec![`), types (`: [u8; 4]`), and slice
                // borrows (`&[`) do not.
                if is_ident_byte(prev) || prev == b')' || prev == b']' {
                    push(
                        "INC004",
                        "unchecked slice index in VM hot loop (use get()/get_mut() \
                         or a checked helper)"
                            .to_string(),
                    );
                }
            }
        }
    }
    findings
}

/// Last whitespace-delimited token of `s`, trimmed of trailing operators.
fn last_token(s: &str) -> &str {
    let s = s.trim_end();
    let start = s
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .map(|i| i + c_len(s, i))
        .unwrap_or(0);
    &s[start..]
}

/// First whitespace-delimited token of `s`.
fn first_token(s: &str) -> &str {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(s.len());
    &s[..end]
}

fn c_len(s: &str, i: usize) -> usize {
    s[i..].chars().next().map_or(1, |c| c.len_utf8())
}

/// Whether a token is a float literal: `1.0`, `0.5e-3`, `2f64`, `1_000.0f32`.
fn is_float_token(tok: &str) -> bool {
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map(|t| (t, true))
        .unwrap_or((tok, false));
    let (body, had_suffix) = tok;
    let body = body.trim_end_matches('.');
    if body.is_empty() || !body.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let mut saw_dot = false;
    for b in body.bytes() {
        match b {
            b'0'..=b'9' | b'_' => {}
            b'.' => saw_dot = true,
            b'e' | b'E' | b'+' | b'-' => {}
            _ => return false,
        }
    }
    saw_dot || had_suffix
}

/// Whether the text left of the operator ends in an `as f64` / `as f32`
/// cast, possibly parenthesised as `(x as f64)`.
fn casts_to_float(left: &str) -> bool {
    let left = left.trim_end().trim_end_matches(')').trim_end();
    left.ends_with("as f64") || left.ends_with("as f32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::MaskedFile;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, &MaskedFile::new(src))
    }

    #[test]
    fn inc001_flags_unwrap_in_core_src() {
        let f = scan("crates/core/src/pipeline.rs", "let x = y.unwrap();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "INC001");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn inc001_ignores_unwrap_or_and_expect_err() {
        let src = "let a = y.unwrap_or(0);\nlet b = y.unwrap_or_default();\nlet c = r.expect_err(\"no\");\n";
        assert!(scan("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn inc001_exempts_test_mods_and_out_of_scope_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(scan("crates/core/src/pipeline.rs", src).is_empty());
        // taxonomy is not in the INC001 panic-free set.
        assert!(scan("crates/taxonomy/src/attack.rs", "x.unwrap();\n").is_empty());
        // tests/ and benches/ directories are out of scope entirely.
        assert!(scan("crates/core/tests/it.rs", "x.unwrap();\n").is_empty());
    }

    #[test]
    fn inc001_word_boundary_on_macros() {
        assert!(scan("crates/ml/src/lib.rs", "no_panic!();\n").is_empty());
        assert_eq!(scan("crates/ml/src/lib.rs", "panic!(\"x\");\n").len(), 1);
        assert_eq!(scan("crates/ml/src/lib.rs", "todo!()\n").len(), 1);
    }

    #[test]
    fn inc002_flags_wall_clock_everywhere_in_library() {
        let f = scan(
            "crates/textkit/src/lib.rs",
            "let t = std::time::Instant::now();\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "INC002");
        // Even inside #[cfg(test)]: deterministic tests are part of the spec.
        let f = scan(
            "crates/regexlite/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n  fn t() { let t = Instant::now(); }\n}\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn inc002_exempts_bench_crate() {
        assert!(scan("crates/bench/src/bin/repro.rs", "Instant::now();\n").is_empty());
    }

    #[test]
    fn inc003_flags_float_literal_comparison() {
        let f = scan("crates/stats/src/ecdf.rs", "if x == 0.5 { }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "INC003");
        assert_eq!(scan("crates/ml/src/lib.rs", "if 1.0 != y { }\n").len(), 1);
        assert_eq!(
            scan("crates/ml/src/lib.rs", "if (n as f64) == m { }\n").len(),
            1
        );
        assert_eq!(scan("crates/ml/src/lib.rs", "if y == 2f64 { }\n").len(), 1);
    }

    #[test]
    fn inc003_ignores_int_comparisons_and_other_crates() {
        assert!(scan("crates/stats/src/ecdf.rs", "if x == 5 { }\n").is_empty());
        assert!(scan("crates/stats/src/ecdf.rs", "if a != b { }\n").is_empty());
        assert!(scan("crates/stats/src/ecdf.rs", "if t.0 == u.0 { }\n").is_empty());
        assert!(scan("crates/core/src/lib.rs", "if x == 0.5 { }\n").is_empty());
        // `=>` match arms and `<=`/`>=`/`!==` fragments don't trip it.
        assert!(scan("crates/stats/src/ecdf.rs", "Some(x) => 0.5,\n").is_empty());
        assert!(scan("crates/stats/src/ecdf.rs", "if x <= 0.5 { }\n").is_empty());
    }

    #[test]
    fn inc004_flags_indexing_only_in_vm() {
        let f = scan("crates/regexlite/src/vm.rs", "let i = insts[pc];\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "INC004");
        assert!(scan("crates/regexlite/src/compile.rs", "insts[pc];\n").is_empty());
    }

    #[test]
    fn inc004_ignores_attributes_macros_types_and_borrows() {
        let src = "#[derive(Debug)]\nlet v = vec![1];\nlet t: [u8; 4] = x;\nlet s: &[u8] = y;\n";
        assert!(scan("crates/regexlite/src/vm.rs", src).is_empty());
    }

    #[test]
    fn inc006_flags_raw_file_writes_in_library_code() {
        for src in [
            "let f = std::fs::File::create(&path)?;\n",
            "std::fs::write(&path, bytes)?;\n",
            "let f = OpenOptions::new().append(true).open(&path)?;\n",
        ] {
            let f = scan("crates/core/src/pipeline.rs", src);
            assert_eq!(f.len(), 1, "missed in {src:?}");
            assert_eq!(f[0].rule, "INC006");
        }
        // Applies to every library crate, not just core.
        assert_eq!(
            scan("crates/ml/src/persist.rs", "std::fs::write(p, b)?;\n").len(),
            1
        );
    }

    #[test]
    fn inc006_exempts_the_funnel_tests_and_harness_crates() {
        let write = "let f = std::fs::File::create(&tmp)?;\n";
        // The one module allowed to open files for writing.
        assert!(scan("crates/core/src/checkpoint/atomic_io.rs", write).is_empty());
        // Test regions stage fixtures and corrupt bytes on purpose.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(p, b).unwrap(); }\n}\n";
        assert!(scan("crates/corpus/src/jsonl.rs", test_src)
            .iter()
            .all(|f| f.rule != "INC006"));
        // Bench reports and the linter's own baseline are not pipeline state.
        assert!(scan("crates/bench/src/bin/repro.rs", write).is_empty());
        assert!(scan("crates/lint/src/main.rs", write).is_empty());
        // tests/ directories are out of scope by construction.
        assert!(scan("crates/core/tests/it.rs", write).is_empty());
    }

    #[test]
    fn inc007_flags_network_types_outside_serve_and_cli() {
        let f = scan("crates/core/src/pipeline.rs", "use std::net::TcpStream;\n");
        assert_eq!(f.len(), 1, "module path reported once, not per needle");
        assert_eq!(f[0].rule, "INC007");
        // Bare type names (already-imported) are caught too.
        assert_eq!(
            scan(
                "crates/bench/src/throughput.rs",
                "let l = TcpListener::bind(a);\n"
            )
            .len(),
            1
        );
        assert_eq!(
            scan("crates/ml/src/lib.rs", "fn f(s: UdpSocket) {}\n").len(),
            1
        );
    }

    #[test]
    fn inc007_exempts_serve_cli_tests_and_idents() {
        let src = "use std::net::{TcpListener, TcpStream};\n";
        assert!(scan("crates/serve/src/server.rs", src).is_empty());
        assert!(scan("crates/serve/src/client.rs", src).is_empty());
        assert!(scan("crates/cli/src/lib.rs", src).is_empty());
        // tests/ directories and test regions are out of scope.
        assert!(scan("crates/core/tests/it.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n";
        assert!(scan("crates/core/src/pipeline.rs", test_src).is_empty());
        // Identifier suffixes don't trip the word boundary.
        assert!(scan("crates/core/src/pipeline.rs", "let my_TcpStream = 1;\n").is_empty());
    }

    #[test]
    fn suppression_silences_a_finding() {
        let src = "let x = y.unwrap(); // incite-lint: allow(INC001)\n";
        assert!(scan("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn string_contents_never_match() {
        let src = "let s = \"call .unwrap() and panic! now\";\n";
        assert!(scan("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn render_is_rustc_style() {
        let f = Finding {
            rule: "INC001",
            severity: Severity::Error,
            file: "crates/core/src/pipeline.rs".into(),
            line: 7,
            message: "`unwrap()` in library code".into(),
            trace: Vec::new(),
        };
        assert_eq!(
            f.render(),
            "error[INC001]: `unwrap()` in library code\n  --> crates/core/src/pipeline.rs:7"
        );
    }
}
