//! Code masking: strips comments, strings, and char literals from
//! Rust source so rule patterns match real code only.
//!
//! The masked text has exactly the same byte layout as the input — every
//! masked character is replaced by a space (newlines are preserved) — so
//! `file:line` positions computed on the masked text are valid for the
//! original. String and character literal *delimiters* are kept so the
//! expression shape survives (`x == "a"` masks to `x == " "`), while
//! comment delimiters are masked away entirely.
//!
//! The lexer also collects `// incite-lint: allow(RULE)` suppression
//! pragmas and the line ranges of `#[cfg(test)]` items, both of which the
//! rule engine consumes.

/// A source file after masking, with the side tables rules need.
#[derive(Clone)]
pub struct MaskedFile {
    /// Source with comment/string/char-literal contents blanked.
    pub masked: String,
    /// `(line, rule)` pairs: findings for `rule` on `line` are suppressed.
    /// Lines are 1-based.
    pub suppressions: Vec<(usize, String)>,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Format-string interpolation captures: `(masked byte offset, ident)`
    /// for every `{ident}` / `{ident:spec}` inside a string literal.
    /// Masking blanks the literal, so these are the only record of which
    /// locals a `format!`-family call reads — the taint pass needs them.
    pub captures: Vec<(usize, String)>,
}

impl MaskedFile {
    /// Masks `source` and extracts pragmas and test regions.
    pub fn new(source: &str) -> MaskedFile {
        let (masked, comments, captures) = mask(source);
        let suppressions = parse_suppressions(&masked, &comments);
        let test_regions = find_test_regions(&masked);
        MaskedFile {
            masked,
            suppressions,
            test_regions,
            captures,
        }
    }

    /// Whether a 1-based line falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether findings for `rule` are suppressed on a 1-based line.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|(l, r)| *l == line && r == rule)
    }
}

/// A line comment captured during masking: line number and its text.
struct Comment {
    /// 1-based line the comment starts on.
    line: usize,
    /// Comment text without the leading `//`.
    text: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments carry their depth.
    BlockComment(u32),
    Str,
    /// Raw strings remember their `#` count so `"##` only closes `r##"`.
    RawStr(u32),
    CharLit,
}

/// Masks `source`, returning the masked text plus captured line comments
/// and format-string interpolation captures.
fn mask(source: &str) -> (String, Vec<Comment>, Vec<(usize, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut captures = Vec::new();
    // An in-progress `{ident…` capture inside a string literal: the
    // masked offset of its `{` plus the ident accumulated so far.
    let mut capture: Option<(usize, String)> = None;
    let mut state = State::Code;
    let mut line = 1usize;
    let mut current_comment = String::new();
    let mut comment_start_line = 0usize;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
        }
        if matches!(state, State::Str | State::RawStr(_)) {
            match &mut capture {
                Some((off, ident)) => match c {
                    _ if is_ident_char(c) => ident.push(c),
                    // `}` ends the capture; `:` starts a format spec —
                    // either way the ident is complete.
                    '}' | ':' => {
                        if ident
                            .chars()
                            .next()
                            .is_some_and(|f| f.is_alphabetic() || f == '_')
                        {
                            captures.push((*off, ident.clone()));
                        }
                        capture = None;
                    }
                    // Anything else (`{{`, `{0}`, `{x.y}`…) is not a plain
                    // ident capture.
                    _ => capture = None,
                },
                None if c == '{' => capture = Some((out.len(), String::new())),
                None => {}
            }
        } else {
            capture = None;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment_start_line = line;
                    current_comment.clear();
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b' => {
                    // Raw / byte-string openers: r", r#", br"", b"...
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_ident_continuation = i > 0 && is_ident_char(chars[i - 1]);
                    if chars.get(j) == Some(&'"')
                        && !is_ident_continuation
                        && (c == 'r'
                            || chars.get(i + 1) == Some(&'"')
                            || chars.get(i + 1) == Some(&'r'))
                    {
                        out.extend(&chars[i..=j]);
                        state = if c == 'b' && chars.get(i + 1) != Some(&'r') && hashes == 0 {
                            State::Str // plain byte string b"..."
                        } else {
                            State::RawStr(hashes)
                        };
                        i = j + 1;
                        continue;
                    }
                    // Raw identifiers (`r#fn`, `r#type`): mask the whole
                    // token, or the keyword-shaped name would leak into the
                    // masked stream and spoof the item parser. `r#ident` is
                    // never the std API its name resembles, so blanking it is
                    // sound for every pattern rule too.
                    if c == 'r'
                        && hashes == 1
                        && !is_ident_continuation
                        && chars.get(j).is_some_and(|&n| is_ident_char(n))
                    {
                        out.push_str("  ");
                        let mut k = j;
                        while chars.get(k).is_some_and(|&n| is_ident_char(n)) {
                            out.push(' ');
                            k += 1;
                        }
                        i = k;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'a in `<'a>` is a lifetime.
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(n) if is_ident_char(n) => chars.get(i + 2) == Some(&'\''),
                        Some(_) => true, // e.g. '(' — punctuation char literal
                        None => false,
                    };
                    if is_literal {
                        state = State::CharLit;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    comments.push(Comment {
                        line: comment_start_line,
                        text: current_comment.clone(),
                    });
                    state = State::Code;
                    out.push('\n');
                } else {
                    current_comment.push(c);
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    // Mask the escape pair so `\"` cannot close the string.
                    out.push(' ');
                    if let Some(n) = next {
                        out.push(if n == '\n' { '\n' } else { ' ' });
                        if n == '\n' {
                            line += 1;
                        }
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::CharLit => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    if state == State::LineComment {
        comments.push(Comment {
            line: comment_start_line,
            text: current_comment,
        });
    }
    (out, comments, captures)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts `incite-lint: allow(RULE[, RULE...])` pragmas from comments.
/// A pragma on a line with code applies to that line; a pragma on its own
/// line applies to the following line.
fn parse_suppressions(masked: &str, comments: &[Comment]) -> Vec<(usize, String)> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut out = Vec::new();
    for comment in comments {
        let Some(rest) = comment.text.trim().strip_prefix("incite-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|s| s.strip_suffix(')'))
        else {
            continue;
        };
        let has_code = lines
            .get(comment.line - 1)
            .is_some_and(|l| !l.trim().is_empty());
        let target = if has_code {
            comment.line
        } else {
            comment.line + 1
        };
        for rule in inner.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push((target, rule.to_string()));
            }
        }
    }
    out
}

/// Finds line ranges of items annotated `#[cfg(test)]` — typically
/// `mod tests { ... }` — by brace matching on the masked text.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let start_line = line_of(bytes, attr_at);
        let after = attr_at + "#[cfg(test)]".len();
        // The annotated item ends either at a `;` (e.g. `#[cfg(test)] use ...;`)
        // or at the matching close of its first `{`.
        let mut end = None;
        let mut j = after;
        let rest = bytes;
        while j < rest.len() {
            match rest[j] {
                b';' => {
                    end = Some(j);
                    break;
                }
                b'{' => {
                    end = matching_brace(rest, j);
                    break;
                }
                _ => j += 1,
            }
        }
        match end {
            Some(e) => {
                regions.push((start_line, line_of(bytes, e)));
                search_from = e + 1;
            }
            None => {
                // Unbalanced input: treat the rest of the file as the region.
                regions.push((start_line, line_of(bytes, bytes.len().saturating_sub(1))));
                break;
            }
        }
    }
    regions
}

/// Index of the `}` matching the `{` at `open`, on masked text.
pub(crate) fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (off, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// 1-based line number of byte offset `at`.
fn line_of(bytes: &[u8], at: usize) -> usize {
    1 + bytes[..at.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let m = MaskedFile::new("let x = 1; // unwrap() here\nlet y = 2;\n");
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("let x = 1;"));
        assert_eq!(m.masked.lines().count(), 2);
    }

    #[test]
    fn block_comments_nest_and_preserve_lines() {
        let src = "a /* one /* two */ still */ b\n/* multi\nline */ c\n";
        let m = MaskedFile::new(src);
        assert!(!m.masked.contains("one"));
        assert!(!m.masked.contains("still"));
        assert!(m.masked.contains('a'));
        assert!(m.masked.contains('b'));
        assert!(m.masked.contains('c'));
        assert_eq!(m.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_kept() {
        let m = MaskedFile::new(r#"call("x.unwrap()", other);"#);
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains(r#"call(""#));
        assert!(m.masked.contains("other);"));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let m = MaskedFile::new(r#"let s = "a\"b.unwrap()"; done();"#);
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("done();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = MaskedFile::new(r##"let r = r#"panic!("inside")"#; after();"##);
        assert!(!m.masked.contains("panic"));
        assert!(m.masked.contains("after();"));
    }

    #[test]
    fn multi_hash_raw_strings_close_on_matching_hash_count() {
        // `"#` inside an `r##` string must not close it.
        let m = MaskedFile::new("let s = r##\"has \"# inside\"##; z.unwrap();\n");
        assert!(!m.masked.contains("inside"));
        assert!(m.masked.contains("z.unwrap()"));
        // Closer followed by more hashes in code.
        let m = MaskedFile::new("let s = r#\"x\"#; tail.unwrap();\n");
        assert!(m.masked.contains("tail.unwrap()"));
    }

    #[test]
    fn raw_byte_strings_with_hashes() {
        let m = MaskedFile::new("let p = br#\"panic!(\"no\")\"#; ok();\n");
        assert!(!m.masked.contains("panic"));
        assert!(m.masked.contains("ok();"));
    }

    #[test]
    fn raw_strings_do_not_process_escapes() {
        // In a raw string, `\` is content, not an escape: `r"\"` is closed.
        let m = MaskedFile::new("let s = r\"\\\"; after.unwrap();\n");
        assert!(m.masked.contains("after.unwrap()"));
    }

    #[test]
    fn multiline_raw_strings_preserve_layout_and_hide_items() {
        let src = "let s = r#\"a\nfn ghost() {\nb\"#;\nreal();\n";
        let m = MaskedFile::new(src);
        assert!(!m.masked.contains("ghost"));
        assert_eq!(m.masked.lines().count(), 4);
        assert!(m.masked.contains("real();"));
    }

    #[test]
    fn raw_identifiers_are_fully_masked() {
        // `r#fn` must not leak a keyword-shaped token into the masked
        // stream (it would spoof the item parser), and `x.r#unwrap()` is
        // not `x.unwrap()`.
        let m = MaskedFile::new("let r#fn = 1; x.r#unwrap(); r#type.go();\n");
        assert!(!m.masked.contains("fn"), "{:?}", m.masked);
        assert!(!m.masked.contains("unwrap"), "{:?}", m.masked);
        assert!(!m.masked.contains("type"), "{:?}", m.masked);
        assert!(m.masked.contains(".go();"), "{:?}", m.masked);
        assert_eq!(
            m.masked.len(),
            "let r#fn = 1; x.r#unwrap(); r#type.go();\n".len()
        );
    }

    #[test]
    fn nested_comment_close_is_not_the_outer_close() {
        // A non-nesting lexer would leak `hidden` after the first `*/`.
        let m = MaskedFile::new("/* /* */ hidden */ live();\n");
        assert!(!m.masked.contains("hidden"));
        assert!(m.masked.contains("live();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = MaskedFile::new("fn f<'a>(x: &'a str) { let c = '{'; let q = '\\''; g(x) }");
        // The brace char literal must not confuse brace matching.
        assert!(!m.masked.contains("'{'"));
        assert!(m.masked.contains("<'a>"));
        assert!(m.masked.contains("&'a str"));
        assert!(m.masked.contains("g(x)"));
    }

    #[test]
    fn suppression_on_code_line() {
        let src = "let a = x.unwrap(); // incite-lint: allow(INC001)\n";
        let m = MaskedFile::new(src);
        assert!(m.is_suppressed("INC001", 1));
        assert!(!m.is_suppressed("INC002", 1));
    }

    #[test]
    fn suppression_on_own_line_covers_next() {
        let src = "// incite-lint: allow(INC002)\nlet t = now();\n";
        let m = MaskedFile::new(src);
        assert!(m.is_suppressed("INC002", 2));
        assert!(!m.is_suppressed("INC002", 1));
    }

    #[test]
    fn suppression_multiple_rules() {
        let src = "x(); // incite-lint: allow(INC001, INC003)\n";
        let m = MaskedFile::new(src);
        assert!(m.is_suppressed("INC001", 1));
        assert!(m.is_suppressed("INC003", 1));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let m = MaskedFile::new(src);
        assert_eq!(m.test_regions, vec![(2, 5)]);
        assert!(!m.in_test_region(1));
        assert!(m.in_test_region(4));
        assert!(!m.in_test_region(6));
    }

    #[test]
    fn cfg_test_on_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::helper;\nfn live() {}\n";
        let m = MaskedFile::new(src);
        assert_eq!(m.test_regions, vec![(1, 2)]);
        assert!(!m.in_test_region(3));
    }

    #[test]
    fn braces_inside_strings_do_not_break_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn real() {}\n";
        let m = MaskedFile::new(src);
        assert_eq!(m.test_regions, vec![(1, 5)]);
        assert!(!m.in_test_region(6));
    }

    #[test]
    fn format_captures_are_recorded_with_offsets() {
        let src = r#"let m = format!("bad {line}: {e:?} {} {{x}} {0}", v);"#;
        let m = MaskedFile::new(src);
        let names: Vec<&str> = m.captures.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["line", "e"]);
        // Offsets fall inside the masked literal and map to the `{`.
        for (off, _) in &m.captures {
            let open = src.find('"').unwrap();
            let close = src.rfind('"').unwrap();
            assert!((open..close).contains(off), "capture offset {off}");
        }
        assert!(!m.masked.contains("line"), "literal content must mask");
    }

    #[test]
    fn captures_outside_strings_are_not_recorded() {
        let m = MaskedFile::new("fn f() { let x = 1; if y { z(); } }");
        assert!(m.captures.is_empty());
    }

    #[test]
    fn masking_preserves_byte_layout_line_count() {
        let src = "a\n\"two\nline string\"\n/* c */ x\n";
        let m = MaskedFile::new(src);
        assert_eq!(m.masked.lines().count(), src.lines().count());
    }
}
