//! Content-hash-keyed cache for the per-file stage (lex + pattern scan).
//!
//! The engine's per-file work — UTF-8 decode, masking, pragma/test-region
//! extraction, and the INC001–INC007 pattern scan — depends on nothing but
//! the file's own bytes, so it caches cleanly: one entry per path, keyed
//! by the [`atomic_io::fnv64`] hash of the raw source. A warm run re-reads
//! and re-hashes every file (cheap) and re-analyzes only the ones whose
//! hash moved. The global passes (item graph, concurrency, taint,
//! invariants) always run; they consume the cached [`MaskedFile`]s.
//!
//! The cache file itself is written through the `atomic_io` funnel — the
//! same tmp + rename + integrity-footer discipline INC014 enforces on the
//! rest of the workspace — so a kill mid-save leaves the previous cache,
//! never a torn one. Any read failure (missing file, hash mismatch,
//! version skew, rules fingerprint skew, parse error) degrades to a cold
//! scan: the cache is an accelerator, never a correctness input.
//!
//! Cache key, in full: `(format version, rules fingerprint, path, content
//! fnv64)`. The rules fingerprint hashes the catalog (ids + summaries +
//! contracts), so editing a rule's semantics in a way that changes its
//! catalog text invalidates every entry; a logic change that leaves the
//! catalog untouched must bump [`CACHE_VERSION`] by hand.

use crate::lexer::MaskedFile;
use crate::rules::{Finding, RuleInfo, Severity};
use incite_core::checkpoint::atomic_io;
use std::collections::BTreeMap;
use std::path::Path;

/// Cache file name inside the cache directory.
pub const CACHE_FILE: &str = "scan-cache.v1";

/// Bump when the per-file stage changes without a catalog text change.
const CACHE_VERSION: u32 = 1;

/// One cached per-file stage result.
pub struct CachedFile {
    /// [`atomic_io::fnv64`] of the raw (pre-mask) source bytes.
    pub content_hash: u64,
    /// The full lexer output, reconstructed field by field.
    pub masked: MaskedFile,
    /// Pattern findings (INC001–INC007) for this file, in scan order.
    pub findings: Vec<Finding>,
}

/// The whole cache: path → entry, deterministic order.
#[derive(Default)]
pub struct ScanCache {
    pub entries: BTreeMap<String, CachedFile>,
}

/// Hash of the rule catalog: ids, summaries and contracts. Part of the
/// cache key so rule edits invalidate stale per-file findings.
pub fn rules_fingerprint() -> String {
    let mut text = format!("incite-lint-cache v{CACHE_VERSION}\n");
    for rule in crate::rules::CATALOG {
        text.push_str(rule.id);
        text.push('\t');
        text.push_str(rule.summary);
        text.push('\t');
        text.push_str(rule.contract);
        text.push('\n');
    }
    atomic_io::fnv64_hex(text.as_bytes())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

impl ScanCache {
    /// Loads the cache from `dir`, or an empty cache if anything at all is
    /// wrong with the file (absent, corrupt, version/fingerprint skew).
    pub fn load(dir: &Path) -> ScanCache {
        let path = dir.join(CACHE_FILE);
        let payload = match atomic_io::read_hashed(&path) {
            Ok(payload) => payload,
            Err(_) => return ScanCache::default(),
        };
        let text = match std::str::from_utf8(&payload) {
            Ok(text) => text,
            Err(_) => return ScanCache::default(),
        };
        parse(text).unwrap_or_default()
    }

    /// Persists the cache under `dir` through the atomic-write funnel.
    /// Errors are returned so the engine can surface them in `--verbose`
    /// contexts, but callers treat a failed save as a cold next run, not
    /// a lint failure.
    pub fn store(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|err| format!("create {}: {err}", dir.display()))?;
        let mut out = format!(
            "incite-lint-cache v{CACHE_VERSION} {}\n",
            rules_fingerprint()
        );
        for (path, entry) in &self.entries {
            render_entry(&mut out, path, entry);
        }
        let path = dir.join(CACHE_FILE);
        atomic_io::write_hashed(&path, out.as_bytes())
            .map(|_| ())
            .map_err(|err| format!("write {}: {err}", path.display()))
    }

    /// The cached entry for `path`, if its content hash still matches.
    pub fn hit(&self, path: &str, content_hash: u64) -> Option<&CachedFile> {
        self.entries
            .get(path)
            .filter(|entry| entry.content_hash == content_hash)
    }
}

fn render_entry(out: &mut String, path: &str, entry: &CachedFile) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "F {:016x} {}", entry.content_hash, esc(path));
    let _ = writeln!(out, "M {}", esc(&entry.masked.masked));
    for (line, rule) in &entry.masked.suppressions {
        let _ = writeln!(out, "S {line} {rule}");
    }
    for (lo, hi) in &entry.masked.test_regions {
        let _ = writeln!(out, "T {lo} {hi}");
    }
    for (off, ident) in &entry.masked.captures {
        let _ = writeln!(out, "C {off} {ident}");
    }
    for finding in &entry.findings {
        let _ = writeln!(
            out,
            "X {} {} {} {} {}",
            finding.rule,
            finding.severity.as_str(),
            finding.line,
            finding.trace.len(),
            esc(&finding.message)
        );
        for step in &finding.trace {
            let _ = writeln!(out, "t {}", esc(step));
        }
    }
}

fn parse(text: &str) -> Option<ScanCache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let expected = format!("incite-lint-cache v{CACHE_VERSION} {}", rules_fingerprint());
    if header != expected {
        return None;
    }
    let mut cache = ScanCache::default();
    let mut current: Option<(String, CachedFile)> = None;
    for line in lines {
        let tag = line.get(0..2)?;
        let rest = line.get(2..)?;
        match tag {
            "F " => {
                if let Some((path, entry)) = current.take() {
                    cache.entries.insert(path, entry);
                }
                let (hash_hex, path) = rest.split_once(' ')?;
                let content_hash = u64::from_str_radix(hash_hex, 16).ok()?;
                current = Some((
                    unesc(path)?,
                    CachedFile {
                        content_hash,
                        masked: MaskedFile {
                            masked: String::new(),
                            suppressions: Vec::new(),
                            test_regions: Vec::new(),
                            captures: Vec::new(),
                        },
                        findings: Vec::new(),
                    },
                ));
            }
            "M " => current.as_mut()?.1.masked.masked = unesc(rest)?,
            "S " => {
                let (line_no, rule) = rest.split_once(' ')?;
                let line_no: usize = line_no.parse().ok()?;
                current
                    .as_mut()?
                    .1
                    .masked
                    .suppressions
                    .push((line_no, rule.to_string()));
            }
            "T " => {
                let (lo, hi) = rest.split_once(' ')?;
                current
                    .as_mut()?
                    .1
                    .masked
                    .test_regions
                    .push((lo.parse().ok()?, hi.parse().ok()?));
            }
            "C " => {
                let (off, ident) = rest.split_once(' ')?;
                current
                    .as_mut()?
                    .1
                    .masked
                    .captures
                    .push((off.parse().ok()?, ident.to_string()));
            }
            "X " => {
                let mut parts = rest.splitn(5, ' ');
                let rule = RuleInfo::find(parts.next()?)?.id;
                let severity = match parts.next()? {
                    "warning" => Severity::Warn,
                    "error" => Severity::Error,
                    _ => return None,
                };
                let line_no: usize = parts.next()?.parse().ok()?;
                let _trace_len: usize = parts.next()?.parse().ok()?;
                let message = unesc(parts.next()?)?;
                let (path, entry) = current.as_mut()?;
                entry.findings.push(Finding {
                    rule,
                    severity,
                    file: path.clone(),
                    line: line_no,
                    message,
                    trace: Vec::new(),
                });
            }
            "t " => {
                let step = unesc(rest)?;
                current.as_mut()?.1.findings.last_mut()?.trace.push(step);
            }
            _ => return None,
        }
    }
    if let Some((path, entry)) = current.take() {
        cache.entries.insert(path, entry);
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(path: &str, source: &str) -> (String, CachedFile) {
        let masked = MaskedFile::new(source);
        let findings = crate::rules::scan_file(path, &masked);
        let content_hash = atomic_io::fnv64(source.as_bytes());
        (
            path.to_string(),
            CachedFile {
                content_hash,
                masked,
                findings,
            },
        )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("incite-lint-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_masked_file_and_findings() {
        let dir = temp_dir("roundtrip");
        let source = "//! doc\n// lint:allow INC001 demo\nfn f() {\n    let s = \"x\\ny {cap}\";\n    s.unwrap();\n}\n#[cfg(test)]\nmod tests {}\n";
        let (path, entry) = sample_entry("crates/core/src/demo.rs", source);
        let mut cache = ScanCache::default();
        cache.entries.insert(path.clone(), entry);
        cache.store(&dir).expect("store");

        let back = ScanCache::load(&dir);
        let orig = &cache.entries[&path];
        let loaded = back.hit(&path, orig.content_hash).expect("hit");
        assert_eq!(loaded.masked.masked, orig.masked.masked);
        assert_eq!(loaded.masked.suppressions, orig.masked.suppressions);
        assert_eq!(loaded.masked.test_regions, orig.masked.test_regions);
        assert_eq!(loaded.masked.captures, orig.masked.captures);
        assert_eq!(loaded.findings.len(), orig.findings.len());
        for (a, b) in loaded.findings.iter().zip(orig.findings.iter()) {
            assert_eq!((a.rule, a.line, &a.message), (b.rule, b.line, &b.message));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_hash_misses() {
        let (path, entry) = sample_entry("crates/core/src/demo.rs", "fn f() {}\n");
        let hash = entry.content_hash;
        let mut cache = ScanCache::default();
        cache.entries.insert(path.clone(), entry);
        assert!(cache.hit(&path, hash).is_some());
        assert!(cache.hit(&path, hash ^ 1).is_none());
        assert!(cache.hit("crates/core/src/other.rs", hash).is_none());
    }

    #[test]
    fn corrupt_or_skewed_cache_degrades_to_empty() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // No footer at all: read_hashed refuses, load returns empty.
        std::fs::write(dir.join(CACHE_FILE), b"garbage").expect("write");
        assert!(ScanCache::load(&dir).entries.is_empty());
        // Valid funnel file, wrong header version: parse refuses.
        atomic_io::write_hashed(
            &dir.join(CACHE_FILE),
            b"incite-lint-cache v0 deadbeefdeadbeef\n",
        )
        .expect("write_hashed");
        assert!(ScanCache::load(&dir).entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_roundtrips_newlines_and_backslashes() {
        let hairy = "line one\nline \\two\\\nthree";
        assert_eq!(unesc(&esc(hairy)).as_deref(), Some(hairy));
        assert_eq!(unesc("dangling\\"), None);
    }
}
