//! Pass 1b: the workspace graph. Takes the per-file item tables from
//! [`crate::items`] and produces an approximate call graph annotated
//! with lock sites — which functions acquire which lock entities, which
//! block, and where a blocking operation or second acquisition happens
//! while a guard is still live.
//!
//! The model is lexical, not type-checked. Lock entities get stable
//! string keys (`serve/BoundedQueue.state`, `core/map_indexed.failure`,
//! `pii/REGISTRY`); method calls resolve through `self`, through
//! `Type::name` paths, or — when a method name is defined by exactly one
//! workspace function and is not a common std name — by name. Guard
//! liveness follows Rust's drop rules approximately: a `let`-bound guard
//! lives to the end of its enclosing block or an explicit `drop()`, a
//! temporary to the end of its statement. The known false-negative
//! classes are listed in DESIGN.md §14.

use crate::items::{self, contains_word, is_ident_byte, lock_kind_in, FileItems, LockKind, Span};
use crate::lexer::MaskedFile;
use std::collections::{BTreeMap, BTreeSet};

/// What an acquisition refers to, relative to the acquiring function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Acq {
    /// A concrete workspace lock entity.
    Key(String),
    /// The function's n-th lock-typed parameter; substituted per call.
    Param(usize),
    /// A lock whose identity could not be resolved.
    Unknown,
}

/// One source file with its parsed items and line table.
pub struct FileGraph<'a> {
    pub path: String,
    pub crate_name: String,
    pub masked: &'a MaskedFile,
    pub items: FileItems,
    /// Byte offsets of line starts in the masked text.
    pub lines: Vec<usize>,
}

/// A function node: identity plus the lexical event stream of its body.
pub struct FnNode {
    pub file: usize,
    pub name: String,
    pub self_ty: Option<String>,
    pub line: usize,
    pub in_test: bool,
    pub body: Option<Span>,
    /// Signature mentions a guard type, so calling it acquires its lock.
    pub returns_guard: bool,
    /// Defined in the `checkpoint::atomic_io` funnel (all of it does
    /// file I/O) — the seed of the blocking fixpoint.
    pub blocking_direct: bool,
    /// Names of `&Mutex<_>` / `&RwLock<_>`-typed parameters, in order.
    pub lock_params: Vec<String>,
    /// Locals declared with a lock type in this body.
    pub local_locks: BTreeSet<String>,
    pub(crate) events: Vec<Event>,
    /// Resolved workspace callees (deduplicated, sorted).
    pub edges: Vec<usize>,
}

#[derive(Debug)]
pub(crate) enum Event {
    Open {
        off: usize,
    },
    Close,
    Semi {
        off: usize,
    },
    Let {
        var: Option<String>,
        off: usize,
    },
    Call(CallEvent),
    /// A macro invocation with parenthesized arguments (`format!(…)`,
    /// `println!(…)`); contents are still scanned for nested calls.
    Macro(MacroEvent),
    /// A qualified brace construction (`Enum::Variant { … }`); the brace
    /// itself still produces its own `Open`/`Close` events.
    Ctor(CtorEvent),
}

#[derive(Debug)]
pub(crate) struct CallEvent {
    pub(crate) off: usize,
    /// Path / receiver segments, e.g. `self.available.wait_timeout` →
    /// `["self", "available", "wait_timeout"]`.
    pub(crate) segs: Vec<String>,
    /// The final separator was `.` (method call) rather than `::`.
    pub(crate) dotted: bool,
    /// Receiver began mid-expression (`foo().bar(…)`): unresolvable.
    pub(crate) opaque_recv: bool,
    /// Trimmed top-level argument texts (capped).
    pub(crate) args: Vec<String>,
}

#[derive(Debug)]
pub(crate) struct MacroEvent {
    /// Offset of the opening `(`.
    pub(crate) off: usize,
    /// Macro name (last path segment): `format`, `println`, `writeln`…
    pub(crate) name: String,
}

#[derive(Debug)]
pub(crate) struct CtorEvent {
    /// Offset of the opening `{`.
    pub(crate) off: usize,
    /// Path segments, e.g. `["JsonlError", "Malformed"]`.
    pub(crate) segs: Vec<String>,
}

/// A two-lock observation: `second` acquired while `first` was live.
#[derive(Debug)]
pub struct PairSite {
    pub first: String,
    pub second: String,
    pub file: String,
    pub line: usize,
    /// Set when the second acquisition happens inside a callee.
    pub via: Option<String>,
}

/// A blocking operation observed while a guard was live.
#[derive(Debug)]
pub struct BlockSite {
    pub guard: String,
    pub what: String,
    pub file: String,
    pub line: usize,
}

/// The assembled workspace graph plus rule-ready observations.
pub struct Workspace<'a> {
    pub files: Vec<FileGraph<'a>>,
    pub fns: Vec<FnNode>,
    /// Transitive acquisitions per function (param-relative).
    pub acquires_t: Vec<BTreeSet<Acq>>,
    /// Whether each function may block, transitively.
    pub blocking_t: Vec<bool>,
    pub pairs: Vec<PairSite>,
    pub blocked: Vec<BlockSite>,
    /// Per function: `(event index, callee fn index)` for every call
    /// event that resolved to a workspace function — the taint pass
    /// walks these without re-running resolution.
    pub(crate) call_targets: Vec<Vec<(usize, usize)>>,
    /// Work units consumed building the graph (bytes + events).
    pub fuel: u64,
}

/// Method names too common to resolve by name alone: a std method on an
/// unrelated receiver must not alias a workspace function.
const COMMON_METHODS: &[&str] = &[
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "collect",
    "contains",
    "drain",
    "extend",
    "fetch_add",
    "fetch_max",
    "flush",
    "get",
    "get_or_insert_with",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "notify_all",
    "notify_one",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "push_str",
    "read",
    "recv",
    "remove",
    "send",
    "spawn",
    "store",
    "take",
    "to_string",
    "wait",
    "write",
];

/// Body keywords that never start an expression chain.
const BODY_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "loop", "match", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

/// `crates/<name>/src/...` → `<name>`; other layouts keep their first
/// path segment so keys stay stable.
fn crate_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => norm,
    }
}

/// Builds the workspace graph over `(path, masked)` pairs (sorted by
/// the caller for determinism).
pub fn build<'a>(sources: &[(String, &'a MaskedFile)]) -> Workspace<'a> {
    let mut fuel = 0u64;
    let mut files = Vec::with_capacity(sources.len());
    for (path, masked) in sources {
        fuel += masked.masked.len() as u64;
        files.push(FileGraph {
            path: path.clone(),
            crate_name: crate_of(path),
            items: items::parse(masked),
            lines: line_starts(masked.masked.as_bytes()),
            masked,
        });
    }

    // Function nodes with their event streams.
    let mut fns = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for item in &file.items.fns {
            let mut node = FnNode {
                file: fi,
                name: item.name.clone(),
                self_ty: item.self_ty.clone(),
                line: item.line,
                in_test: item.in_test,
                body: item.body,
                returns_guard: ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"]
                    .iter()
                    .any(|g| contains_word(&item.sig, g)),
                blocking_direct: file.path.ends_with("checkpoint/atomic_io.rs"),
                lock_params: lock_params_of(&item.sig),
                local_locks: BTreeSet::new(),
                events: Vec::new(),
                edges: Vec::new(),
            };
            if let Some(body) = item.body {
                let bytes = file.masked.masked.as_bytes();
                let (events, locals) = extract_events(bytes, body);
                fuel += (body.end - body.start) as u64 + events.len() as u64;
                node.events = events;
                node.local_locks = locals;
            }
            fns.push(node);
        }
    }

    let tables = Tables::build(&files, &fns);

    // B1: classify every call event once, and collect call edges.
    let mut classified: Vec<Vec<(usize, Classified)>> = Vec::with_capacity(fns.len());
    for (idx, node) in fns.iter().enumerate() {
        let mut list = Vec::new();
        for (ei, ev) in node.events.iter().enumerate() {
            if let Event::Call(call) = ev {
                list.push((ei, classify(call, idx, &fns, &files, &tables)));
            }
        }
        classified.push(list);
    }
    let mut call_targets: Vec<Vec<(usize, usize)>> = Vec::with_capacity(fns.len());
    for (idx, list) in classified.iter().enumerate() {
        let mut edges: Vec<usize> = list
            .iter()
            .filter_map(|(_, c)| match c {
                Classified::CallEdge { callee, .. } => Some(*callee),
                _ => None,
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        fns[idx].edges = edges;
        call_targets.push(
            list.iter()
                .filter_map(|(ei, c)| match c {
                    Classified::CallEdge { callee, .. } => Some((*ei, *callee)),
                    _ => None,
                })
                .collect(),
        );
    }

    // B2: transitive acquisitions to fixpoint, with param substitution.
    let mut acquires_t: Vec<BTreeSet<Acq>> = vec![BTreeSet::new(); fns.len()];
    for (idx, list) in classified.iter().enumerate() {
        for (_, c) in list {
            if let Classified::Acquire { acq, .. } = c {
                acquires_t[idx].insert(acq.clone());
            }
        }
    }
    loop {
        fuel += fns.len() as u64;
        let mut changed = false;
        for (idx, list) in classified.iter().enumerate() {
            let mut add = Vec::new();
            for (_, c) in list {
                let Classified::CallEdge { callee, args } = c else {
                    continue;
                };
                for acq in &acquires_t[*callee] {
                    let resolved = match acq {
                        Acq::Key(k) => Acq::Key(k.clone()),
                        Acq::Param(i) => match args.get(*i) {
                            Some(arg) => arg_to_acq(arg, idx, &fns, &files, &tables),
                            None => continue,
                        },
                        Acq::Unknown => continue,
                    };
                    if !acquires_t[idx].contains(&resolved) {
                        add.push(resolved);
                    }
                }
            }
            for a in add {
                changed |= acquires_t[idx].insert(a);
            }
        }
        if !changed {
            break;
        }
    }

    // B3: transitive blocking to fixpoint.
    let mut blocking_t: Vec<bool> = fns.iter().map(|f| f.blocking_direct).collect();
    for (idx, list) in classified.iter().enumerate() {
        if list
            .iter()
            .any(|(_, c)| matches!(c, Classified::Blocking { .. } | Classified::CondvarWait))
        {
            blocking_t[idx] = true;
        }
    }
    loop {
        fuel += fns.len() as u64;
        let mut changed = false;
        for (idx, list) in classified.iter().enumerate() {
            if blocking_t[idx] {
                continue;
            }
            let blocks = list.iter().any(
                |(_, c)| matches!(c, Classified::CallEdge { callee, .. } if blocking_t[*callee]),
            );
            if blocks {
                blocking_t[idx] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // B4: replay each body with guard liveness, emitting observations.
    let mut pairs = Vec::new();
    let mut blocked = Vec::new();
    for (idx, node) in fns.iter().enumerate() {
        if node.in_test {
            continue;
        }
        fuel += node.events.len() as u64;
        replay(
            idx,
            node,
            &classified[idx],
            &fns,
            &files,
            &tables,
            &acquires_t,
            &blocking_t,
            &mut pairs,
            &mut blocked,
        );
    }

    Workspace {
        files,
        fns,
        acquires_t,
        blocking_t,
        pairs,
        blocked,
        call_targets,
        fuel,
    }
}

/// Global symbol tables for resolution.
struct Tables {
    /// `(crate, owner, field)` → kind, for struct-field locks.
    fields: BTreeMap<(String, String, String), LockKind>,
    /// `(crate, name)` → kind, for `static` locks.
    statics: BTreeMap<(String, String), LockKind>,
    /// Method/function name → non-test node indices.
    by_name: BTreeMap<String, Vec<usize>>,
    /// `(self_ty, name)` → non-test node indices.
    by_qual: BTreeMap<(String, String), Vec<usize>>,
}

impl Tables {
    fn build(files: &[FileGraph<'_>], fns: &[FnNode]) -> Tables {
        let mut t = Tables {
            fields: BTreeMap::new(),
            statics: BTreeMap::new(),
            by_name: BTreeMap::new(),
            by_qual: BTreeMap::new(),
        };
        for file in files {
            for lock in &file.items.locks {
                match &lock.owner {
                    Some(owner) => {
                        t.fields.insert(
                            (file.crate_name.clone(), owner.clone(), lock.name.clone()),
                            lock.kind,
                        );
                    }
                    None => {
                        t.statics
                            .insert((file.crate_name.clone(), lock.name.clone()), lock.kind);
                    }
                }
            }
        }
        for (idx, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            t.by_name.entry(f.name.clone()).or_default().push(idx);
            if let Some(ty) = &f.self_ty {
                t.by_qual
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            }
        }
        t
    }
}

/// Lock-typed parameter names from a normalized signature.
fn lock_params_of(sig: &str) -> Vec<String> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    // Matching close of the parameter list (the return type may itself
    // contain parens, e.g. `-> Result<(), E>`).
    let mut depth = 0i32;
    let mut close = open;
    for (i, b) in sig.bytes().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    if close <= open {
        return Vec::new();
    }
    let mut out = Vec::new();
    for param in items::split_top_level(&sig[open + 1..close], ',') {
        let Some((name, ty)) = param.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        if !name.is_empty()
            && name.bytes().all(is_ident_byte)
            && matches!(lock_kind_in(ty), Some(LockKind::Mutex | LockKind::RwLock))
        {
            out.push(name.to_string());
        }
    }
    out
}

fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// What a call event means for the concurrency model.
#[derive(Debug)]
enum Classified {
    /// Acquires a lock (directly or via a guard-returning helper).
    Acquire { acq: Acq, via: Option<String> },
    /// A `Condvar` wait: blocking, but exempt for the guard it consumes.
    CondvarWait,
    /// A std blocking operation (I/O, sleep, channel recv, join).
    Blocking { what: String },
    /// A resolved workspace call.
    CallEdge { callee: usize, args: Vec<String> },
    /// `drop(x)` — ends the named guard.
    DropVar { var: String },
    /// Unresolvable or irrelevant.
    Noise,
}

fn classify(
    call: &CallEvent,
    fn_idx: usize,
    fns: &[FnNode],
    files: &[FileGraph<'_>],
    tables: &Tables,
) -> Classified {
    let name = call.segs.last().map(String::as_str).unwrap_or_default();

    if call.segs.len() == 1 && name == "drop" && call.args.len() == 1 {
        let var = call.args[0].trim();
        if var.bytes().all(is_ident_byte) && !var.is_empty() {
            return Classified::DropVar {
                var: var.to_string(),
            };
        }
    }

    if call.dotted && matches!(name, "wait" | "wait_timeout" | "wait_while") {
        return Classified::CondvarWait;
    }

    if let Some(what) = std_blocking(call, name) {
        return Classified::Blocking { what };
    }

    // Direct acquisitions: `.lock()` / `.read()` / `.write()` with no
    // arguments on a resolvable lock entity.
    if call.dotted && call.args.is_empty() && matches!(name, "lock" | "read" | "write") {
        let recv = &call.segs[..call.segs.len() - 1];
        // `self.lock()` where the impl defines `lock` is a helper call,
        // handled by the resolution path below.
        let is_self_helper = recv == ["self"]
            && fns[fn_idx]
                .self_ty
                .as_ref()
                .is_some_and(|ty| tables.by_qual.contains_key(&(ty.clone(), name.to_string())));
        if !is_self_helper && !call.opaque_recv {
            match resolve_entity(recv, fn_idx, fns, files, tables) {
                Some((acq, kind)) => {
                    let ok = match name {
                        "lock" => kind != Some(LockKind::RwLock) && kind != Some(LockKind::Condvar),
                        _ => kind == Some(LockKind::RwLock) || kind.is_none(),
                    };
                    if ok {
                        return Classified::Acquire { acq, via: None };
                    }
                }
                None if name == "lock" => {
                    // `.lock()` is distinctive enough to track as an
                    // unknown lock even when the receiver is opaque.
                    return Classified::Acquire {
                        acq: Acq::Unknown,
                        via: None,
                    };
                }
                None => {}
            }
            if name == "lock" {
                return Classified::Acquire {
                    acq: Acq::Unknown,
                    via: None,
                };
            }
            return Classified::Noise;
        }
    }

    match resolve_callee(call, fn_idx, fns, files, tables) {
        Some(callee) => Classified::CallEdge {
            callee,
            args: call.args.clone(),
        },
        None => Classified::Noise,
    }
}

/// Std blocking-operation patterns (beyond the atomic_io funnel seed).
fn std_blocking(call: &CallEvent, name: &str) -> Option<String> {
    let segs = &call.segs;
    let penult = segs
        .len()
        .checked_sub(2)
        .map(|i| segs[i].as_str())
        .unwrap_or_default();
    let desc = || {
        if call.dotted {
            format!(".{name}()")
        } else {
            format!("{}()", segs.join("::"))
        }
    };
    if name == "sleep" && penult == "thread" {
        return Some("thread::sleep()".to_string());
    }
    if penult == "TcpStream" && matches!(name, "connect" | "connect_timeout") {
        return Some(format!("TcpStream::{name}()"));
    }
    if penult == "File" && matches!(name, "open" | "create") {
        return Some(format!("File::{name}()"));
    }
    if penult == "fs"
        && matches!(
            name,
            "read" | "read_to_string" | "write" | "create_dir_all" | "remove_file" | "rename"
        )
    {
        return Some(format!("fs::{name}()"));
    }
    if matches!(
        name,
        "read_to_string" | "read_to_end" | "read_line" | "read_exact" | "recv" | "recv_timeout"
    ) {
        return Some(desc());
    }
    if call.dotted && name == "join" && call.args.is_empty() {
        return Some(".join()".to_string());
    }
    if call.dotted && name == "read" && call.args.first().is_some_and(|a| a.starts_with("&mut")) {
        return Some(".read(&mut …)".to_string());
    }
    None
}

/// Resolves a receiver/path chain to a lock entity in the context of
/// `fn_idx`. Returns the acquisition plus the entity kind when known.
fn resolve_entity(
    recv: &[String],
    fn_idx: usize,
    fns: &[FnNode],
    files: &[FileGraph<'_>],
    tables: &Tables,
) -> Option<(Acq, Option<LockKind>)> {
    let node = &fns[fn_idx];
    let crate_name = &files[node.file].crate_name;
    let last = recv.last()?;

    // `self.field` (possibly `self.inner.field` — only the last segment
    // is matched against the impl type's fields).
    if recv.first().map(String::as_str) == Some("self") && recv.len() >= 2 {
        if let Some(ty) = &node.self_ty {
            if let Some(kind) = tables
                .fields
                .get(&(crate_name.clone(), ty.clone(), last.clone()))
            {
                return Some((Acq::Key(format!("{crate_name}/{ty}.{last}")), Some(*kind)));
            }
        }
        return None;
    }

    if recv.len() == 1 {
        if node.local_locks.contains(last) {
            return Some((Acq::Key(format!("{crate_name}/{}.{last}", node.name)), None));
        }
        if let Some(i) = node.lock_params.iter().position(|p| p == last) {
            return Some((Acq::Param(i), None));
        }
        if let Some(kind) = tables.statics.get(&(crate_name.clone(), last.clone())) {
            return Some((Acq::Key(format!("{crate_name}/{last}")), Some(*kind)));
        }
    }
    None
}

/// Maps a call argument back to an acquisition in the caller's context:
/// `&failure` → the caller's `failure` entity, a lock param name → the
/// caller's own param index.
fn arg_to_acq(
    arg: &str,
    fn_idx: usize,
    fns: &[FnNode],
    files: &[FileGraph<'_>],
    tables: &Tables,
) -> Acq {
    let trimmed = arg
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ");
    let trimmed = trimmed.trim();
    if trimmed.is_empty() || !trimmed.bytes().all(|b| is_ident_byte(b) || b == b'.') {
        return Acq::Unknown;
    }
    let segs: Vec<String> = trimmed.split('.').map(str::to_string).collect();
    match resolve_entity(&segs, fn_idx, fns, files, tables) {
        Some((acq, _)) => acq,
        None => Acq::Unknown,
    }
}

/// Resolves a call to a workspace function node.
fn resolve_callee(
    call: &CallEvent,
    fn_idx: usize,
    fns: &[FnNode],
    files: &[FileGraph<'_>],
    tables: &Tables,
) -> Option<usize> {
    let node = &fns[fn_idx];
    let name = call.segs.last()?;

    let unique_by_name = |name: &str| -> Option<usize> {
        if COMMON_METHODS.contains(&name) {
            return None;
        }
        match tables.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    };

    if call.dotted {
        let recv = &call.segs[..call.segs.len() - 1];
        if !call.opaque_recv && recv == ["self"] {
            if let Some(ty) = &node.self_ty {
                if let Some(candidates) = tables.by_qual.get(&(ty.clone(), name.clone())) {
                    // Prefer a method in the same crate (same-name impls
                    // across crates are distinct types in practice).
                    return candidates
                        .iter()
                        .find(|&&c| files[fns[c].file].crate_name == files[node.file].crate_name)
                        .or_else(|| candidates.first())
                        .copied();
                }
            }
        }
        return unique_by_name(name);
    }

    if call.segs.len() >= 2 {
        // `Type::name` through any impl'd type.
        let qual = &call.segs[call.segs.len() - 2];
        if let Some(candidates) = tables.by_qual.get(&(qual.clone(), name.clone())) {
            return candidates.first().copied();
        }
        // `module::name` — fall back to a unique workspace name.
        return unique_by_name(name);
    }

    // Bare call: same-file free function first, then same-crate unique.
    let same_file: Vec<usize> = tables
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&c| fns[c].file == node.file && fns[c].self_ty.is_none())
                .collect()
        })
        .unwrap_or_default();
    if let [only] = same_file.as_slice() {
        return Some(*only);
    }
    let same_crate: Vec<usize> = tables
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&c| {
                    files[fns[c].file].crate_name == files[node.file].crate_name
                        && fns[c].self_ty.is_none()
                })
                .collect()
        })
        .unwrap_or_default();
    match same_crate.as_slice() {
        [only] => Some(*only),
        _ => None,
    }
}

/// A live guard during replay.
struct Guard {
    var: Option<String>,
    key: Acq,
    depth: usize,
}

#[allow(clippy::too_many_arguments)]
fn replay(
    fn_idx: usize,
    node: &FnNode,
    classified: &[(usize, Classified)],
    fns: &[FnNode],
    files: &[FileGraph<'_>],
    tables: &Tables,
    acquires_t: &[BTreeSet<Acq>],
    blocking_t: &[bool],
    pairs: &mut Vec<PairSite>,
    blocked: &mut Vec<BlockSite>,
) {
    let file = &files[node.file];
    let by_event: BTreeMap<usize, &Classified> =
        classified.iter().map(|(ei, c)| (*ei, c)).collect();

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut active_let: Option<(Option<String>, usize)> = None;

    let line_of = |off: usize| items::line_at(&file.lines, off);
    let guard_desc = |g: &Guard| match &g.key {
        Acq::Key(k) => k.clone(),
        Acq::Param(i) => format!("<param {i}>"),
        Acq::Unknown => match &g.var {
            Some(v) => format!("`{v}`"),
            None => "<anonymous>".to_string(),
        },
    };

    for (ei, ev) in node.events.iter().enumerate() {
        match ev {
            Event::Open { .. } => {
                depth += 1;
                active_let = None;
            }
            Event::Close => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            Event::Semi { .. } => {
                guards.retain(|g| !(g.var.is_none() && g.depth == depth));
                if active_let.as_ref().is_some_and(|(_, d)| *d == depth) {
                    active_let = None;
                }
            }
            Event::Let { var, .. } => {
                active_let = Some((var.clone(), depth));
            }
            Event::Call(call) => {
                let Some(c) = by_event.get(&ei) else { continue };
                match c {
                    Classified::DropVar { var } => {
                        guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                    }
                    Classified::Acquire { acq, via } => {
                        record_acquire(
                            acq.clone(),
                            via.clone(),
                            call.off,
                            &mut guards,
                            &mut active_let,
                            depth,
                            pairs,
                            &file.path,
                            line_of(call.off),
                        );
                    }
                    Classified::CondvarWait => {
                        // Exempt every guard named in the wait's arguments
                        // (the condvar atomically releases that guard).
                        let held: Vec<String> = guards
                            .iter()
                            .filter(|g| {
                                !g.var
                                    .as_deref()
                                    .is_some_and(|v| call.args.iter().any(|a| contains_word(a, v)))
                            })
                            .map(guard_desc)
                            .collect();
                        for guard in held {
                            blocked.push(BlockSite {
                                guard,
                                what: format!(
                                    ".{}()",
                                    call.segs.last().map(String::as_str).unwrap_or("wait")
                                ),
                                file: file.path.clone(),
                                line: line_of(call.off),
                            });
                        }
                    }
                    Classified::Blocking { what } => {
                        for g in &guards {
                            blocked.push(BlockSite {
                                guard: guard_desc(g),
                                what: what.clone(),
                                file: file.path.clone(),
                                line: line_of(call.off),
                            });
                        }
                    }
                    Classified::CallEdge { callee, args } => {
                        let callee_name = fns[*callee].name.clone();
                        // Blocking callee while any guard is live.
                        if blocking_t[*callee] && !guards.is_empty() {
                            for g in &guards {
                                blocked.push(BlockSite {
                                    guard: guard_desc(g),
                                    what: format!("call to `{callee_name}` (which blocks)"),
                                    file: file.path.clone(),
                                    line: line_of(call.off),
                                });
                            }
                        }
                        // Locks the callee may take, mapped through args.
                        let callee_acqs: Vec<Acq> = acquires_t[*callee]
                            .iter()
                            .map(|a| match a {
                                Acq::Key(k) => Acq::Key(k.clone()),
                                Acq::Param(i) => match args.get(*i) {
                                    Some(arg) => arg_to_acq(arg, fn_idx, fns, files, tables),
                                    None => Acq::Unknown,
                                },
                                Acq::Unknown => Acq::Unknown,
                            })
                            .collect();
                        for acq in &callee_acqs {
                            if let Acq::Key(second) = acq {
                                for g in &guards {
                                    if let Acq::Key(first) = &g.key {
                                        if first != second {
                                            pairs.push(PairSite {
                                                first: first.clone(),
                                                second: second.clone(),
                                                file: file.path.clone(),
                                                line: line_of(call.off),
                                                via: Some(callee_name.clone()),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        // A guard-returning helper is an acquisition at
                        // the call site.
                        if fns[*callee].returns_guard {
                            let acq = match callee_acqs.as_slice() {
                                [one] => one.clone(),
                                _ => Acq::Unknown,
                            };
                            record_acquire(
                                acq,
                                Some(callee_name),
                                call.off,
                                &mut guards,
                                &mut active_let,
                                depth,
                                pairs,
                                &file.path,
                                line_of(call.off),
                            );
                        }
                    }
                    Classified::Noise => {}
                }
            }
            // Taint-pass events: no guard-liveness meaning.
            Event::Macro(_) | Event::Ctor(_) => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record_acquire(
    acq: Acq,
    via: Option<String>,
    _off: usize,
    guards: &mut Vec<Guard>,
    active_let: &mut Option<(Option<String>, usize)>,
    depth: usize,
    pairs: &mut Vec<PairSite>,
    path: &str,
    line: usize,
) {
    if let Acq::Key(second) = &acq {
        for g in guards.iter() {
            if let Acq::Key(first) = &g.key {
                if first != second {
                    pairs.push(PairSite {
                        first: first.clone(),
                        second: second.clone(),
                        file: path.to_string(),
                        line,
                        via: via.clone(),
                    });
                }
            }
        }
    }
    let var = active_let.as_ref().and_then(|(v, _)| v.clone());
    guards.push(Guard {
        var,
        key: acq,
        depth,
    });
}

/// Extracts the lexical event stream of one function body, plus the
/// names of locals declared with a lock type.
fn extract_events(bytes: &[u8], body: Span) -> (Vec<Event>, BTreeSet<String>) {
    let mut events = Vec::new();
    let mut locals = BTreeSet::new();
    let mut i = body.start;
    let end = body.end;

    while i < end {
        let b = bytes[i];
        match b {
            b'{' => {
                events.push(Event::Open { off: i });
                i += 1;
            }
            b'}' => {
                events.push(Event::Close);
                i += 1;
            }
            b';' => {
                events.push(Event::Semi { off: i });
                i += 1;
            }
            b'.' if i + 1 < end && is_ident_start(bytes[i + 1]) => {
                // Orphan dot: method call on a mid-expression receiver.
                let (segs, dotted, after) = read_chain(bytes, i + 1, end);
                let mut segs = segs;
                let _ = dotted;
                segs.insert(0, "<expr>".to_string());
                i = finish_chain(bytes, after, end, segs, true, true, &mut events);
            }
            _ if is_ident_start(b) => {
                let word_end = ident_end(bytes, i, end);
                let word = std::str::from_utf8(&bytes[i..word_end]).unwrap_or_default();
                if word == "let" {
                    let (var, has_lock_ty, after) = read_let_pattern(bytes, word_end, end);
                    if has_lock_ty {
                        if let Some(v) = &var {
                            locals.insert(v.clone());
                        }
                    }
                    events.push(Event::Let { var, off: i });
                    i = after;
                } else if BODY_KEYWORDS.contains(&word) {
                    i = word_end;
                } else {
                    let (mut segs, dotted, after) = read_chain(bytes, i, end);
                    if segs.is_empty() {
                        segs.push(word.to_string());
                    }
                    i = finish_chain(bytes, after, end, segs, dotted, false, &mut events);
                }
            }
            _ if b.is_ascii_digit() => {
                // Number literal: skip digits/underscores/float dots so
                // `1.max(x)` parses as an orphan-dot method, not `1.` junk.
                let mut j = i;
                while j < end && (is_ident_byte(bytes[j])) {
                    j += 1;
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    (events, locals)
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn ident_end(bytes: &[u8], from: usize, end: usize) -> usize {
    let mut j = from;
    while j < end && is_ident_byte(bytes[j]) {
        j += 1;
    }
    j
}

fn skip_ws(bytes: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Reads `ident(::ident|.ident)*` starting at an ident; returns the
/// segments, whether the final separator was a dot, and the resume
/// offset (after the last ident).
fn read_chain(bytes: &[u8], from: usize, end: usize) -> (Vec<String>, bool, usize) {
    let mut segs = Vec::new();
    let mut dotted = false;
    let mut i = from;
    loop {
        let word_end = ident_end(bytes, i, end);
        if word_end == i {
            break;
        }
        segs.push(String::from_utf8_lossy(&bytes[i..word_end]).into_owned());
        let after = skip_ws(bytes, word_end, end);
        if after + 1 < end && bytes[after] == b':' && bytes[after + 1] == b':' {
            let next = skip_ws(bytes, after + 2, end);
            if next < end && is_ident_start(bytes[next]) {
                dotted = false;
                i = next;
                continue;
            }
            return (segs, dotted, word_end);
        }
        if after < end && bytes[after] == b'.' {
            let next = skip_ws(bytes, after + 1, end);
            if next < end && is_ident_start(bytes[next]) {
                dotted = true;
                i = next;
                continue;
            }
            return (segs, dotted, word_end);
        }
        return (segs, dotted, word_end);
    }
    (segs, dotted, i)
}

/// After a chain: a `(` makes it a call (args captured, scanning resumes
/// *inside* the args so nested calls are seen); a `!` makes it a macro
/// event (contents still scanned); a `{` after a qualified
/// uppercase-ending path makes it a constructor event (the brace still
/// emits `Open`). Returns the resume offset.
fn finish_chain(
    bytes: &[u8],
    after: usize,
    end: usize,
    segs: Vec<String>,
    dotted: bool,
    opaque_recv: bool,
    events: &mut Vec<Event>,
) -> usize {
    let j = skip_ws(bytes, after, end);
    if j < end && bytes[j] == b'!' {
        // Macro invocation: record it when parenthesized (`format!(…)`),
        // then keep scanning its arguments either way. `!=` is the
        // operator, not a macro bang.
        let k = skip_ws(bytes, j + 1, end);
        if k < end && bytes[k] == b'(' && bytes.get(j + 1) != Some(&b'=') {
            if let Some(name) = segs.last() {
                events.push(Event::Macro(MacroEvent {
                    off: k,
                    name: name.clone(),
                }));
            }
        }
        return j + 1;
    }
    if j < end
        && bytes[j] == b'{'
        && segs.len() >= 2
        && !dotted
        && !opaque_recv
        && segs
            .last()
            .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
    {
        // `Enum::Variant { … }` (or a qualified struct literal): the
        // taint pass checks whether the fields feed an error variant.
        // Resume *at* the brace so it still opens a scope event.
        events.push(Event::Ctor(CtorEvent { off: j, segs }));
        return j;
    }
    if j < end && bytes[j] == b'(' {
        let close = matching_paren(bytes, j, end);
        let args_text = std::str::from_utf8(&bytes[j + 1..close]).unwrap_or_default();
        let args: Vec<String> = if args_text.trim().is_empty() {
            Vec::new()
        } else {
            items::split_top_level(args_text, ',')
                .into_iter()
                .map(|a| {
                    let collapsed: String = a.split_whitespace().collect::<Vec<_>>().join(" ");
                    collapsed.chars().take(96).collect()
                })
                .collect()
        };
        events.push(Event::Call(CallEvent {
            off: j,
            segs,
            dotted,
            opaque_recv,
            args,
        }));
        return j + 1;
    }
    after
}

/// Offset of the `)` matching the `(` at `open` (or `end`).
pub(crate) fn matching_paren(bytes: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Parses a `let` pattern up to its `=` (or `;`): the bound variable is
/// the first lower-case/underscore ident that is not `mut`/`ref`, and
/// the pattern text is checked for a lock type annotation.
fn read_let_pattern(bytes: &[u8], from: usize, end: usize) -> (Option<String>, bool, usize) {
    let mut j = from;
    let mut stop = end;
    let mut angle = 0i32;
    while j < end {
        match bytes[j] {
            b'=' if angle == 0 => {
                // `=` of the binding; `==`/`=>` cannot appear in patterns.
                stop = j;
                break;
            }
            b';' if angle == 0 => {
                stop = j;
                break;
            }
            b'<' => angle += 1,
            b'>' => angle -= 1,
            _ => {}
        }
        j += 1;
    }
    let pattern = std::str::from_utf8(&bytes[from..stop]).unwrap_or_default();
    let mut var = None;
    for token in pattern.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if token.is_empty() || token == "mut" || token == "ref" || token == "_" {
            continue;
        }
        let first = token.chars().next().unwrap_or('A');
        if first.is_lowercase() || first == '_' {
            var = Some(token.to_string());
            break;
        }
    }
    let has_lock_ty = lock_kind_in(pattern).is_some();
    (var, has_lock_ty, stop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(sources: &[(&str, &str)]) -> (Vec<(String, MaskedFile)>, ()) {
        (
            sources
                .iter()
                .map(|(p, s)| (p.to_string(), MaskedFile::new(s)))
                .collect(),
            (),
        )
    }

    fn build_ws(owned: &[(String, MaskedFile)]) -> Workspace<'_> {
        let refs: Vec<(String, &MaskedFile)> = owned.iter().map(|(p, m)| (p.clone(), m)).collect();
        build(&refs)
    }

    #[test]
    fn guard_helpers_resolve_to_their_lock() {
        let src = "\
use std::sync::{Condvar, Mutex, MutexGuard};
pub struct Q { state: Mutex<u32>, available: Condvar }
impl Q {
    fn lock(&self) -> MutexGuard<'_, u32> {
        match self.state.lock() { Ok(g) => g, Err(p) => p.into_inner() }
    }
    pub fn close(&self) {
        self.lock();
        self.available.notify_all();
    }
}
";
        let (owned, ()) = ws_of(&[("crates/serve/src/q.rs", src)]);
        let ws = build_ws(&owned);
        let lock_idx = ws.fns.iter().position(|f| f.name == "lock").unwrap();
        assert!(ws.fns[lock_idx].returns_guard);
        assert!(ws.acquires_t[lock_idx].contains(&Acq::Key("serve/Q.state".into())));
        let close_idx = ws.fns.iter().position(|f| f.name == "close").unwrap();
        assert!(
            ws.acquires_t[close_idx].contains(&Acq::Key("serve/Q.state".into())),
            "helper acquisition propagates: {:?}",
            ws.acquires_t[close_idx]
        );
        assert!(ws.pairs.is_empty());
        assert!(ws.blocked.is_empty());
    }

    #[test]
    fn param_locks_substitute_at_call_sites() {
        let src = "\
use std::sync::{Mutex, MutexGuard};
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() { Ok(g) => g, Err(p) => p.into_inner() }
}
fn run() {
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let mut guard = lock_unpoisoned(&failure);
    *guard = None;
}
";
        let (owned, ()) = ws_of(&[("crates/core/src/p.rs", src)]);
        let ws = build_ws(&owned);
        let helper = ws
            .fns
            .iter()
            .position(|f| f.name == "lock_unpoisoned")
            .unwrap();
        assert_eq!(
            ws.acquires_t[helper].iter().collect::<Vec<_>>(),
            vec![&Acq::Param(0)]
        );
        let run = ws.fns.iter().position(|f| f.name == "run").unwrap();
        assert!(
            ws.acquires_t[run].contains(&Acq::Key("core/run.failure".into())),
            "{:?}",
            ws.acquires_t[run]
        );
    }

    #[test]
    fn blocking_under_guard_is_observed_and_drop_ends_it() {
        let src = "\
use std::sync::Mutex;
pub struct S { m: Mutex<u32> }
impl S {
    pub fn bad(&self) {
        let g = self.m.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }
    pub fn fine(&self) {
        let g = self.m.lock();
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
";
        let (owned, ()) = ws_of(&[("crates/core/src/s.rs", src)]);
        let ws = build_ws(&owned);
        assert_eq!(ws.blocked.len(), 1, "{:?}", ws.blocked);
        assert_eq!(ws.blocked[0].guard, "core/S.m");
        assert!(ws.blocked[0].what.contains("sleep"));
    }

    #[test]
    fn condvar_wait_releases_its_guard() {
        let src = "\
use std::sync::{Condvar, Mutex};
pub struct Q { state: Mutex<u32>, available: Condvar }
impl Q {
    pub fn wait_for_work(&self) {
        let mut state = self.state.lock().ok().take();
        state = match self.available.wait_timeout(state, d) { Ok(g) => g, Err(p) => p };
        let _ = state;
    }
}
";
        let (owned, ()) = ws_of(&[("crates/serve/src/q.rs", src)]);
        let ws = build_ws(&owned);
        assert!(ws.blocked.is_empty(), "{:?}", ws.blocked);
    }

    #[test]
    fn inconsistent_order_yields_both_pairs() {
        let src = "\
use std::sync::Mutex;
pub struct P { a: Mutex<u32>, b: Mutex<u32> }
impl P {
    pub fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (ga, gb);
    }
    pub fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let _ = (ga, gb);
    }
}
";
        let (owned, ()) = ws_of(&[("crates/core/src/locks.rs", src)]);
        let ws = build_ws(&owned);
        let dirs: BTreeSet<(String, String)> = ws
            .pairs
            .iter()
            .map(|p| (p.first.clone(), p.second.clone()))
            .collect();
        assert!(
            dirs.contains(&("core/P.a".into(), "core/P.b".into())),
            "{dirs:?}"
        );
        assert!(
            dirs.contains(&("core/P.b".into(), "core/P.a".into())),
            "{dirs:?}"
        );
    }

    #[test]
    fn statement_scoped_temporaries_do_not_outlive_their_statement() {
        let src = "\
use std::sync::Mutex;
pub struct S { m: Mutex<u32> }
impl S {
    pub fn tick(&self) {
        self.m.lock();
        std::thread::sleep(d);
    }
}
";
        let (owned, ()) = ws_of(&[("crates/core/src/s.rs", src)]);
        let ws = build_ws(&owned);
        assert!(ws.blocked.is_empty(), "{:?}", ws.blocked);
    }

    #[test]
    fn test_functions_are_ignored() {
        let src = "\
use std::sync::Mutex;
pub struct S { m: Mutex<u32> }
#[cfg(test)]
mod tests {
    fn t(s: &super::S) {
        let g = s.m.lock();
        std::thread::sleep(d);
        drop(g);
    }
}
";
        let (owned, ()) = ws_of(&[("crates/core/src/s.rs", src)]);
        let ws = build_ws(&owned);
        assert!(ws.blocked.is_empty(), "{:?}", ws.blocked);
    }
}
