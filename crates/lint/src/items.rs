//! Pass 1 of the workspace analyzer: a lightweight recursive parser
//! over the masked token stream that extracts `fn` / `impl` / `mod` /
//! `use` items, lock declarations (struct fields, statics, and — via
//! [`crate::graph`] — locals typed `Mutex` / `RwLock` / `Condvar`),
//! and per-function body spans.
//!
//! The parser runs on [`crate::lexer::MaskedFile`] output, so string
//! and comment contents can never spoof items, and byte offsets map to
//! real source lines. It is deliberately approximate: function bodies
//! are opaque leaves here (nested `fn` items and closures belong to the
//! enclosing function), `macro_rules!` bodies are skipped entirely, and
//! trait method signatures without bodies are recorded with
//! `body: None`. The approximation classes are documented in
//! DESIGN.md §14.

use crate::lexer::{matching_brace, MaskedFile};

/// A half-open byte span `[start, end)` into the masked text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

/// Which synchronization primitive a declaration names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

/// A lock-typed declaration: a struct field (`owner = Some(type)`) or a
/// `static` (`owner = None`).
#[derive(Debug)]
pub struct LockDecl {
    pub kind: LockKind,
    pub owner: Option<String>,
    pub name: String,
    pub line: usize,
}

/// One `fn` item (free function, inherent/trait method).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// `impl`/`trait` self type, e.g. `BoundedQueue` for its methods.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature text after the name: generics, params, return, where.
    pub sig: String,
    /// Body span including the outer braces; `None` for `fn ...;`.
    pub body: Option<Span>,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `use` declaration (path text with whitespace collapsed).
#[derive(Debug)]
pub struct UseItem {
    pub path: String,
    pub line: usize,
}

/// One variant of an `enum` item.
#[derive(Debug)]
pub struct VariantItem {
    pub name: String,
    /// Whether the payload (tuple or named fields) can carry text:
    /// `String`, `str`, `Vec<String>`, …
    pub carries_text: bool,
}

/// An `enum` item with its variants — the taint pass uses these to spot
/// error variants constructed from unredacted document text (INC013).
#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub line: usize,
    pub variants: Vec<VariantItem>,
}

/// Everything pass 1 extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub locks: Vec<LockDecl>,
    pub uses: Vec<UseItem>,
    pub enums: Vec<EnumItem>,
}

/// Parses the item structure of a masked file.
pub fn parse(file: &MaskedFile) -> FileItems {
    let mut out = FileItems::default();
    let bytes = file.masked.as_bytes();
    let lines = line_starts(bytes);
    let mut p = Parser {
        bytes,
        lines: &lines,
        file,
        out: &mut out,
    };
    p.scan(0, bytes.len(), None);
    out
}

/// Byte offsets where each line starts; index = line - 1.
fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte offset `at`, via the line-start table.
pub(crate) fn line_at(lines: &[usize], at: usize) -> usize {
    match lines.binary_search(&at) {
        Ok(i) => i + 1,
        Err(i) => i, // i >= 1 because lines[0] == 0
    }
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Parser<'a> {
    bytes: &'a [u8],
    lines: &'a [usize],
    file: &'a MaskedFile,
    out: &'a mut FileItems,
}

impl Parser<'_> {
    /// Scans `[from, to)` for items; `self_ty` is the enclosing
    /// `impl`/`trait` type, if any.
    fn scan(&mut self, from: usize, to: usize, self_ty: Option<&str>) {
        let mut i = from;
        while i < to {
            let b = self.bytes[i];
            if !is_ident_byte(b) {
                i += 1;
                continue;
            }
            let start = i;
            while i < to && is_ident_byte(self.bytes[i]) {
                i += 1;
            }
            // Word-bounded: a `#` before would mean a raw identifier, but
            // the lexer masks those away entirely.
            if start > 0 && is_ident_byte(self.bytes[start - 1]) {
                continue;
            }
            let word = &self.bytes[start..i];
            match word {
                b"fn" => i = self.parse_fn(start, i, to, self_ty),
                b"mod" => i = self.parse_mod(i, to),
                b"impl" | b"trait" => i = self.parse_impl_like(word == b"impl", i, to),
                b"struct" => i = self.parse_struct(i, to),
                b"enum" => i = self.parse_enum(i, to),
                b"static" => i = self.parse_static(i, to),
                b"use" => i = self.parse_use(start, i, to),
                b"macro_rules" => i = self.skip_braced_body(i, to),
                _ => {}
            }
        }
    }

    fn skip_ws(&self, mut i: usize, to: usize) -> usize {
        while i < to && self.bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn read_ident(&self, i: usize, to: usize) -> Option<(String, usize)> {
        let i = self.skip_ws(i, to);
        if i >= to || !is_ident_byte(self.bytes[i]) || self.bytes[i].is_ascii_digit() {
            return None;
        }
        let mut j = i;
        while j < to && is_ident_byte(self.bytes[j]) {
            j += 1;
        }
        Some((String::from_utf8_lossy(&self.bytes[i..j]).into_owned(), j))
    }

    /// Advances past a balanced `<...>` group if one starts at `i`.
    fn skip_generics(&self, i: usize, to: usize) -> usize {
        let i = self.skip_ws(i, to);
        if i >= to || self.bytes[i] != b'<' {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i;
        while j < to {
            match self.bytes[j] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                // `->` inside generic defaults (fn pointers) — the `>` of
                // the arrow must not close the group.
                b'-' if self.bytes.get(j + 1) == Some(&b'>') => j += 1,
                _ => {}
            }
            j += 1;
        }
        to
    }

    /// Skips forward past the matching close of the next `{`; if a `;`
    /// appears first the item is body-less. Returns the resume offset.
    fn skip_braced_body(&self, mut i: usize, to: usize) -> usize {
        while i < to {
            match self.bytes[i] {
                b'{' => {
                    return match matching_brace(self.bytes, i) {
                        Some(close) => (close + 1).min(to),
                        None => to,
                    }
                }
                b';' => return i + 1,
                _ => i += 1,
            }
        }
        to
    }

    /// `kw_start` is the offset of `fn`, `i` just past it. Returns the
    /// resume offset (past the body or the `;`).
    fn parse_fn(&mut self, kw_start: usize, i: usize, to: usize, self_ty: Option<&str>) -> usize {
        let Some((name, after_name)) = self.read_ident(i, to) else {
            // `fn(` type position, or malformed — not an item.
            return i;
        };
        let after_generics = self.skip_generics(after_name, to);
        let params_open = self.skip_ws(after_generics, to);
        if params_open >= to || self.bytes[params_open] != b'(' {
            return after_name;
        }
        // Balanced parens for the parameter list.
        let mut depth = 0i32;
        let mut j = params_open;
        while j < to {
            match self.bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= to {
            return to;
        }
        // Return type / where clause run to the body `{` or a `;`.
        let mut k = j + 1;
        while k < to && self.bytes[k] != b'{' && self.bytes[k] != b';' {
            k += 1;
        }
        let (body, resume) = if k < to && self.bytes[k] == b'{' {
            match matching_brace(self.bytes, k) {
                Some(close) => (
                    Some(Span {
                        start: k,
                        end: (close + 1).min(to),
                    }),
                    (close + 1).min(to),
                ),
                None => (None, to),
            }
        } else {
            (None, (k + 1).min(to))
        };
        let line = line_at(self.lines, kw_start);
        self.out.fns.push(FnItem {
            name,
            self_ty: self_ty.map(str::to_string),
            line,
            sig: String::from_utf8_lossy(&self.bytes[after_name..k])
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" "),
            body,
            in_test: self.file.in_test_region(line),
        });
        resume
    }

    fn parse_mod(&mut self, i: usize, to: usize) -> usize {
        let Some((_, after_name)) = self.read_ident(i, to) else {
            return i;
        };
        let j = self.skip_ws(after_name, to);
        if j < to && self.bytes[j] == b'{' {
            let close = matching_brace(self.bytes, j).unwrap_or(to);
            // Inline modules reset the impl context.
            self.scan(j + 1, close.min(to), None);
            (close + 1).min(to)
        } else {
            // `mod name;` — nothing to do.
            (j + 1).min(to)
        }
    }

    fn parse_impl_like(&mut self, is_impl: bool, i: usize, to: usize) -> usize {
        let after_generics = self.skip_generics(i, to);
        // Header text up to the body `{` (no braces can appear in it).
        let mut j = after_generics;
        while j < to && self.bytes[j] != b'{' && self.bytes[j] != b';' {
            j += 1;
        }
        if j >= to || self.bytes[j] == b';' {
            return (j + 1).min(to);
        }
        let header = String::from_utf8_lossy(&self.bytes[after_generics..j]).into_owned();
        let ty = if is_impl {
            impl_self_type(&header)
        } else {
            // Trait name is the first ident of the header.
            header
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .find(|s| !s.is_empty())
                .map(str::to_string)
        };
        let close = matching_brace(self.bytes, j).unwrap_or(to);
        self.scan(j + 1, close.min(to), ty.as_deref());
        (close + 1).min(to)
    }

    fn parse_struct(&mut self, i: usize, to: usize) -> usize {
        let Some((name, after_name)) = self.read_ident(i, to) else {
            return i;
        };
        let after_generics = self.skip_generics(after_name, to);
        let j = self.skip_ws(after_generics, to);
        if j >= to {
            return to;
        }
        match self.bytes[j] {
            b'{' => {
                let close = matching_brace(self.bytes, j).unwrap_or(to);
                let body = String::from_utf8_lossy(&self.bytes[j + 1..close.min(to)]).into_owned();
                self.collect_field_locks(&name, &body, j + 1);
                (close + 1).min(to)
            }
            // Tuple / unit structs: no named lock fields to record.
            _ => self.skip_braced_body(j, to),
        }
    }

    fn parse_enum(&mut self, i: usize, to: usize) -> usize {
        let Some((name, after_name)) = self.read_ident(i, to) else {
            return i;
        };
        let after_generics = self.skip_generics(after_name, to);
        let j = self.skip_ws(after_generics, to);
        if j >= to || self.bytes[j] != b'{' {
            return self.skip_braced_body(j, to);
        }
        let close = matching_brace(self.bytes, j).unwrap_or(to);
        let body = String::from_utf8_lossy(&self.bytes[j + 1..close.min(to)]).into_owned();
        let mut variants = Vec::new();
        for variant in split_top_level(&body, ',') {
            let variant = variant.trim();
            let Some(vname) = variant
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .find(|s| !s.is_empty() && s.chars().next().is_some_and(char::is_uppercase))
            else {
                continue;
            };
            // The payload is whatever follows the name: `(types)` for
            // tuple variants, `{ fields }` for struct variants.
            let payload = &variant[variant.find(vname).unwrap_or(0) + vname.len()..];
            let carries_text = contains_word(payload, "String") || contains_word(payload, "str");
            variants.push(VariantItem {
                name: vname.to_string(),
                carries_text,
            });
        }
        self.out.enums.push(EnumItem {
            name,
            line: line_at(self.lines, i),
            variants,
        });
        (close + 1).min(to)
    }

    /// Records `field: Mutex<..>` style declarations from a struct body.
    fn collect_field_locks(&mut self, owner: &str, body: &str, body_off: usize) {
        let mut offset = 0usize;
        for field in split_top_level(body, ',') {
            let leading_ws = field.len() - field.trim_start().len();
            let field_off = body_off + offset + leading_ws;
            offset += field.len() + 1;
            let Some((name, ty)) = field.split_once(':') else {
                continue;
            };
            let name = name
                .split_whitespace()
                .last()
                .unwrap_or_default()
                .to_string();
            if name.is_empty() || !name.bytes().all(is_ident_byte) {
                continue;
            }
            if let Some(kind) = lock_kind_in(ty) {
                self.out.locks.push(LockDecl {
                    kind,
                    owner: Some(owner.to_string()),
                    name,
                    line: line_at(self.lines, field_off),
                });
            }
        }
    }

    fn parse_static(&mut self, i: usize, to: usize) -> usize {
        // `static [mut] NAME: TYPE = init;` — the init may contain braces.
        let (name, after) = match self.read_ident(i, to) {
            Some((w, j)) if w == "mut" => match self.read_ident(j, to) {
                Some(pair) => pair,
                None => return i,
            },
            Some(pair) => pair,
            None => return i,
        };
        let mut j = self.skip_ws(after, to);
        if j >= to || self.bytes[j] != b':' {
            return after;
        }
        j += 1;
        let ty_start = j;
        let mut brace = 0i32;
        while j < to {
            match self.bytes[j] {
                b'{' => brace += 1,
                b'}' => brace -= 1,
                b'=' | b';' if brace == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let ty = String::from_utf8_lossy(&self.bytes[ty_start..j]).into_owned();
        if let Some(kind) = lock_kind_in(&ty) {
            self.out.locks.push(LockDecl {
                kind,
                owner: None,
                name,
                line: line_at(self.lines, i),
            });
        }
        // Skip the initializer to its terminating `;`.
        while j < to {
            match self.bytes[j] {
                b'{' => brace += 1,
                b'}' => brace -= 1,
                b';' if brace == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        to
    }

    fn parse_use(&mut self, kw_start: usize, i: usize, to: usize) -> usize {
        let mut j = i;
        while j < to && self.bytes[j] != b';' {
            j += 1;
        }
        let path: String = String::from_utf8_lossy(&self.bytes[i..j])
            .split_whitespace()
            .collect();
        if !path.is_empty() {
            self.out.uses.push(UseItem {
                path,
                line: line_at(self.lines, kw_start),
            });
        }
        (j + 1).min(to)
    }
}

/// Extracts the self type from an `impl` header: `Display for Report`
/// → `Report`, `BoundedQueue<T>` → `BoundedQueue`.
fn impl_self_type(header: &str) -> Option<String> {
    let header = header.split(" where ").next().unwrap_or(header);
    let target = match header.find(" for ") {
        Some(at) => &header[at + 5..],
        None => header,
    };
    let target = target.trim_start_matches(['&', ' ']).trim();
    let end = target
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(target.len());
    let name = &target[..end];
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

/// Word-bounded search for a lock type name inside a type expression.
pub(crate) fn lock_kind_in(ty: &str) -> Option<LockKind> {
    for (word, kind) in [
        ("Mutex", LockKind::Mutex),
        ("RwLock", LockKind::RwLock),
        ("Condvar", LockKind::Condvar),
    ] {
        if contains_word(ty, word) {
            return Some(kind);
        }
    }
    None
}

/// Whether `text` contains `word` with ident-boundaries on both sides.
pub(crate) fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Splits `text` on `sep` at zero bracket depth (`()`, `[]`, `<>`, `{}`).
/// The `>` of a `->` arrow is not a bracket close.
pub(crate) fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut prev = '\0';
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' | '<' | '{' => depth += 1,
            '>' if prev == '-' => {}
            ')' | ']' | '>' | '}' => depth -= 1,
            c if c == sep && depth <= 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev = c;
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::MaskedFile;

    fn parse_src(src: &str) -> FileItems {
        parse(&MaskedFile::new(src))
    }

    #[test]
    fn free_and_impl_fns_are_found_with_bodies() {
        let src = "fn alpha(x: usize) -> usize { x + 1 }\n\
                   struct Q { state: Mutex<u32>, cv: Condvar }\n\
                   impl Q {\n    fn lock(&self) -> MutexGuard<'_, u32> { todo() }\n}\n";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "alpha");
        assert_eq!(items.fns[0].line, 1);
        assert!(items.fns[0].body.is_some());
        assert_eq!(items.fns[1].qualified(), "Q::lock");
        assert!(items.fns[1].sig.contains("MutexGuard"));
        let kinds: Vec<_> = items
            .locks
            .iter()
            .map(|l| (l.kind, l.name.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![(LockKind::Mutex, "state"), (LockKind::Condvar, "cv")]
        );
        assert_eq!(items.locks[0].owner.as_deref(), Some("Q"));
    }

    #[test]
    fn nested_mods_and_traits_are_walked() {
        let src = "mod inner {\n    pub fn deep() {}\n}\n\
                   trait Scorer {\n    fn score(&self) -> f32;\n    fn kind(&self) -> u8 { 0 }\n}\n";
        let items = parse_src(src);
        let names: Vec<_> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["deep", "Scorer::score", "Scorer::kind"]);
        assert!(items.fns[1].body.is_none(), "default-less trait fn");
        assert!(items.fns[2].body.is_some());
    }

    #[test]
    fn fn_bodies_are_leaves_and_macros_are_skipped() {
        let src = "fn outer() {\n    fn nested() {}\n    let f: fn(usize) = g;\n}\n\
                   macro_rules! m { () => { fn ghost() {} }; }\n\
                   fn after() {}\n";
        let items = parse_src(src);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "after"]);
    }

    #[test]
    fn impl_for_and_generics_resolve_self_type() {
        let src = "impl<T: Send> Display for Wrapper<T> {\n    fn fmt(&self) {}\n}\n\
                   impl<'a> Cursor<'a> {\n    fn next(&mut self) {}\n}\n";
        let items = parse_src(src);
        assert_eq!(items.fns[0].qualified(), "Wrapper::fmt");
        assert_eq!(items.fns[1].qualified(), "Cursor::next");
    }

    #[test]
    fn statics_and_uses_are_recorded() {
        let src = "use std::sync::{Mutex, Condvar};\n\
                   static REGISTRY: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n\
                   static PLAIN: u32 = 7;\n";
        let items = parse_src(src);
        assert_eq!(items.uses.len(), 1);
        assert!(items.uses[0].path.contains("std::sync"));
        assert_eq!(items.locks.len(), 1);
        assert_eq!(items.locks[0].name, "REGISTRY");
        assert_eq!(items.locks[0].owner, None);
    }

    #[test]
    fn cfg_test_fns_are_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let items = parse_src(src);
        assert!(!items.fns[0].in_test);
        assert!(items.fns[1].in_test);
    }

    #[test]
    fn enums_record_variants_and_text_payloads() {
        let src = "enum ScanError {\n    Io(std::io::Error),\n    Corrupt { path: String, detail: String },\n    Eof,\n    Lines(Vec<String>),\n}\nenum Plain { A, B }\n";
        let items = parse_src(src);
        assert_eq!(items.enums.len(), 2);
        let e = &items.enums[0];
        assert_eq!(e.name, "ScanError");
        assert_eq!(e.line, 1);
        let v: Vec<(&str, bool)> = e
            .variants
            .iter()
            .map(|v| (v.name.as_str(), v.carries_text))
            .collect();
        assert_eq!(
            v,
            vec![
                ("Io", false),
                ("Corrupt", true),
                ("Eof", false),
                ("Lines", true)
            ]
        );
        assert!(items.enums[1].variants.iter().all(|v| !v.carries_text));
    }

    #[test]
    fn strings_cannot_spoof_items() {
        let src = "const S: &str = \"fn ghost() {}\";\nfn real() {}\n";
        let items = parse_src(src);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn unterminated_body_does_not_panic() {
        let items = parse_src("fn broken() { let x = 1;\n");
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].body.is_none());
    }
}
