//! incite-lint: a dependency-free static-analysis pass over the workspace.
//!
//! The paper's numbers are only credible if every pipeline stage is
//! deterministic and total. This crate mechanically enforces that:
//!
//! | rule | invariant |
//! |------|-----------|
//! | INC001 | no `unwrap()`/`expect()`/`panic!`/`todo!` in library code of core, ml, pii, regexlite, stats, cli |
//! | INC002 | no `thread_rng`/`SystemTime::now`/`Instant::now` in library crates (bench binaries exempt) |
//! | INC003 | no float `==`/`!=` in stats/ml |
//! | INC004 | no unchecked slice indexing in the regexlite VM hot loop |
//! | INC005 | taxonomy/pii/corpus spec constants agree with the paper |
//!
//! Findings are ratcheted against `lint.baseline.json` (see [`baseline`]):
//! grandfathered debt passes, new debt fails, and paid-down debt is
//! reported so the baseline can shrink. Suppress a single site with
//! `// incite-lint: allow(INC00x)` on (or directly above) the line.
//!
//! The crate has an **empty `[dependencies]`** by design: it must build
//! and run first, in environments with no registry access, so it can gate
//! everything else.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod spec;
