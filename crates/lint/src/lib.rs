//! incite-lint: the workspace's static-analysis engine.
//!
//! The paper's numbers are only credible if every pipeline stage is
//! deterministic and total. This crate mechanically enforces that:
//!
//! | rule | invariant |
//! |------|-----------|
//! | INC001 | no `unwrap()`/`expect()`/`panic!`/`todo!` in library code of core, ml, pii, regexlite, stats, cli |
//! | INC002 | no `thread_rng`/`SystemTime::now`/`Instant::now` in library crates (bench binaries exempt) |
//! | INC003 | no float `==`/`!=` in stats/ml |
//! | INC004 | no unchecked slice indexing in the regexlite VM hot loop |
//! | INC005 | taxonomy/pii/corpus spec constants agree with the paper |
//! | INC006 | all persistent writes funnel through `checkpoint::atomic_io` |
//! | INC007 | `std::net` usage confined to the serve crate |
//! | INC008 | workspace locks are acquired in one consistent order |
//! | INC009 | no blocking operation while a lock guard is live |
//! | INC010 | serve request handlers only grow buffers under a bound |
//! | INC011 | tainted document text never reaches a diagnostic sink |
//! | INC012 | no nondeterminism source reachable from scoring entries |
//! | INC013 | error variants carrying String never built from raw text |
//! | INC014 | every `atomic_io` write/append is reachable from a failpoint sweep |
//! | INC015 | no float accumulation across `parallel::map_indexed` slots |
//! | INC016 | wire-decoded lengths/offsets bounded before `+`/`*`/narrowing `as` |
//!
//! INC001–INC007 are per-file pattern rules over masked text. INC008–
//! INC010 are graph rules: pass 1 ([`items`], [`graph`]) parses the item
//! structure of every file and builds an approximate call graph with
//! lock-site annotations; pass 2 ([`concurrency`]) walks that graph.
//! INC011–INC013 are dataflow rules: pass 3 ([`taint`]) runs an
//! interprocedural source→sanitizer→sink taint analysis and a purity
//! reachability check over the same graph (DESIGN.md §15). INC014–INC016
//! are invariant rules: pass 4 ([`invariants`]) walks the same graph for
//! unswept checkpoint writes, order-sensitive float folds, and unchecked
//! wire arithmetic (DESIGN.md §19).
//!
//! The [`engine`] fans the per-file stage out on `incite_core::parallel`
//! with a deterministic sequential merge — findings are byte-identical at
//! any thread count — and memoizes per-file results in a content-hash-
//! keyed [`cache`] written through the `atomic_io` funnel, so warm runs
//! re-analyze only changed files.
//!
//! Findings are ratcheted against `lint.baseline.json` (see [`baseline`]):
//! grandfathered debt passes, new debt fails, and paid-down debt is
//! reported so the baseline can shrink. Suppress a single site with
//! `// incite-lint: allow(INC00x)` on (or directly above) the line.
//!
//! The only dependency is `incite-core` — the linter runs on the exact
//! parallel executor and checkpoint funnel it polices, and nothing else —
//! so it still builds early in environments with no registry access.

pub mod baseline;
pub mod cache;
pub mod concurrency;
pub mod engine;
pub mod graph;
pub mod invariants;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod spec;
pub mod taint;
