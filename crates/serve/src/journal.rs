//! The deterministic request journal: every scored response, replayable
//! offline to byte-identical bits.
//!
//! Scoring workers send one [`JournalRecord`] per completed batch over a
//! channel to a dedicated journal thread, which owns an
//! [`atomic_io::AppendLog`] — the checkpoint crate's hash-framed append
//! funnel — so no request-path thread ever touches the filesystem and no
//! lock is held across a write (INC006, INC009). Each record carries the
//! exact inputs (`texts`), the provenance (`generation`, `model_hash`,
//! `run_dir`, `tenant`), and the produced score bits, which is everything
//! `incite replay` needs to re-score the inputs offline and compare
//! f32 bit patterns. A torn tail (crash mid-append) is detected by the
//! per-record FNV-64 footer and reported, never silently trusted.
//!
//! Shutdown is by channel disconnect: when every worker's sender drops,
//! the journal thread drains the remaining buffered records in FIFO order
//! and exits, so `ServerHandle::join` loses nothing.

use crate::chaos::{self, ChaosRegistry};
use incite_core::checkpoint::atomic_io::{self, AppendLog};
use incite_core::CheckpointError;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;

/// One journaled response: inputs, model provenance, and output bits.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JournalRecord {
    /// Server-assigned sequence number, monotonic per server lifetime.
    pub seq: u64,
    /// Model generation that scored the batch.
    pub generation: u64,
    /// Verified content hash of that generation's model section.
    pub model_hash: String,
    /// Run directory the generation was loaded from.
    pub run_dir: String,
    /// Tenant the request was admitted under.
    pub tenant: String,
    /// The exact input texts, in request order.
    pub texts: Vec<String>,
    /// The served scores as f32 bit patterns (the identity contract).
    pub bits: Vec<u32>,
}

/// Journal-thread counters surfaced in `/metrics`.
#[derive(Debug, Default)]
pub struct JournalStats {
    /// Records durably appended.
    pub records: AtomicU64,
    /// Append or serialization failures (the record is dropped; scoring
    /// is never failed retroactively for a journal error).
    pub errors: AtomicU64,
}

/// Opens the journal at `path` and spawns the writer thread.
///
/// Returns the sender workers clone (dropping every clone shuts the
/// thread down after a FIFO drain) and the join handle. Opening eagerly
/// means an unwritable journal path fails server boot, not the first
/// request — the [`chaos::JOURNAL_OPEN`] failpoint injects exactly that
/// boot failure, which is what makes this open sweepable (INC014).
pub(crate) fn spawn(
    path: &Path,
    stats: Arc<JournalStats>,
    chaos: &ChaosRegistry,
) -> Result<(mpsc::Sender<JournalRecord>, thread::JoinHandle<()>), CheckpointError> {
    if chaos.trip(chaos::JOURNAL_OPEN) {
        return Err(CheckpointError::Io {
            path: path.to_path_buf(),
            source: std::io::Error::other("injected journal-open fault"),
        });
    }
    let mut log = AppendLog::open(path)?;
    let (tx, rx) = mpsc::channel::<JournalRecord>();
    let handle = thread::Builder::new()
        .name("incite-journal".to_string())
        .spawn(move || {
            while let Ok(record) = rx.recv() {
                match serde_json::to_string(&record) {
                    Ok(line) if !line.contains('\n') => match log.append(line.as_bytes()) {
                        Ok(()) => {
                            stats.records.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    // JSON string escaping makes embedded newlines
                    // impossible, but the funnel's no-newline framing
                    // invariant is load-bearing: count, never corrupt.
                    _ => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
        .map_err(|e| CheckpointError::Io {
            path: PathBuf::from("incite-journal thread"),
            source: e,
        })?;
    Ok((tx, handle))
}

/// Reads a journal back: the intact records in append order, plus the
/// byte offset of a torn or damaged tail if one was detected.
///
/// A record whose hash footer verifies but whose payload fails to parse
/// is corruption-by-construction (the server only appends valid JSON), so
/// it is a typed error rather than a silent skip.
pub fn read_journal(path: &Path) -> Result<(Vec<JournalRecord>, Option<u64>), CheckpointError> {
    let (payloads, damage) = atomic_io::read_log(path)?;
    let mut records = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        let text = std::str::from_utf8(payload).map_err(|_| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: "journal record is not valid UTF-8".to_string(),
        })?;
        let record: JournalRecord =
            serde_json::from_str(text).map_err(|_| CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: "journal record is not a valid JournalRecord".to_string(),
            })?;
        records.push(record);
    }
    Ok((records, damage))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            generation: 1 + seq % 2,
            model_hash: "00f0e1d2c3b4a596".to_string(),
            run_dir: "/tmp/run".to_string(),
            tenant: "alpha".to_string(),
            texts: vec![
                format!("report user {seq}"),
                "with \"quotes\"\nand newline".to_string(),
            ],
            bits: vec![0x3f00_0000 + seq as u32, 0x3e80_0000],
        }
    }

    #[test]
    fn journal_roundtrips_records_in_order() {
        let dir = std::env::temp_dir().join(format!("incite-journal-{}", std::process::id()));
        let path = dir.join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let stats = Arc::new(JournalStats::default());
        let chaos = ChaosRegistry::default();
        let (tx, handle) = spawn(&path, Arc::clone(&stats), &chaos).expect("journal opens");
        for seq in 0..5 {
            tx.send(record(seq)).expect("send");
        }
        drop(tx);
        handle.join().expect("journal thread exits");
        assert_eq!(stats.records.load(Ordering::Relaxed), 5);
        assert_eq!(stats.errors.load(Ordering::Relaxed), 0);
        let (records, damage) = read_journal(&path).expect("journal reads back");
        assert_eq!(damage, None);
        assert_eq!(records.len(), 5);
        for (seq, got) in records.iter().enumerate() {
            assert_eq!(*got, record(seq as u64), "record {seq} roundtrips exactly");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verified_but_unparseable_record_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("incite-journal-{}", std::process::id()));
        let path = dir.join("unparseable.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut log = AppendLog::open(&path).expect("log opens");
        log.append(b"{\"not\": \"a journal record\"}")
            .expect("append");
        let err = read_journal(&path).expect_err("parse failure is typed");
        assert!(matches!(err, CheckpointError::Corrupt { .. }));
        let _ = std::fs::remove_file(&path);
    }
}
