//! Serve-side chaos sites: deterministic fault injection on the request
//! path, reusing [`incite_core::FailpointRegistry`].
//!
//! The pipeline's failpoint sweep proves crash recovery; this module
//! proves *graceful degradation*: with a site armed the server must
//! return a typed error (or drop the one affected connection) and keep
//! serving byte-identical scores afterwards — never hang, never corrupt.
//!
//! Sites are **one-shot**: [`ChaosRegistry::trip`] consumes the armed
//! site, so a single server lifetime can demonstrate both the fault and
//! the recovery. Without the `failpoints` cargo feature the registry is a
//! unit struct and `trip` is a constant `false` the optimizer deletes.

#[cfg(feature = "failpoints")]
use incite_core::FailpointRegistry;
#[cfg(feature = "failpoints")]
use std::sync::Mutex;

/// Connection is dropped after routing, before any response byte.
pub const SOCKET_RESET: &str = "serve-socket-reset";
/// Only a truncated prefix of the response reaches the wire.
pub const SHORT_WRITE: &str = "serve-short-write";
/// The scoring worker fails the batch as if the engine had panicked.
pub const WORKER_FAULT: &str = "serve-worker-fault";
/// A model swap aborts after loading, before the generation flips.
pub const MID_SWAP: &str = "serve-mid-swap";
/// Opening the request journal fails at boot, as if the path were
/// unwritable — the server must refuse to start, not drop records later.
pub const JOURNAL_OPEN: &str = "serve-journal-open";

/// Every serve chaos site, for sweep loops.
pub const SERVE_SITES: &[&str] = &[
    SOCKET_RESET,
    SHORT_WRITE,
    WORKER_FAULT,
    MID_SWAP,
    JOURNAL_OPEN,
];

/// One-shot wrapper over the core registry for the serve request path.
#[derive(Debug, Default)]
pub struct ChaosRegistry {
    #[cfg(feature = "failpoints")]
    inner: Mutex<FailpointRegistry>,
}

impl ChaosRegistry {
    /// Wraps the registry carried in by `ServeConfig`.
    #[cfg(feature = "failpoints")]
    pub(crate) fn from_registry(registry: FailpointRegistry) -> Self {
        ChaosRegistry {
            inner: Mutex::new(registry),
        }
    }

    #[cfg(not(feature = "failpoints"))]
    pub(crate) fn from_registry(_registry: incite_core::FailpointRegistry) -> Self {
        ChaosRegistry {}
    }

    /// `true` exactly once per arming of `site`; the site disarms on the
    /// trip so the server recovers for the rest of its lifetime. The lock
    /// guards a pure in-memory set check — no blocking work runs under it.
    pub(crate) fn trip(&self, site: &str) -> bool {
        #[cfg(feature = "failpoints")]
        {
            let mut inner = match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if inner.check(site).is_err() {
                inner.disarm(site);
                return true;
            }
            false
        }
        #[cfg(not(feature = "failpoints"))]
        {
            let _ = site;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untripped_registry_never_fires() {
        let chaos = ChaosRegistry::default();
        for site in SERVE_SITES {
            assert!(!chaos.trip(site));
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_site_trips_exactly_once() {
        let mut registry = incite_core::FailpointRegistry::new();
        registry.arm(WORKER_FAULT);
        let chaos = ChaosRegistry::from_registry(registry);
        assert!(chaos.trip(WORKER_FAULT), "first check fires");
        assert!(!chaos.trip(WORKER_FAULT), "the trip disarms the site");
        assert!(!chaos.trip(SOCKET_RESET), "other sites stay quiet");
    }
}
