//! SIGTERM / SIGINT → graceful drain, with no dependency beyond the
//! libc that std already links.
//!
//! The handler does the only async-signal-safe thing possible: store a
//! relaxed `true` into a static [`AtomicBool`]. The serving loop
//! ([`crate::ServerHandle::run_until`]) polls that flag and runs the
//! ordinary drain protocol on the main thread — no work happens in
//! signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The process-wide shutdown flag set by [`install`]d handlers.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Resets the flag; only tests that simulate repeated shutdowns need it.
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that flip [`shutdown_flag`].
/// Best-effort and idempotent; on non-unix targets it is a no-op (the
/// drain can still be driven through [`crate::ServerHandle::join`]).
#[cfg(unix)]
pub fn install() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    // std links libc on unix; declaring `signal` here avoids a cargo
    // dependency for two syscalls. sighandler_t is pointer-sized, so
    // usize is ABI-compatible for the ignored return value.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_flips_and_resets() {
        reset_for_test();
        assert!(!shutdown_flag().load(Ordering::SeqCst));
        shutdown_flag().store(true, Ordering::SeqCst);
        assert!(shutdown_flag().load(Ordering::SeqCst));
        reset_for_test();
        assert!(!shutdown_flag().load(Ordering::SeqCst));
    }

    #[cfg(unix)]
    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
