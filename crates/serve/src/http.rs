//! A minimal HTTP/1.1 layer over `TcpStream` — just what the service
//! needs: request line + headers + `Content-Length` bodies in, status +
//! headers + body out, keep-alive by default. No chunked encoding, no
//! TLS, no compression; anything outside that subset is a typed `400`.
//!
//! Reads run against a short socket timeout so connection handlers can
//! notice a drain without dedicated poller threads: a timeout *between*
//! requests checks the abort flag and closes cleanly; a timeout
//! *mid-request* keeps the bytes read so far (the `read_until` contract)
//! and retries against a bounded grace window, so a stalled client can
//! never hold shutdown hostage.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on request line + headers, bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// How long a request already in flight may continue after a drain began.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub target: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum Received {
    Request(Request),
    /// Clean close: EOF, or the drain flag flipped while idle.
    Closed,
}

/// Receive-side failures, split by who is at fault.
#[derive(Debug)]
pub enum RecvError {
    /// Socket-level failure or an unrecoverable stall; drop the
    /// connection without a response.
    Io(std::io::Error),
    /// The bytes are not the HTTP subset we speak → `400`.
    Malformed(&'static str),
    /// Head or body over the hard cap → `413`.
    TooLarge(&'static str),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one request. `abort` is polled on read timeouts: while no byte
/// of a new request has arrived it closes the connection cleanly; once a
/// request has started it bounds the remaining patience to
/// [`DRAIN_GRACE`].
///
/// `io_window` is the per-connection anti-slow-loris deadline: it starts
/// the moment the first request byte arrives, and covers the rest of the
/// request line, the headers, and the body. A connection may idle between
/// requests indefinitely, but once a request has begun the client must
/// deliver it whole within the window or lose the connection — a handler
/// thread can no longer be pinned by a one-byte-per-poll drip feed.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    abort: &dyn Fn() -> bool,
    io_window: Duration,
) -> Result<Received, RecvError> {
    let mut line = String::new();
    let mut drain_deadline: Option<Instant> = None;
    let mut head_deadline: Option<Instant> = None;
    // Request line: the only place a connection legitimately idles — but
    // only while it is still *empty*. The first byte starts the clock.
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(Received::Closed)
                } else {
                    Err(RecvError::Malformed("unterminated request line"))
                };
            }
            Ok(_) => break,
            Err(e) if is_timeout(&e) => {
                if abort() {
                    if line.is_empty() {
                        return Ok(Received::Closed);
                    }
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() > deadline {
                        return Err(RecvError::Io(e));
                    }
                }
                if !line.is_empty() {
                    let deadline = *head_deadline.get_or_insert_with(|| Instant::now() + io_window);
                    if Instant::now() > deadline {
                        return Err(RecvError::Io(e));
                    }
                }
                if line.len() > MAX_HEAD_BYTES {
                    return Err(RecvError::TooLarge("request line"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }

    let (method, target) = parse_request_line(line.trim_end())?;
    // The request has started: everything else must arrive within the
    // I/O window regardless of drain state. Reuse the clock the first
    // dribbled byte may already have started.
    let io_deadline = head_deadline.unwrap_or_else(|| Instant::now() + io_window);

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut header_line = String::new();
        read_line_within(reader, &mut header_line, io_deadline)?;
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        head_bytes += header_line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RecvError::TooLarge("request headers"));
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or(RecvError::Malformed("header line without a colon"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RecvError::Malformed("transfer-encoding is not supported"));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RecvError::Malformed("content-length is not a number"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RecvError::TooLarge("request body"));
    }
    let mut request = request;
    if content_length > 0 {
        request.body = read_exact_within(reader, content_length, io_deadline)?;
    }
    Ok(Received::Request(request))
}

/// `read_line` retrying timeouts until `deadline`; partial bytes persist
/// in `buf` across retries per the `read_until` contract.
fn read_line_within(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    deadline: Instant,
) -> Result<(), RecvError> {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-request")),
            Ok(_) => return Ok(()),
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => {
                if Instant::now() > deadline {
                    return Err(RecvError::Io(e));
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
}

/// Reads exactly `n` body bytes, retrying timeouts until `deadline`.
fn read_exact_within(
    reader: &mut BufReader<TcpStream>,
    n: usize,
    deadline: Instant,
) -> Result<Vec<u8>, RecvError> {
    let mut body = vec![0u8; n];
    let mut filled = 0;
    while filled < n {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body")),
            Ok(read) => filled += read,
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => {
                if Instant::now() > deadline {
                    return Err(RecvError::Io(e));
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(body)
}

fn parse_request_line(line: &str) -> Result<(String, String), RecvError> {
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RecvError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(RecvError::Malformed("request line without a target"))?;
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("request line without a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }
    Ok((method.to_string(), target.to_string()))
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    pub extra_headers: Vec<(&'static str, String)>,
    /// Close the connection after writing (`Connection: close`).
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if self.close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects() {
        assert!(parse_request_line("GET /healthz HTTP/1.1").is_ok());
        let (m, t) = parse_request_line("POST /v1/score HTTP/1.1").expect("parse");
        assert_eq!(m, "POST");
        assert_eq!(t, "/v1/score");
        assert!(matches!(
            parse_request_line("GET /x SPDY/3"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            parse_request_line("GET"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format_is_http11() {
        let mut buf = Vec::new();
        Response::json(429, "{\"error\":\"overloaded\"}".to_string())
            .with_header("retry-after", "1".to_string())
            .closing()
            .write_to(&mut buf)
            .expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 22\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"),
            "{text}"
        );
    }

    #[test]
    fn slow_loris_request_line_is_cut_off_at_the_io_window() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            // One byte, then silence: the classic slow-loris opener. The
            // connection stays up until the server hangs up on us.
            stream.write_all(b"G").expect("first byte");
            let mut sink = [0u8; 16];
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = stream.read(&mut sink);
        });
        let (stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .expect("read timeout");
        let mut reader = BufReader::new(stream);
        let io_window = Duration::from_millis(200);
        let started = Instant::now();
        let result = read_request(&mut reader, &|| false, io_window);
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(RecvError::Io(_))),
            "a dribbled request must be cut off, got {result:?}"
        );
        assert!(
            elapsed >= io_window,
            "cut-off must not fire before the window ({elapsed:?})"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "cut-off must be prompt, took {elapsed:?}"
        );
        drop(reader);
        client.join().expect("client thread");
    }

    #[test]
    fn idle_connection_outlives_the_io_window() {
        use std::net::TcpListener;

        // A keep-alive connection that has sent *nothing* is idle, not
        // slow-loris: the window must not start until the first byte.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(400));
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("request");
            let mut sink = [0u8; 16];
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = stream.read(&mut sink);
        });
        let (stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .expect("read timeout");
        let mut reader = BufReader::new(stream);
        // Window far shorter than the client's idle pause.
        let result = read_request(&mut reader, &|| false, Duration::from_millis(100));
        match result {
            Ok(Received::Request(req)) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.target, "/healthz");
            }
            other => panic!("idle-then-request must parse, got {other:?}"),
        }
        drop(reader);
        client.join().expect("client thread");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = Request {
            method: "POST".into(),
            target: "/v1/score".into(),
            headers: vec![("Content-Length".into(), "12".into())],
            body: Vec::new(),
        };
        assert_eq!(req.header("content-length"), Some("12"));
        assert_eq!(req.header("CONTENT-LENGTH"), Some("12"));
        assert!(!req.wants_close());
    }
}
