//! # incite-serve
//!
//! The online inference service for CTH/dox scoring: a dependency-free
//! (std-only) threaded HTTP/1.1 server that loads a classifier from a
//! checkpointed run directory and scores documents as platforms receive
//! them — the deployment shape the paper's pipeline feeds in production
//! (DESIGN.md §13).
//!
//! Endpoints:
//!
//! * `POST /v1/score` — score one document (`{"text": "..."}`) or a batch
//!   (`{"texts": [...]}`). The response carries both decimal scores and
//!   the raw `f32` bit patterns, so byte-identity with the offline
//!   [`incite_core::ScoringEngine`] is checkable over the wire.
//! * `POST /v1/redact` — PII redaction via `incite-pii`, same body shape.
//! * `GET /healthz` — `200 ok` while serving, `503 draining` during
//!   shutdown.
//! * `GET /metrics` — text-format counters and latency quantiles.
//!
//! Architecture: connection handling is decoupled from inference. An
//! acceptor thread hands each connection to a handler thread; handlers
//! parse requests and push [`worker::ScoreJob`]s into a **bounded** queue
//! ([`queue::BoundedQueue`]); engine workers drain the queue in
//! micro-batches and score them on [`incite_core::parallel`]'s panic-free
//! executor. A full queue is explicit backpressure — the client gets
//! `429` with `Retry-After` instead of an unbounded buffer. SIGTERM /
//! ctrl-c ([`signal`]) flips `/healthz` to draining, stops the acceptor,
//! lets in-flight requests finish, drains the queue, and joins the
//! workers.
//!
//! Determinism contract: scoring a text is a pure function of the loaded
//! model, and the executor writes slot `i` from input `i` alone, so served
//! scores are byte-identical to offline [`incite_core::ScoringEngine`]
//! output at any `--threads` value and under any request interleaving.

pub mod admission;
pub mod chaos;
pub mod client;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod server;
pub mod signal;
mod worker;

pub use server::{DrainReport, Server, ServerHandle};

use admission::{validate_quotas, TenantQuota};
use incite_core::FailpointRegistry;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Errors from booting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        addr: String,
        source: std::io::Error,
    },
    /// The PII extractor (for `/v1/redact`) failed to compile.
    Pii(String),
    /// A configuration value is unusable.
    Config(String),
    /// The boot model could not be loaded from its run directory.
    Model(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Pii(detail) => write!(f, "PII extractor failed to build: {detail}"),
            ServeError::Config(detail) => write!(f, "invalid serve configuration: {detail}"),
            ServeError::Model(detail) => write!(f, "cannot load serving model: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Server configuration; every field has a CLI flag or a safe default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Intra-batch scoring parallelism (threads per `map_indexed` pass).
    pub threads: usize,
    /// Bounded queue capacity; a full queue rejects with 429.
    pub queue_depth: usize,
    /// Maximum jobs drained into one micro-batch.
    pub max_batch: usize,
    /// Engine worker loops draining the queue.
    pub workers: usize,
    /// Per-request deadline: jobs older than this when a worker picks
    /// them up are expired with 504 instead of scored.
    pub deadline: Duration,
    /// Tenant quotas for fair-share admission control. Empty (the
    /// default) means open mode: everything is admitted as `default`.
    pub tenants: Vec<TenantQuota>,
    /// Request journal path; `None` (the default) disables journaling.
    pub journal: Option<PathBuf>,
    /// Per-connection I/O deadline: a request whose head or body is still
    /// dribbling in past this window is cut off with 504 (anti-slow-loris).
    pub io_window: Duration,
    /// Chaos failpoints to arm at the serve sites; inert without the
    /// `failpoints` cargo feature.
    pub failpoints: FailpointRegistry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_depth: 256,
            max_batch: 64,
            workers: 1,
            deadline: Duration::from_secs(10),
            tenants: Vec::new(),
            journal: None,
            io_window: Duration::from_secs(10),
            failpoints: FailpointRegistry::new(),
        }
    }
}

impl ServeConfig {
    /// Validates field ranges that would otherwise dead-lock the engine
    /// (`max_batch == 0`, `workers == 0`). A `queue_depth` of 0 is legal:
    /// it makes every enqueue a backpressure rejection, which the tests
    /// use to pin the 429 path.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be at least 1".into()));
        }
        if self.deadline.is_zero() {
            return Err(ServeError::Config("deadline must be non-zero".into()));
        }
        if self.io_window.is_zero() {
            return Err(ServeError::Config("io_window must be non-zero".into()));
        }
        validate_quotas(&self.tenants).map_err(|detail| ServeError::Config(detail.to_string()))?;
        Ok(())
    }
}
