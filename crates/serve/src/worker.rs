//! The inference engine loop: workers drain the bounded queue in
//! micro-batches and score them on the panic-free parallel executor.
//!
//! Batching happens naturally under load: while a worker scores, new
//! jobs pile up in the queue, and the next `pop_batch` takes them all
//! (up to `max_batch`) in one featurize+spmv pass. Each job's texts keep
//! their queue position inside the flattened batch, and the executor
//! writes slot `i` from text `i` alone, so per-text scores are
//! bit-identical to `classifier.score(text)` no matter how requests are
//! batched or how many threads score them.
//!
//! **Generation discipline:** each batch snapshots the model registry
//! exactly once and scores every text in the batch against that snapshot.
//! A hot swap that lands mid-batch affects only *later* batches, so a
//! response can never mix generations, and the generation tag it carries
//! is exact. The snapshot (with its verified model hash) also stamps the
//! journal record, which is what lets `incite replay` re-score against
//! the right weights.

use crate::chaos;
use crate::journal::JournalRecord;
use crate::queue::PopBatch;
use crate::registry::ModelGeneration;
use crate::server::ServerState;
use incite_core::ScoringEngine;
use std::sync::mpsc::{Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `/v1/score` request in the queue.
pub(crate) struct ScoreJob {
    /// The documents of this request (1 for single-doc, n for batch).
    pub texts: Vec<String>,
    /// When the job entered the queue; deadlines count from here.
    pub enqueued: Instant,
    /// The per-request deadline.
    pub deadline: Duration,
    /// Server-assigned sequence number (journal identity).
    pub seq: u64,
    /// Tenant the request was admitted under.
    pub tenant: String,
    /// Rendezvous back to the connection handler (capacity 1).
    pub reply: SyncSender<Reply>,
}

/// What the engine sends back for a job.
pub(crate) enum Reply {
    /// One score per input text, in order, plus the generation snapshot
    /// every text was scored against.
    Scores {
        scores: Vec<f32>,
        model: Arc<ModelGeneration>,
    },
    /// The job sat in the queue past its deadline; it was not scored.
    Expired,
    /// The scoring pass failed (a worker panic surfaced as an error).
    Failed(String),
}

/// How long an idle worker waits before re-checking the queue.
const POLL: Duration = Duration::from_millis(50);

/// The worker loop: runs until the queue is closed and drained.
///
/// `journal` is this worker's own sender clone; it drops when the worker
/// exits, and once every worker (and the spawner) has dropped theirs the
/// journal thread drains and shuts down.
pub(crate) fn run(state: &ServerState, journal: Option<Sender<JournalRecord>>) {
    loop {
        match state.queue.pop_batch(state.config.max_batch, POLL) {
            PopBatch::Idle => continue,
            PopBatch::Drained => break,
            PopBatch::Items(jobs) => score_batch(state, jobs, journal.as_ref()),
        }
    }
}

fn score_batch(state: &ServerState, jobs: Vec<ScoreJob>, journal: Option<&Sender<JournalRecord>>) {
    use std::sync::atomic::Ordering;

    // Deadline triage before paying for featurization: a job that sat in
    // the queue past its deadline gets 504, not a late score.
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.enqueued.elapsed() > job.deadline {
            state
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.try_send(Reply::Expired);
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    if state.chaos.trip(chaos::WORKER_FAULT) {
        // The injected equivalent of an engine panic: the batch fails
        // typed (500), nothing is scored or journaled, and the worker
        // loop survives to serve the next batch.
        state.metrics.worker_errors.fetch_add(1, Ordering::Relaxed);
        for job in live {
            let _ = job
                .reply
                .try_send(Reply::Failed("injected worker fault".to_string()));
        }
        return;
    }

    // One registry snapshot for the whole batch: every text below scores
    // against these weights, whatever a concurrent swap does.
    let model = state.registry.current();

    let texts: Vec<&str> = live
        .iter()
        .flat_map(|job| job.texts.iter().map(String::as_str))
        .collect();
    state.metrics.observe_batch(texts.len());

    match ScoringEngine::score_texts(&model.classifier, &texts, state.config.threads) {
        Ok(scores) => {
            let mut cursor = 0;
            for job in live {
                let end = cursor + job.texts.len();
                let job_scores = &scores[cursor..end];
                // A handler that gave up waiting has dropped its receiver;
                // ignore the send failure and move on.
                let _ = job.reply.try_send(Reply::Scores {
                    scores: job_scores.to_vec(),
                    model: Arc::clone(&model),
                });
                if let Some(journal) = journal {
                    let _ = journal.send(JournalRecord {
                        seq: job.seq,
                        generation: model.generation,
                        model_hash: model.model_hash.clone(),
                        run_dir: model.run_dir.clone(),
                        tenant: job.tenant,
                        texts: job.texts,
                        bits: job_scores.iter().map(|s| s.to_bits()).collect(),
                    });
                }
                cursor = end;
            }
        }
        Err(e) => {
            state.metrics.worker_errors.fetch_add(1, Ordering::Relaxed);
            // The error-kind descriptor is static by construction; the
            // full Display (which embeds the panic payload) must not
            // reach a response body (INC013).
            let msg = e.kind().to_string();
            for job in live {
                let _ = job.reply.try_send(Reply::Failed(msg.clone()));
            }
        }
    }
}
