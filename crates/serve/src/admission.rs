//! Fair-share admission control: per-tenant token buckets in front of the
//! bounded queue.
//!
//! Every scoring request is attributed to a tenant via its `x-api-key`
//! header and charged one token from that tenant's bucket. Buckets refill
//! continuously at a configured per-second rate up to a burst capacity,
//! using integer milli-tokens so refill arithmetic is exact and the
//! rejection decision is deterministic for a given elapsed time. A drained
//! bucket yields a typed rejection carrying a `Retry-After` hint computed
//! from the actual token deficit — clients learn exactly when the next
//! token lands instead of guessing.
//!
//! With no tenants configured the controller runs in **open mode**: every
//! request is admitted and counted under the implicit `default` tenant, so
//! single-operator deployments (and every pre-v2 test and benchmark) see
//! no behavior change.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const MILLI: u64 = 1_000;
/// `Retry-After` hints are clamped to this many seconds.
const MAX_RETRY_AFTER_SECS: u64 = 3_600;

/// One tenant's quota, as configured (CLI `--tenants` file or
/// `ServeConfig::tenants`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TenantQuota {
    /// Tenant name as it appears in metrics; must be unique.
    pub name: String,
    /// The `x-api-key` value that selects this tenant; must be unique.
    pub key: String,
    /// Burst capacity in tokens (one token per request); must be >= 1.
    pub capacity: u32,
    /// Steady-state refill rate, tokens per second; must be >= 1.
    pub refill_per_sec: u32,
}

/// The admission decision for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// Charged one token; `tenant` is the attributed name for metrics and
    /// the journal.
    Granted { tenant: String },
    /// The tenant's bucket is empty; reject with `Retry-After: seconds`.
    RetryAfter { tenant: String, seconds: u64 },
    /// Tenants are configured but the presented key matches none (401).
    UnknownKey,
}

#[derive(Debug)]
struct Bucket {
    /// Current fill in milli-tokens.
    tokens_milli: u64,
    /// Last refill instant.
    last: Instant,
}

#[derive(Debug)]
struct Tenant {
    quota: TenantQuota,
    bucket: Mutex<Bucket>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
}

/// Per-tenant counters as rendered into `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    pub name: String,
    pub admitted: u64,
    pub rejected: u64,
    pub shed: u64,
}

/// The admission controller; one per server, shared via `ServerState`.
#[derive(Debug)]
pub struct AdmissionControl {
    /// Tenants in declaration order (stable metrics ordering).
    tenants: Vec<Tenant>,
    /// `x-api-key` value -> index into `tenants`.
    by_key: BTreeMap<String, usize>,
    /// Open-mode counters for the implicit `default` tenant.
    open_admitted: AtomicU64,
    open_shed: AtomicU64,
}

impl AdmissionControl {
    /// Builds the controller. An empty quota list means open mode.
    /// Buckets start full, booted `now`.
    pub fn new(quotas: Vec<TenantQuota>, now: Instant) -> Self {
        let mut by_key = BTreeMap::new();
        let mut tenants = Vec::with_capacity(quotas.len());
        for quota in quotas {
            by_key.insert(quota.key.clone(), tenants.len());
            let full = u64::from(quota.capacity) * MILLI;
            tenants.push(Tenant {
                quota,
                bucket: Mutex::new(Bucket {
                    tokens_milli: full,
                    last: now,
                }),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            });
        }
        AdmissionControl {
            tenants,
            by_key,
            open_admitted: AtomicU64::new(0),
            open_shed: AtomicU64::new(0),
        }
    }

    /// Whether any tenant quotas are configured.
    pub fn enforcing(&self) -> bool {
        !self.tenants.is_empty()
    }

    /// Decides admission for a request presenting `api_key`, charging one
    /// token on grant. Deterministic given `now`: the same key, bucket
    /// state, and instant always produce the same decision and hint.
    pub fn admit(&self, api_key: Option<&str>, now: Instant) -> Admit {
        if self.tenants.is_empty() {
            self.open_admitted.fetch_add(1, Ordering::Relaxed);
            return Admit::Granted {
                tenant: "default".to_string(),
            };
        }
        let Some(&idx) = api_key.and_then(|k| self.by_key.get(k)) else {
            return Admit::UnknownKey;
        };
        let tenant = &self.tenants[idx];
        let capacity_milli = u64::from(tenant.quota.capacity) * MILLI;
        let refill_milli_per_sec = u64::from(tenant.quota.refill_per_sec) * MILLI;
        let mut bucket = match tenant.bucket.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Refill for the elapsed interval, saturating at capacity. Pure
        // integer arithmetic under the lock; no I/O, no waiting (INC009).
        let elapsed_ms = now
            .duration_since(bucket.last)
            .as_millis()
            .min(u128::from(u64::MAX)) as u64;
        let refill = (elapsed_ms / MILLI) * refill_milli_per_sec
            + (elapsed_ms % MILLI) * refill_milli_per_sec / MILLI;
        bucket.tokens_milli = bucket
            .tokens_milli
            .saturating_add(refill)
            .min(capacity_milli);
        bucket.last = now;
        if bucket.tokens_milli >= MILLI {
            bucket.tokens_milli -= MILLI;
            drop(bucket);
            tenant.admitted.fetch_add(1, Ordering::Relaxed);
            return Admit::Granted {
                tenant: tenant.quota.name.clone(),
            };
        }
        // Hint: whole seconds until the deficit refills, at least 1.
        let deficit_milli = MILLI - bucket.tokens_milli;
        drop(bucket);
        let seconds = deficit_milli
            .div_ceil(refill_milli_per_sec.max(1))
            .clamp(1, MAX_RETRY_AFTER_SECS);
        tenant.rejected.fetch_add(1, Ordering::Relaxed);
        Admit::RetryAfter {
            tenant: tenant.quota.name.clone(),
            seconds,
        }
    }

    /// Records a degraded-mode shed against `tenant` (charged tokens are
    /// not refunded; shedding is a server-side failure, not a quota event).
    pub fn record_shed(&self, tenant: &str) {
        if let Some(t) = self.tenants.iter().find(|t| t.quota.name == tenant) {
            t.shed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.open_shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot for `/metrics`, in declaration order; open mode
    /// reports the implicit `default` tenant.
    pub fn snapshot(&self) -> Vec<TenantCounters> {
        if self.tenants.is_empty() {
            return vec![TenantCounters {
                name: "default".to_string(),
                admitted: self.open_admitted.load(Ordering::Relaxed),
                rejected: 0,
                shed: self.open_shed.load(Ordering::Relaxed),
            }];
        }
        let mut out = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            out.push(TenantCounters {
                name: t.quota.name.clone(),
                admitted: t.admitted.load(Ordering::Relaxed),
                rejected: t.rejected.load(Ordering::Relaxed),
                shed: t.shed.load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// Validates a tenant quota list: unique names, unique keys, non-zero
/// capacity and refill, non-empty name/key, and no `default` collision.
pub fn validate_quotas(quotas: &[TenantQuota]) -> Result<(), &'static str> {
    let mut names = BTreeMap::new();
    let mut keys = BTreeMap::new();
    for (i, q) in quotas.iter().enumerate() {
        if q.name.is_empty() {
            return Err("tenant name must be non-empty");
        }
        if q.name == "default" {
            return Err("tenant name `default` is reserved for open mode");
        }
        if q.key.is_empty() {
            return Err("tenant key must be non-empty");
        }
        if q.capacity == 0 {
            return Err("tenant capacity must be >= 1");
        }
        if q.refill_per_sec == 0 {
            return Err("tenant refill_per_sec must be >= 1");
        }
        if names.insert(q.name.clone(), i).is_some() {
            return Err("tenant names must be unique");
        }
        if keys.insert(q.key.clone(), i).is_some() {
            return Err("tenant keys must be unique");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quotas() -> Vec<TenantQuota> {
        vec![
            TenantQuota {
                name: "alpha".to_string(),
                key: "alpha-key".to_string(),
                capacity: 2,
                refill_per_sec: 1,
            },
            TenantQuota {
                name: "beta".to_string(),
                key: "beta-key".to_string(),
                capacity: 5,
                refill_per_sec: 2,
            },
        ]
    }

    #[test]
    fn open_mode_admits_everything_under_default() {
        let ac = AdmissionControl::new(Vec::new(), Instant::now());
        assert!(!ac.enforcing());
        let now = Instant::now();
        for _ in 0..100 {
            assert_eq!(
                ac.admit(None, now),
                Admit::Granted {
                    tenant: "default".to_string()
                }
            );
        }
        let snap = ac.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "default");
        assert_eq!(snap[0].admitted, 100);
    }

    #[test]
    fn bucket_drains_then_rejects_with_exact_hint() {
        let boot = Instant::now();
        let ac = AdmissionControl::new(quotas(), boot);
        assert!(ac.enforcing());
        // Capacity 2: two grants, then a rejection at the same instant.
        for _ in 0..2 {
            assert!(matches!(
                ac.admit(Some("alpha-key"), boot),
                Admit::Granted { .. }
            ));
        }
        match ac.admit(Some("alpha-key"), boot) {
            Admit::RetryAfter { tenant, seconds } => {
                assert_eq!(tenant, "alpha");
                // Fully drained at refill 1/s: the next token is 1s out.
                assert_eq!(seconds, 1);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Beta's bucket is independent.
        assert!(matches!(
            ac.admit(Some("beta-key"), boot),
            Admit::Granted { .. }
        ));
        let snap = ac.snapshot();
        assert_eq!(snap[0].admitted, 2);
        assert_eq!(snap[0].rejected, 1);
        assert_eq!(snap[1].admitted, 1);
    }

    #[test]
    fn refill_restores_tokens_deterministically() {
        let boot = Instant::now();
        let ac = AdmissionControl::new(quotas(), boot);
        for _ in 0..2 {
            assert!(matches!(
                ac.admit(Some("alpha-key"), boot),
                Admit::Granted { .. }
            ));
        }
        assert!(matches!(
            ac.admit(Some("alpha-key"), boot),
            Admit::RetryAfter { .. }
        ));
        // 1500ms later at 1 token/s: 1.5 tokens refilled -> one grant,
        // then a 500ms deficit rounds up to a 1s hint.
        let later = boot + Duration::from_millis(1_500);
        assert!(matches!(
            ac.admit(Some("alpha-key"), later),
            Admit::Granted { .. }
        ));
        match ac.admit(Some("alpha-key"), later) {
            Admit::RetryAfter { seconds, .. } => assert_eq!(seconds, 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Refill saturates at capacity: after a long idle spell the burst
        // is capacity, not elapsed * rate.
        let much_later = boot + Duration::from_secs(3_600);
        let mut grants = 0;
        while matches!(
            ac.admit(Some("alpha-key"), much_later),
            Admit::Granted { .. }
        ) {
            grants += 1;
            assert!(grants <= 2, "burst exceeded capacity");
        }
        assert_eq!(grants, 2);
    }

    #[test]
    fn unknown_or_missing_key_is_rejected_when_enforcing() {
        let boot = Instant::now();
        let ac = AdmissionControl::new(quotas(), boot);
        assert_eq!(ac.admit(None, boot), Admit::UnknownKey);
        assert_eq!(ac.admit(Some("wrong"), boot), Admit::UnknownKey);
    }

    #[test]
    fn shed_counts_against_the_named_tenant() {
        let ac = AdmissionControl::new(quotas(), Instant::now());
        ac.record_shed("beta");
        ac.record_shed("beta");
        let snap = ac.snapshot();
        assert_eq!(snap[1].shed, 2);
        assert_eq!(snap[0].shed, 0);
    }

    #[test]
    fn quota_validation_catches_every_misconfiguration() {
        assert!(validate_quotas(&quotas()).is_ok());
        assert!(validate_quotas(&[]).is_ok());
        let mut dup_name = quotas();
        dup_name[1].name = "alpha".to_string();
        assert!(validate_quotas(&dup_name).is_err());
        let mut dup_key = quotas();
        dup_key[1].key = "alpha-key".to_string();
        assert!(validate_quotas(&dup_key).is_err());
        let mut zero_cap = quotas();
        zero_cap[0].capacity = 0;
        assert!(validate_quotas(&zero_cap).is_err());
        let mut zero_refill = quotas();
        zero_refill[0].refill_per_sec = 0;
        assert!(validate_quotas(&zero_refill).is_err());
        let mut reserved = quotas();
        reserved[0].name = "default".to_string();
        assert!(validate_quotas(&reserved).is_err());
        let mut empty_key = quotas();
        empty_key[0].key = String::new();
        assert!(validate_quotas(&empty_key).is_err());
    }
}
