//! Live service metrics: atomic counters plus a log₂-bucket latency
//! histogram, rendered in the Prometheus text exposition format on
//! `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering): recording
//! a request costs a handful of atomic increments, and a scrape reads a
//! consistent-enough snapshot without stalling the request path. The
//! histogram trades precision for footprint — bucket *i* counts latencies
//! in `[2^i, 2^(i+1))` microseconds, so quantiles are upper bounds within
//! a factor of two — which is plenty to spot a queue backing up. The
//! `serve_latency` BENCH experiment measures exact client-side
//! percentiles separately.

use crate::admission::TenantCounters;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: `2^39` µs ≈ 6.4 days caps the top bucket.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1), in µs.
    /// Returns 0 with no observations.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << idx.min(63);
            }
        }
        1u64 << (BUCKETS - 1)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

/// Point-in-time server state rendered alongside the counters. The
/// server assembles one per scrape; nothing here is shared or atomic.
#[derive(Debug, Default)]
pub struct Gauges {
    pub queue_depth: usize,
    pub draining: bool,
    /// Degraded mode: batch requests are being shed to protect liveness.
    pub degraded: bool,
    /// Active model generation (1 = boot model).
    pub model_generation: u64,
    /// Successful hot swaps over the server lifetime.
    pub swaps_total: u64,
    /// Refused or aborted swaps (load failure, injected fault).
    pub swap_failures: u64,
    /// Records durably appended to the request journal.
    pub journal_records: u64,
    /// Journal append failures (records dropped, scoring unaffected).
    pub journal_errors: u64,
    /// Per-tenant admission counters, declaration order.
    pub tenants: Vec<TenantCounters>,
}

/// All service counters; shared behind one `Arc` by every thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests answered, any endpoint and status.
    pub requests_total: AtomicU64,
    /// `POST /v1/score` requests accepted into the queue.
    pub score_requests: AtomicU64,
    /// `POST /v1/redact` requests served.
    pub redact_requests: AtomicU64,
    /// Requests rejected with 429 because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Jobs expired past their deadline (504).
    pub deadline_expired: AtomicU64,
    /// Batches that failed in the scoring engine (500).
    pub worker_errors: AtomicU64,
    /// Batch requests shed in degraded mode (503 before the queue).
    pub shed_degraded: AtomicU64,
    /// Documents scored by the engine workers.
    pub documents_scored: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Largest micro-batch seen (documents).
    pub max_batch_docs: AtomicU64,
    /// End-to-end request latency (parse start → response written).
    pub latency: LatencyHistogram,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn observe_batch(&self, docs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.documents_scored
            .fetch_add(docs as u64, Ordering::Relaxed);
        self.max_batch_docs
            .fetch_max(docs as u64, Ordering::Relaxed);
    }

    /// Renders the text exposition; `gauges` carries the point-in-time
    /// state owned by the server (queue, drain/degrade flags, model
    /// registry, journal, per-tenant admission).
    pub fn render(&self, gauges: &Gauges) -> String {
        let mut s = String::with_capacity(2048);
        let counter = |s: &mut String, name: &str, v: u64| {
            let _ = writeln!(s, "incite_serve_{name} {v}");
        };
        counter(
            &mut s,
            "requests_total",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "score_requests_total",
            self.score_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "redact_requests_total",
            self.redact_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "rejected_overload_total",
            self.rejected_overload.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "deadline_expired_total",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "worker_errors_total",
            self.worker_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "shed_degraded_total",
            self.shed_degraded.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "documents_scored_total",
            self.documents_scored.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "batches_total",
            self.batches.load(Ordering::Relaxed),
        );
        counter(
            &mut s,
            "batch_docs_max",
            self.max_batch_docs.load(Ordering::Relaxed),
        );
        counter(&mut s, "queue_depth", gauges.queue_depth as u64);
        counter(&mut s, "draining", u64::from(gauges.draining));
        counter(&mut s, "degraded", u64::from(gauges.degraded));
        counter(&mut s, "model_generation", gauges.model_generation);
        counter(&mut s, "swaps_total", gauges.swaps_total);
        counter(&mut s, "swap_failures_total", gauges.swap_failures);
        counter(&mut s, "journal_records_total", gauges.journal_records);
        counter(&mut s, "journal_errors_total", gauges.journal_errors);
        for t in &gauges.tenants {
            let _ = writeln!(
                s,
                "incite_serve_tenant_admitted_total{{tenant=\"{}\"}} {}",
                t.name, t.admitted
            );
            let _ = writeln!(
                s,
                "incite_serve_tenant_rejected_total{{tenant=\"{}\"}} {}",
                t.name, t.rejected
            );
            let _ = writeln!(
                s,
                "incite_serve_tenant_shed_total{{tenant=\"{}\"}} {}",
                t.name, t.shed
            );
        }
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(
                s,
                "incite_serve_latency_seconds{{quantile=\"{label}\"}} {:.6}",
                self.latency.quantile_upper_us(q) as f64 / 1e6
            );
        }
        let _ = writeln!(
            s,
            "incite_serve_latency_seconds_sum {:.6}",
            self.latency.sum_us() as f64 / 1e6
        );
        counter(&mut s, "latency_seconds_count", self.latency.count());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_log2_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_us(0.5), 0, "empty histogram");
        // 90 fast requests (~100us) and 10 slow ones (~50ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(50_000);
        }
        let p50 = h.quantile_upper_us(0.5);
        assert!((100..=256).contains(&p50), "p50 bound {p50}");
        let p99 = h.quantile_upper_us(0.99);
        assert!((50_000..=131_072).contains(&p99), "p99 bound {p99}");
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 90 * 100 + 10 * 50_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_upper_us(0.01) >= 1);
        assert!(h.quantile_upper_us(1.0) >= 1u64 << 39);
    }

    #[test]
    fn render_contains_every_series() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.rejected_overload.fetch_add(1, Ordering::Relaxed);
        m.shed_degraded.fetch_add(2, Ordering::Relaxed);
        m.observe_batch(5);
        m.latency.record(250);
        let gauges = Gauges {
            queue_depth: 2,
            draining: true,
            degraded: true,
            model_generation: 4,
            swaps_total: 3,
            swap_failures: 1,
            journal_records: 7,
            journal_errors: 0,
            tenants: vec![TenantCounters {
                name: "alpha".to_string(),
                admitted: 9,
                rejected: 2,
                shed: 1,
            }],
        };
        let text = m.render(&gauges);
        for series in [
            "incite_serve_requests_total 3",
            "incite_serve_rejected_overload_total 1",
            "incite_serve_shed_degraded_total 2",
            "incite_serve_documents_scored_total 5",
            "incite_serve_batches_total 1",
            "incite_serve_batch_docs_max 5",
            "incite_serve_queue_depth 2",
            "incite_serve_draining 1",
            "incite_serve_degraded 1",
            "incite_serve_model_generation 4",
            "incite_serve_swaps_total 3",
            "incite_serve_swap_failures_total 1",
            "incite_serve_journal_records_total 7",
            "incite_serve_journal_errors_total 0",
            "incite_serve_tenant_admitted_total{tenant=\"alpha\"} 9",
            "incite_serve_tenant_rejected_total{tenant=\"alpha\"} 2",
            "incite_serve_tenant_shed_total{tenant=\"alpha\"} 1",
            "incite_serve_latency_seconds{quantile=\"0.99\"}",
            "incite_serve_latency_seconds_count 1",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
    }
}
