//! The versioned model registry: atomic hot-swap of the serving
//! classifier with score provenance.
//!
//! The active model lives behind one `Mutex<Arc<ModelGeneration>>`. The
//! lock is held only to clone or replace the `Arc` — never across a load,
//! a warmup, or any I/O — so scoring workers snapshot the current
//! generation in O(1) and a swap can never stall the request path. Each
//! micro-batch is scored entirely against one snapshot, which is what
//! makes the "no mixed generations within a response" guarantee hold: a
//! response's texts all see the same weights, and the response reports
//! exactly which generation (and model content hash) produced its bits.
//!
//! A swap loads and verifies the new run directory *outside* the lock
//! (reusing the checkpoint manifest + section hash verification), warms
//! the new classifier, and only then flips the `Arc`. A failed load — or
//! an injected `serve-mid-swap` fault between load and flip — leaves the
//! old generation serving untouched.

use crate::chaos::{self, ChaosRegistry};
use incite_core::{load_latest_classifier_with_hash, CheckpointError};
use incite_ml::TextClassifier;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable generation of the serving model.
pub struct ModelGeneration {
    /// The weights every batch of this generation scores against.
    pub classifier: TextClassifier,
    /// Monotonic generation number; the boot model is generation 1.
    pub generation: u64,
    /// The model section's verified FNV-64 content hash (empty when the
    /// server was booted from an in-memory classifier, e.g. in tests).
    pub model_hash: String,
    /// The run directory the generation was loaded from (empty for
    /// in-memory boots).
    pub run_dir: String,
}

/// Why a swap was refused. Every variant renders as a static description:
/// the requested run-dir string arrives in a client request body, so it
/// must never echo into a response or a log line (INC011).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// Another swap is still in flight (409).
    InProgress,
    /// The run directory failed to load or verify; the static kind names
    /// which checkpoint refusal fired (422).
    Load(&'static str),
    /// The `serve-mid-swap` chaos site fired between load and flip (503).
    Injected,
}

impl SwapError {
    /// The static wire description.
    pub fn describe(&self) -> &'static str {
        match self {
            SwapError::InProgress => "a model swap is already in progress",
            SwapError::Load(kind) => kind,
            SwapError::Injected => "swap aborted by injected fault; previous generation retained",
        }
    }
}

fn load_kind(e: &CheckpointError) -> &'static str {
    match e {
        CheckpointError::Io { .. } => "run directory is unreadable",
        CheckpointError::Corrupt { .. } => "run directory holds a corrupt checkpoint",
        CheckpointError::HashMismatch { .. } => "run directory fails hash verification",
        CheckpointError::Incompatible { .. } => "path is not a servable run directory",
    }
}

/// The registry itself; one per server, shared via `ServerState`.
pub struct ModelRegistry {
    active: Mutex<Arc<ModelGeneration>>,
    /// CAS guard: at most one swap loads at a time.
    swap_in_flight: AtomicBool,
    pub(crate) swaps_total: AtomicU64,
    pub(crate) swap_failures: AtomicU64,
}

impl ModelRegistry {
    /// A registry serving `classifier` as generation 1.
    pub fn new(classifier: TextClassifier, model_hash: String, run_dir: String) -> Self {
        ModelRegistry {
            active: Mutex::new(Arc::new(ModelGeneration {
                classifier,
                generation: 1,
                model_hash,
                run_dir,
            })),
            swap_in_flight: AtomicBool::new(false),
            swaps_total: AtomicU64::new(0),
            swap_failures: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<ModelGeneration>> {
        // The guarded value is a plain Arc; poison cannot leave it torn.
        match self.active.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Snapshot of the active generation (an `Arc` clone; O(1), and the
    /// lock is released before the caller does anything with it).
    pub fn current(&self) -> Arc<ModelGeneration> {
        Arc::clone(&self.lock())
    }

    /// The active generation number (the `/metrics` gauge).
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    /// Loads `run_dir`, verifies it through the checkpoint manifest, and
    /// atomically flips the active generation. Returns the new generation
    /// number. Serialized by a CAS flag: a concurrent swap is a typed
    /// [`SwapError::InProgress`], and any failure leaves the previous
    /// generation serving.
    pub fn swap_from_run_dir(
        &self,
        run_dir: &Path,
        chaos: &ChaosRegistry,
    ) -> Result<u64, SwapError> {
        if self
            .swap_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(SwapError::InProgress);
        }
        let result = self.load_and_flip(run_dir, chaos);
        match result {
            Ok(_) => {
                self.swaps_total.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.swap_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.swap_in_flight.store(false, Ordering::Release);
        result
    }

    fn load_and_flip(&self, run_dir: &Path, chaos: &ChaosRegistry) -> Result<u64, SwapError> {
        // Load + verify outside the lock: the old generation keeps
        // serving at full speed while the new one reads from disk.
        let (classifier, model_hash) = load_latest_classifier_with_hash(run_dir)
            .map_err(|e| SwapError::Load(load_kind(&e)))?;
        // Warm the new weights before they go live, so the first request
        // of the new generation pays no one-time cost. Scoring is pure;
        // the result is discarded.
        let _ = classifier.score("warmup: report him and make him pay");
        if chaos.trip(chaos::MID_SWAP) {
            return Err(SwapError::Injected);
        }
        let run_dir = run_dir.display().to_string();
        let mut active = self.lock();
        let generation = active.generation + 1;
        *active = Arc::new(ModelGeneration {
            classifier,
            generation,
            model_hash,
            run_dir,
        });
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_ml::{FeaturizerConfig, TrainConfig};

    fn classifier(positive: &str) -> TextClassifier {
        TextClassifier::train(
            vec![(positive, true), ("nice weather", false)],
            FeaturizerConfig::default(),
            TrainConfig::default(),
        )
    }

    #[test]
    fn boot_generation_is_one_and_snapshots_are_stable() {
        let registry = ModelRegistry::new(classifier("report him"), String::new(), String::new());
        assert_eq!(registry.generation(), 1);
        let snapshot = registry.current();
        assert_eq!(snapshot.generation, 1);
        assert!(snapshot.model_hash.is_empty());
    }

    #[test]
    fn swap_from_bad_dir_is_typed_and_keeps_the_old_generation() {
        let registry = ModelRegistry::new(classifier("report him"), String::new(), String::new());
        let chaos = ChaosRegistry::default();
        let err = registry
            .swap_from_run_dir(Path::new("/nonexistent-run-dir"), &chaos)
            .expect_err("swap from a missing dir must fail");
        assert_eq!(err, SwapError::Load("path is not a servable run directory"));
        assert_eq!(registry.generation(), 1);
        assert_eq!(registry.swap_failures.load(Ordering::Relaxed), 1);
        assert_eq!(registry.swaps_total.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn swap_errors_render_static_descriptions() {
        for e in [
            SwapError::InProgress,
            SwapError::Load("run directory is unreadable"),
            SwapError::Injected,
        ] {
            assert!(!e.describe().is_empty());
        }
    }
}
