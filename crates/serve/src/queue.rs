//! The bounded job queue between connection handlers and engine workers.
//!
//! Capacity is the backpressure contract: [`BoundedQueue::try_push`] never
//! blocks and never grows the buffer past `capacity` — a full queue is an
//! immediate [`PushError::Full`], which the HTTP layer turns into
//! `429 Retry-After`. Workers block on [`BoundedQueue::pop_batch`], which
//! drains up to `max` items in one go: under load the queue fills while
//! workers score, so batch sizes grow with pressure (micro-batching) and
//! collapse to 1 when the service is idle.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; retry later (backpressure).
    Full(T),
    /// The queue was closed for draining; no new work is accepted.
    Closed(T),
}

/// What a worker got from [`BoundedQueue::pop_batch`].
#[derive(Debug)]
pub enum PopBatch<T> {
    /// Up to `max` queued items, in arrival order.
    Items(Vec<T>),
    /// The wait timed out with nothing queued; poll again.
    Idle,
    /// The queue is closed and fully drained; the worker can exit.
    Drained,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex+Condvar MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoned lock means a panic elsewhere; the queue state itself
        // (a VecDeque and a bool) is always valid, so recover it.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueues without blocking; `Full`/`Closed` hand the item back so
    /// the caller can reply to it.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks up to `wait` for work, then drains up to `max` items.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> PopBatch<T> {
        let mut state = self.lock();
        if state.items.is_empty() && !state.closed {
            state = match self.available.wait_timeout(state, wait) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        if state.items.is_empty() {
            return if state.closed {
                PopBatch::Drained
            } else {
                PopBatch::Idle
            };
        }
        let take = state.items.len().min(max.max(1));
        PopBatch::Items(state.items.drain(..take).collect())
    }

    /// Closes the queue: future pushes fail with `Closed`, and workers
    /// drain the remaining items before seeing `Drained`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Current number of queued items (the `/metrics` gauge).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_order_and_batches() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("push");
        }
        assert_eq!(q.len(), 5);
        match q.pop_batch(3, Duration::from_millis(1)) {
            PopBatch::Items(items) => assert_eq!(items, vec![0, 1, 2]),
            other => panic!("expected items, got {other:?}"),
        }
        match q.pop_batch(64, Duration::from_millis(1)) {
            PopBatch::Items(items) => assert_eq!(items, vec![3, 4]),
            other => panic!("expected items, got {other:?}"),
        }
        assert!(matches!(
            q.pop_batch(64, Duration::from_millis(1)),
            PopBatch::Idle
        ));
    }

    #[test]
    fn capacity_is_a_hard_limit() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("push 1");
        q.try_push(2).expect("push 2");
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Zero capacity: every push is a backpressure rejection.
        let q0: BoundedQueue<u32> = BoundedQueue::new(0);
        assert!(matches!(q0.try_push(7), Err(PushError::Full(7))));
    }

    #[test]
    fn close_drains_then_reports_drained() {
        let q = BoundedQueue::new(8);
        q.try_push(1).expect("push");
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        match q.pop_batch(8, Duration::from_millis(1)) {
            PopBatch::Items(items) => assert_eq!(items, vec![1]),
            other => panic!("expected items, got {other:?}"),
        }
        assert!(matches!(
            q.pop_batch(8, Duration::from_millis(1)),
            PopBatch::Drained
        ));
    }

    #[test]
    fn close_wakes_waiters_promptly_not_at_timeout_expiry() {
        use std::time::Instant;

        // Several workers parked deep inside a 30s wait must all observe
        // close() within moments — shutdown latency is bounded by the
        // Condvar broadcast, not by the pop_batch timeout.
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let mut waiters = Vec::with_capacity(3);
        for _ in 0..3 {
            let q2 = Arc::clone(&q);
            waiters.push(std::thread::spawn(move || {
                let started = Instant::now();
                let got = q2.pop_batch(4, Duration::from_secs(30));
                (got, started.elapsed())
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        q.close();
        for waiter in waiters {
            let (got, waited) = waiter.join().expect("join");
            assert!(matches!(got, PopBatch::Drained), "got {got:?}");
            assert!(
                waited < Duration::from_secs(5),
                "waiter sat out {waited:?} of a 30s timeout after close"
            );
        }
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            // A long wait that close() must interrupt.
            q2.pop_batch(4, Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        match waiter.join().expect("join") {
            PopBatch::Drained => {}
            other => panic!("expected Drained, got {other:?}"),
        }
    }
}
