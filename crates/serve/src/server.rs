//! The server proper: acceptor, connection handlers, request routing,
//! and the graceful-drain state machine.
//!
//! Thread layout (DESIGN.md §13):
//!
//! ```text
//! acceptor ──spawns──▶ connection handlers (one thread per connection)
//!                         │  POST /v1/score → try_push ──▶ BoundedQueue
//!                         │                    (full → 429 Retry-After)
//!                         ▼                                  │ pop_batch
//!                      reply rendezvous ◀── engine workers ◀─┘
//!                                           (map_indexed, `threads` wide)
//! ```
//!
//! Drain protocol on [`ServerHandle::initiate_drain`] (SIGTERM path):
//! 1. the draining flag flips — `/healthz` turns 503, new `/v1/score`
//!    requests are refused with 503;
//! 2. the acceptor stops accepting and exits;
//! 3. connection handlers finish their in-flight request and close
//!    (idle keep-alive connections close on their next poll tick);
//! 4. the queue closes; workers drain what was already accepted and
//!    exit — accepted work is never dropped;
//! 5. [`ServerHandle::join`] collects every thread and reports totals.

use crate::admission::{AdmissionControl, Admit};
use crate::chaos::{self, ChaosRegistry};
use crate::http::{self, Received, RecvError, Request, Response};
use crate::journal::{self, JournalStats};
use crate::metrics::{Gauges, Metrics};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{ModelRegistry, SwapError};
use crate::worker::{Reply, ScoreJob};
use crate::{ServeConfig, ServeError};
use incite_core::load_latest_classifier_with_hash;
use incite_ml::TextClassifier;
use incite_pii::{redact, PiiExtractor};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum documents in one `/v1/score` or `/v1/redact` request.
pub const MAX_DOCS_PER_REQUEST: usize = 1024;

/// Connection read timeout and drain/metrics poll tick.
///
/// The acceptor itself does NOT poll: it blocks in `accept` and is woken
/// for drains by a loopback connection from [`ServerHandle::initiate_drain`].
/// (A 25 ms accept-poll sleep here used to put a full tick on the p99 of
/// every fresh connection; see BENCH_serve_latency.)
const POLL: Duration = Duration::from_millis(25);

/// How long `join` waits for open connections to finish after a drain
/// begins before giving up on them (they hold no queued work by then).
const CONNECTION_DRAIN_WINDOW: Duration = Duration::from_secs(15);

/// Consecutive queue-full rejections before the server enters degraded
/// mode (batch requests shed, single-doc scoring and health kept alive).
/// One successful enqueue resets the strike counter and exits the mode.
const DEGRADE_AFTER: u32 = 8;

/// Shared server state; one `Arc` across all threads.
pub struct ServerState {
    pub(crate) registry: ModelRegistry,
    pub(crate) admission: AdmissionControl,
    pub(crate) chaos: ChaosRegistry,
    pub(crate) journal_stats: Arc<JournalStats>,
    pub(crate) extractor: PiiExtractor,
    pub(crate) queue: BoundedQueue<ScoreJob>,
    pub(crate) metrics: Metrics,
    pub(crate) config: ServeConfig,
    draining: AtomicBool,
    open_connections: AtomicUsize,
    /// Next journal sequence number to assign.
    seq: AtomicU64,
    /// Consecutive queue-full rejections (degraded-mode trigger).
    full_strikes: AtomicU32,
}

impl ServerState {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Degraded mode: the queue has been saturated for [`DEGRADE_AFTER`]
    /// consecutive enqueue attempts.
    pub(crate) fn degraded(&self) -> bool {
        self.full_strikes.load(Ordering::Acquire) >= DEGRADE_AFTER
    }
}

/// What the drain left behind; returned by [`ServerHandle::join`].
#[derive(Debug, Default, Clone, serde::Serialize)]
pub struct DrainReport {
    /// Requests answered over the server's lifetime.
    pub requests_total: u64,
    /// Documents scored by the engine workers.
    pub documents_scored: u64,
    /// Requests refused with 429 (queue full).
    pub rejected_overload: u64,
    /// Connections still open when the drain window closed.
    pub stuck_connections: usize,
    /// Server threads that terminated by panic (always 0 in practice;
    /// the scoring path is panic-free by construction).
    pub panicked_threads: usize,
}

/// The entry point: binds, spawns, serves.
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the engine workers and the acceptor,
    /// and returns a handle. Fails without side effects: nothing is
    /// spawned unless the bind and the PII extractor both succeed.
    ///
    /// The classifier becomes model generation 1 with no provenance
    /// (empty hash and run dir); use [`Server::start_from_run_dir`] when
    /// the model comes from a checkpointed run directory so responses and
    /// journal records carry a verifiable model hash.
    pub fn start(
        classifier: TextClassifier,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        Server::start_with_registry(
            ModelRegistry::new(classifier, String::new(), String::new()),
            config,
        )
    }

    /// [`Server::start`], but the boot model is loaded (and its manifest
    /// hash verified) from a checkpointed run directory — the registry
    /// path `incite serve --run-dir` uses. Hot swaps via
    /// `POST /v1/admin/swap` load later generations the same way.
    pub fn start_from_run_dir(
        run_dir: &Path,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let (classifier, model_hash) = load_latest_classifier_with_hash(run_dir)
            .map_err(|e| ServeError::Model(e.to_string()))?;
        Server::start_with_registry(
            ModelRegistry::new(classifier, model_hash, run_dir.display().to_string()),
            config,
        )
    }

    fn start_with_registry(
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        config.validate()?;
        let extractor = PiiExtractor::try_new().map_err(|e| ServeError::Pii(e.to_string()))?;
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let journal_stats = Arc::new(JournalStats::default());
        let chaos = ChaosRegistry::from_registry(config.failpoints.clone());
        // Open the journal before spawning anything: an unwritable path
        // is a boot failure, not a silent runtime drop. The chaos registry
        // is built first so the journal-open failpoint covers this open.
        let journal_writer = match &config.journal {
            None => None,
            Some(path) => Some(
                journal::spawn(path, Arc::clone(&journal_stats), &chaos)
                    .map_err(|e| ServeError::Config(format!("cannot open journal: {e}")))?,
            ),
        };
        let admission = AdmissionControl::new(config.tenants.clone(), Instant::now());
        let state = Arc::new(ServerState {
            registry,
            admission,
            chaos,
            journal_stats,
            extractor,
            queue: BoundedQueue::new(config.queue_depth),
            metrics: Metrics::new(),
            config,
            draining: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            full_strikes: AtomicU32::new(0),
        });

        // Each worker carries its own journal-sender clone; the spawner's
        // originals drop at the end of this scope, so the journal thread's
        // channel disconnects exactly when the last worker exits.
        let (journal_tx, journal_thread) = match journal_writer {
            Some((tx, handle)) => (Some(tx), Some(handle)),
            None => (None, None),
        };
        let workers: Vec<JoinHandle<()>> = (0..state.config.workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let journal_tx = journal_tx.clone();
                std::thread::Builder::new()
                    .name(format!("incite-serve-worker-{i}"))
                    .spawn(move || crate::worker::run(&state, journal_tx))
            })
            .collect::<Result<_, _>>()
            .map_err(|source| ServeError::Bind {
                addr: addr.to_string(),
                source,
            })?;
        drop(journal_tx);

        // Pre-warm both serving paths before accepting traffic, so the
        // first real request never pays one-time costs (allocator pools,
        // lazy regex DFA caches, featurizer scratch). The scores are
        // discarded; scoring is pure, so warmup cannot perturb results.
        let warmup: Vec<&str> =
            vec!["warmup: report him and make him pay"; state.config.threads.max(1)];
        let boot_model = state.registry.current();
        let _ = incite_core::ScoringEngine::score_texts(
            &boot_model.classifier,
            &warmup,
            state.config.threads,
        );
        drop(boot_model);
        let _ = redact(&state.extractor, "warmup: call 212-555-0101, mail a@b.com");

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("incite-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &state))
                .map_err(|source| ServeError::Bind {
                    addr: addr.to_string(),
                    source,
                })?
        };

        Ok(ServerHandle {
            addr,
            state,
            acceptor,
            workers,
            journal_thread,
        })
    }
}

/// A running server: the owner can inspect, drain, and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    journal_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips the draining flag: `/healthz` goes 503, new scoring work is
    /// refused, the acceptor winds down. Idempotent; does not block.
    pub fn initiate_drain(&self) {
        self.state.draining.store(true, Ordering::Release);
        // The acceptor blocks in `accept` (no poll tick); a loopback
        // connection wakes it so it can observe the flag and exit. The
        // flag is already set, so the woken acceptor drops the stream
        // without serving it. Failure is fine: it means the listener is
        // already gone.
        let _ = TcpStream::connect(self.addr);
    }

    /// Drains and joins everything; see the module docs for the order.
    pub fn join(self) -> DrainReport {
        self.initiate_drain();
        let mut report = DrainReport::default();
        if self.acceptor.join().is_err() {
            report.panicked_threads += 1;
        }
        // In-flight connections finish their current request and close;
        // give them a bounded window before abandoning the stragglers.
        let window = Instant::now() + CONNECTION_DRAIN_WINDOW;
        while self.state.open_connections.load(Ordering::Acquire) > 0 && Instant::now() < window {
            std::thread::sleep(POLL);
        }
        report.stuck_connections = self.state.open_connections.load(Ordering::Acquire);
        // Only now close the queue: every job a handler managed to push
        // gets scored before the workers exit.
        self.state.queue.close();
        for worker in self.workers {
            if worker.join().is_err() {
                report.panicked_threads += 1;
            }
        }
        // Workers are gone, so every journal sender has dropped: the
        // journal thread drains its buffered records FIFO and exits. Only
        // then is the journal complete on disk.
        if let Some(journal) = self.journal_thread {
            if journal.join().is_err() {
                report.panicked_threads += 1;
            }
        }
        report.requests_total = self.state.metrics.requests_total.load(Ordering::Relaxed);
        report.documents_scored = self.state.metrics.documents_scored.load(Ordering::Relaxed);
        report.rejected_overload = self.state.metrics.rejected_overload.load(Ordering::Relaxed);
        report
    }

    /// Serves until `stop` flips (the signal flag), then drains and
    /// joins. This is the `incite serve` main loop.
    pub fn run_until(self, stop: &AtomicBool) -> DrainReport {
        while !stop.load(Ordering::Acquire) && !self.state.draining() {
            std::thread::sleep(POLL);
        }
        self.join()
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A drain may have begun while blocked in accept (the
                // wake-up stream from `initiate_drain` lands here); drop
                // the connection unserved and exit.
                if state.draining() {
                    return;
                }
                // Track before spawning so a drain that starts between
                // accept and spawn still waits for this connection.
                state.open_connections.fetch_add(1, Ordering::AcqRel);
                let conn_state = Arc::clone(state);
                let spawned = std::thread::Builder::new()
                    .name("incite-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(&conn_state, stream);
                        conn_state.open_connections.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // Spawn failure (fd/thread exhaustion): shed the
                    // connection; the guard must still be released.
                    state.open_connections.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(_) if state.draining() => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // Transient accept errors (ECONNABORTED, EMFILE...): back off
            // briefly instead of spinning or dying.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        let received =
            http::read_request(&mut reader, &|| state.draining(), state.config.io_window);
        let started = Instant::now();
        let (response, fatal) = match received {
            Ok(Received::Request(req)) => {
                let response = route(state, &req);
                let close = response.close || req.wants_close();
                (response, close)
            }
            Ok(Received::Closed) => return,
            Err(RecvError::Malformed(what)) => (
                Response::json(400, error_body(&format!("malformed request: {what}"))).closing(),
                true,
            ),
            Err(RecvError::TooLarge(what)) => (
                Response::json(413, error_body(&format!("{what} too large"))).closing(),
                true,
            ),
            Err(RecvError::Io(_)) => return,
        };
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        state
            .metrics
            .latency
            .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
        // Chaos sites on the write path: a reset drops the connection
        // with no response bytes; a short write emits a truncated prefix.
        // Both hit exactly one response and the server keeps serving.
        if state.chaos.trip(chaos::SOCKET_RESET) {
            return;
        }
        if state.chaos.trip(chaos::SHORT_WRITE) {
            let mut buf = Vec::new();
            if response.write_to(&mut buf).is_ok() {
                let _ = reader.get_mut().write_all(&buf[..buf.len() / 2]);
            }
            return;
        }
        if response.write_to(reader.get_mut()).is_err() {
            return;
        }
        if fatal {
            return;
        }
    }
}

/// The documents of a `/v1/score` or `/v1/redact` body: either
/// `{"text": "..."}` or `{"texts": ["...", ...]}`.
#[derive(serde::Deserialize)]
struct DocsRequest {
    text: Option<String>,
    texts: Option<Vec<String>>,
}

#[derive(serde::Serialize)]
struct ScoreResponse {
    /// Scores in input order.
    scores: Vec<f32>,
    /// The same scores as raw `f32` bit patterns: the byte-identity
    /// contract with the offline engine, checkable over the wire.
    bits: Vec<u32>,
    count: usize,
    /// Model generation every score in this response came from.
    generation: u64,
    /// That generation's verified model content hash (empty for
    /// in-memory boot models).
    model_hash: String,
}

/// `POST /v1/admin/swap` body.
#[derive(serde::Deserialize)]
struct SwapRequest {
    run_dir: Option<String>,
}

#[derive(serde::Serialize)]
struct RedactResponse {
    redacted: Vec<String>,
    pii_matches: usize,
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&serde::Value::Object(
        [("error".to_string(), serde::Value::Str(message.to_string()))]
            .into_iter()
            .collect(),
    ))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

fn json_or_500<E: std::fmt::Display>(body: Result<String, E>) -> Response {
    match body {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::json(500, error_body(&format!("response serialization: {e}"))),
    }
}

fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => {
            if state.draining() {
                Response::text(503, "draining\n").closing()
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => {
            let gauges = Gauges {
                queue_depth: state.queue.len(),
                draining: state.draining(),
                degraded: state.degraded(),
                model_generation: state.registry.generation(),
                swaps_total: state.registry.swaps_total.load(Ordering::Relaxed),
                swap_failures: state.registry.swap_failures.load(Ordering::Relaxed),
                journal_records: state.journal_stats.records.load(Ordering::Relaxed),
                journal_errors: state.journal_stats.errors.load(Ordering::Relaxed),
                tenants: state.admission.snapshot(),
            };
            Response::text(200, &state.metrics.render(&gauges))
        }
        ("POST", "/v1/score") => score(state, req),
        ("POST", "/v1/redact") => redact_endpoint(state, req),
        ("POST", "/v1/admin/swap") => swap_endpoint(state, req),
        ("GET" | "POST", _) => Response::json(404, error_body("no such endpoint")),
        _ => Response::json(405, error_body("method not allowed")),
    }
}

/// Parses the shared body shape and applies the per-request size cap.
fn parse_docs(req: &Request) -> Result<Vec<String>, Response> {
    let body = std::str::from_utf8(&req.body)
        .map_err(|_| Response::json(400, error_body("body is not UTF-8")))?;
    // Report the failure *position*, never the parser message — syntax
    // errors quote a snippet of the (caller-supplied, possibly victim)
    // body text, and error bodies are a diagnostic sink (INC011).
    let parsed: DocsRequest = serde_json::from_str(body).map_err(|e| {
        let detail = match e {
            serde_json::Error::Syntax(_, at) => {
                format!("body does not parse: syntax error at byte {at}")
            }
            _ => "body does not parse: value has the wrong shape".to_string(),
        };
        Response::json(400, error_body(&detail))
    })?;
    let texts = match (parsed.text, parsed.texts) {
        (Some(text), None) => vec![text],
        (None, Some(texts)) => texts,
        _ => {
            return Err(Response::json(
                400,
                error_body("body must have exactly one of \"text\" or \"texts\""),
            ))
        }
    };
    if texts.is_empty() {
        return Err(Response::json(400, error_body("\"texts\" is empty")));
    }
    if texts.len() > MAX_DOCS_PER_REQUEST {
        return Err(Response::json(
            413,
            error_body(&format!(
                "at most {MAX_DOCS_PER_REQUEST} documents per request"
            )),
        ));
    }
    Ok(texts)
}

fn score(state: &Arc<ServerState>, req: &Request) -> Response {
    if state.draining() {
        return Response::json(503, error_body("draining")).closing();
    }
    // Admission first: an unauthenticated or over-quota tenant must not
    // cost a parse of a multi-megabyte body.
    let tenant = match state
        .admission
        .admit(req.header("x-api-key"), Instant::now())
    {
        Admit::Granted { tenant } => tenant,
        Admit::RetryAfter { seconds, .. } => {
            return Response::json(429, error_body("tenant quota exhausted, retry later"))
                .with_header("retry-after", seconds.to_string());
        }
        Admit::UnknownKey => {
            return Response::json(401, error_body("unknown or missing x-api-key"));
        }
    };
    let texts = match parse_docs(req) {
        Ok(texts) => texts,
        Err(response) => return response,
    };
    // Degraded mode sheds batch work before it reaches the queue; the
    // cheap single-doc path (and /healthz) stay alive so probes and
    // latency-critical callers keep getting answers.
    if texts.len() > 1 && state.degraded() {
        state.metrics.shed_degraded.fetch_add(1, Ordering::Relaxed);
        state.admission.record_shed(&tenant);
        return Response::json(
            503,
            error_body("degraded: batch requests shed, retry later"),
        )
        .with_header("retry-after", "1".to_string());
    }
    let deadline = state.config.deadline;
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = ScoreJob {
        texts,
        enqueued: Instant::now(),
        deadline,
        seq: state.seq.fetch_add(1, Ordering::Relaxed) + 1,
        tenant,
        reply: reply_tx,
    };
    match state.queue.try_push(job) {
        Ok(()) => {
            state.full_strikes.store(0, Ordering::Release);
        }
        Err(PushError::Full(_)) => {
            state.full_strikes.fetch_add(1, Ordering::AcqRel);
            state
                .metrics
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return Response::json(429, error_body("queue full, retry later"))
                .with_header("retry-after", "1".to_string());
        }
        Err(PushError::Closed(_)) => {
            return Response::json(503, error_body("draining")).closing();
        }
    }
    state.metrics.score_requests.fetch_add(1, Ordering::Relaxed);
    // The worker enforces the deadline; the extra grace covers a batch
    // already being scored when the deadline hits.
    match reply_rx.recv_timeout(deadline + Duration::from_secs(5)) {
        Ok(Reply::Scores { scores, model }) => {
            let bits = scores.iter().map(|s| s.to_bits()).collect();
            let count = scores.len();
            json_or_500(serde_json::to_string(&ScoreResponse {
                scores,
                bits,
                count,
                generation: model.generation,
                model_hash: model.model_hash.clone(),
            }))
        }
        Ok(Reply::Expired) => Response::json(504, error_body("deadline exceeded in queue")),
        Ok(Reply::Failed(msg)) => Response::json(500, error_body(&msg)),
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            state
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            Response::json(504, error_body("deadline exceeded"))
        }
    }
}

/// `POST /v1/admin/swap {"run_dir": "..."}`: load, verify, and atomically
/// activate a new model generation. Runs synchronously on the connection
/// thread — the registry does all I/O outside its lock, so in-flight
/// scoring is never stalled. Every response body is static text plus the
/// new generation number: the requested path is request data and must not
/// echo into responses (INC011).
fn swap_endpoint(state: &Arc<ServerState>, req: &Request) -> Response {
    if state.draining() {
        return Response::json(503, error_body("draining")).closing();
    }
    let parsed: Result<SwapRequest, _> = match std::str::from_utf8(&req.body) {
        Ok(body) => serde_json::from_str(body),
        Err(_) => return Response::json(400, error_body("body is not UTF-8")),
    };
    let run_dir = match parsed {
        Ok(SwapRequest { run_dir: Some(dir) }) if !dir.is_empty() => dir,
        _ => {
            return Response::json(400, error_body("body must be {\"run_dir\": \"...\"}"));
        }
    };
    match state
        .registry
        .swap_from_run_dir(Path::new(&run_dir), &state.chaos)
    {
        Ok(generation) => Response::json(200, format!("{{\"generation\":{generation}}}")),
        Err(e @ SwapError::InProgress) => Response::json(409, error_body(e.describe())),
        Err(e @ SwapError::Load(_)) => Response::json(422, error_body(e.describe())),
        Err(e @ SwapError::Injected) => Response::json(503, error_body(e.describe())),
    }
}

fn redact_endpoint(state: &Arc<ServerState>, req: &Request) -> Response {
    let texts = match parse_docs(req) {
        Ok(texts) => texts,
        Err(response) => return response,
    };
    state
        .metrics
        .redact_requests
        .fetch_add(1, Ordering::Relaxed);
    // Redaction is a pure per-text pass over precompiled extractors —
    // cheap enough to serve inline on the connection thread, keeping the
    // queue for model inference.
    let mut redacted = Vec::with_capacity(texts.len());
    let mut pii_matches = 0;
    for text in &texts {
        let (clean, matches) = redact(&state.extractor, text);
        redacted.push(clean);
        pii_matches += matches.len();
    }
    json_or_500(serde_json::to_string(&RedactResponse {
        redacted,
        pii_matches,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_ml::{FeaturizerConfig, TrainConfig};

    /// A server state with no worker threads attached — routing decisions
    /// that never reach the engine (health, metrics, parse errors, and
    /// the 429 backpressure path with a zero-capacity queue) are testable
    /// without sockets.
    fn state(queue_depth: usize) -> Arc<ServerState> {
        state_with_config(ServeConfig {
            queue_depth,
            ..ServeConfig::default()
        })
    }

    fn state_with_config(config: ServeConfig) -> Arc<ServerState> {
        let classifier = TextClassifier::train(
            vec![("report him now", true), ("nice weather", false)],
            FeaturizerConfig::default(),
            TrainConfig::default(),
        );
        let extractor = PiiExtractor::try_new().expect("extractor");
        Arc::new(ServerState {
            registry: ModelRegistry::new(classifier, String::new(), String::new()),
            admission: AdmissionControl::new(config.tenants.clone(), Instant::now()),
            chaos: ChaosRegistry::from_registry(config.failpoints.clone()),
            journal_stats: Arc::new(JournalStats::default()),
            extractor,
            queue: BoundedQueue::new(config.queue_depth),
            metrics: Metrics::new(),
            config,
            draining: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            full_strikes: AtomicU32::new(0),
        })
    }

    fn request(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_flips_to_503_while_draining() {
        let state = state(4);
        let ok = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"ok\n");
        state.draining.store(true, Ordering::Release);
        let draining = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(draining.status, 503);
        assert_eq!(draining.body, b"draining\n");
        assert!(draining.close, "draining health responses close the socket");
    }

    #[test]
    fn score_while_draining_is_refused_not_queued() {
        let state = state(4);
        state.draining.store(true, Ordering::Release);
        let resp = route(&state, &request("POST", "/v1/score", "{\"text\": \"x\"}"));
        assert_eq!(resp.status, 503);
        assert_eq!(state.queue.len(), 0);
    }

    #[test]
    fn full_queue_returns_429_with_retry_after() {
        // Zero capacity: every enqueue is a backpressure rejection, and no
        // worker is needed to prove it.
        let state = state(0);
        let resp = route(&state, &request("POST", "/v1/score", "{\"text\": \"x\"}"));
        assert_eq!(resp.status, 429);
        assert!(
            resp.extra_headers
                .iter()
                .any(|(k, v)| *k == "retry-after" && v == "1"),
            "429 must carry retry-after: {:?}",
            resp.extra_headers
        );
        assert_eq!(state.metrics.rejected_overload.load(Ordering::Relaxed), 1);
        let metrics = route(&state, &request("GET", "/metrics", ""));
        let text = String::from_utf8(metrics.body).expect("utf8");
        assert!(
            text.contains("incite_serve_rejected_overload_total 1"),
            "{text}"
        );
    }

    #[test]
    fn bad_bodies_are_400_or_413_and_unknown_routes_404() {
        let state = state(4);
        for (body, expect) in [
            ("not json", 400),
            ("{}", 400),
            ("{\"text\": \"a\", \"texts\": [\"b\"]}", 400),
            ("{\"texts\": []}", 400),
        ] {
            let resp = route(&state, &request("POST", "/v1/score", body));
            assert_eq!(resp.status, expect, "body {body:?}");
        }
        let many: Vec<String> = (0..=MAX_DOCS_PER_REQUEST)
            .map(|i| format!("\"d{i}\""))
            .collect();
        let body = format!("{{\"texts\": [{}]}}", many.join(","));
        let resp = route(&state, &request("POST", "/v1/score", &body));
        assert_eq!(resp.status, 413);

        assert_eq!(route(&state, &request("GET", "/nope", "")).status, 404);
        assert_eq!(
            route(&state, &request("DELETE", "/healthz", "")).status,
            405
        );
    }

    #[test]
    fn swap_endpoint_validates_and_maps_errors_to_static_bodies() {
        let state = state(4);
        // Body validation failures never reach the registry.
        for body in ["not json", "{}", "{\"run_dir\": \"\"}", "{\"run_dir\": 7}"] {
            let resp = route(&state, &request("POST", "/v1/admin/swap", body));
            assert_eq!(resp.status, 400, "body {body:?}");
        }
        // A missing run dir is a typed 422 whose body echoes nothing of
        // the requested path.
        let resp = route(
            &state,
            &request(
                "POST",
                "/v1/admin/swap",
                "{\"run_dir\": \"/no/such/secret-dir\"}",
            ),
        );
        assert_eq!(resp.status, 422);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(!body.contains("secret-dir"), "path echoed: {body}");
        assert_eq!(state.registry.generation(), 1, "failed swap keeps gen 1");
        // Swapping while draining is refused outright.
        state.draining.store(true, Ordering::Release);
        let resp = route(
            &state,
            &request("POST", "/v1/admin/swap", "{\"run_dir\": \"/x\"}"),
        );
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn tenant_quota_gates_score_with_401_and_429() {
        use crate::admission::TenantQuota;

        let state = state_with_config(ServeConfig {
            queue_depth: 4,
            tenants: vec![TenantQuota {
                name: "alpha".to_string(),
                key: "alpha-key".to_string(),
                capacity: 1,
                refill_per_sec: 1,
            }],
            ..ServeConfig::default()
        });
        fn keyed(key: Option<&str>) -> Request {
            let mut req = request("POST", "/v1/score", "{\"text\": \"x\"}");
            if let Some(key) = key {
                req.headers.push(("x-api-key".to_string(), key.to_string()));
            }
            req
        }
        // No key / wrong key → 401 before anything is queued.
        assert_eq!(route(&state, &keyed(None)).status, 401);
        assert_eq!(route(&state, &keyed(Some("wrong"))).status, 401);
        assert_eq!(state.queue.len(), 0);
        // Drain the capacity-1 bucket, then the routed request is a 429
        // with a numeric retry-after — before parse, before the queue.
        assert!(matches!(
            state.admission.admit(Some("alpha-key"), Instant::now()),
            Admit::Granted { .. }
        ));
        let rejected = route(&state, &keyed(Some("alpha-key")));
        assert_eq!(rejected.status, 429);
        assert!(
            rejected
                .extra_headers
                .iter()
                .any(|(k, v)| *k == "retry-after" && v.parse::<u64>().is_ok()),
            "429 must carry a numeric retry-after: {:?}",
            rejected.extra_headers
        );
        assert_eq!(state.queue.len(), 0, "rejected request never queued");
        let snapshot = state.admission.snapshot();
        assert_eq!(snapshot[0].name, "alpha");
        assert_eq!(snapshot[0].admitted, 1);
        assert_eq!(snapshot[0].rejected, 1);
    }

    #[test]
    fn degraded_mode_sheds_batches_keeps_single_doc() {
        // Zero capacity: every push is Full, so strikes accumulate.
        let state = state(0);
        for _ in 0..DEGRADE_AFTER {
            let resp = route(&state, &request("POST", "/v1/score", "{\"text\": \"x\"}"));
            assert_eq!(resp.status, 429);
        }
        assert!(state.degraded());
        // Batch requests are shed with 503 *before* the queue...
        let resp = route(
            &state,
            &request("POST", "/v1/score", "{\"texts\": [\"a\", \"b\"]}"),
        );
        assert_eq!(resp.status, 503);
        assert_eq!(state.metrics.shed_degraded.load(Ordering::Relaxed), 1);
        // ...single-doc scoring still reaches the queue (and 429s on the
        // zero-capacity queue rather than being shed)...
        let resp = route(&state, &request("POST", "/v1/score", "{\"text\": \"x\"}"));
        assert_eq!(resp.status, 429);
        // ...and /healthz stays green.
        assert_eq!(route(&state, &request("GET", "/healthz", "")).status, 200);
        let metrics = route(&state, &request("GET", "/metrics", ""));
        let text = String::from_utf8(metrics.body).expect("utf8");
        assert!(text.contains("incite_serve_degraded 1"), "{text}");
        assert!(
            text.contains("incite_serve_shed_degraded_total 1"),
            "{text}"
        );
    }

    #[test]
    fn metrics_expose_generation_and_admission_series() {
        let state = state(4);
        let metrics = route(&state, &request("GET", "/metrics", ""));
        let text = String::from_utf8(metrics.body).expect("utf8");
        for series in [
            "incite_serve_model_generation 1",
            "incite_serve_swaps_total 0",
            "incite_serve_swap_failures_total 0",
            "incite_serve_journal_records_total 0",
            "incite_serve_tenant_admitted_total{tenant=\"default\"}",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
    }

    #[test]
    fn redact_runs_inline_without_workers() {
        let state = state(4);
        let resp = route(
            &state,
            &request(
                "POST",
                "/v1/redact",
                "{\"texts\": [\"call 212-555-0101 now\", \"no pii here\"]}",
            ),
        );
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(body.contains("[PHONE]"), "{body}");
        assert!(!body.contains("555-0101"), "{body}");
        assert_eq!(state.metrics.redact_requests.load(Ordering::Relaxed), 1);
    }
}
