//! A minimal blocking HTTP/1.1 client over `TcpStream`, for the
//! integration tests and the `serve_latency` load generator.
//!
//! Living here (rather than in `incite-bench`) keeps lint rule INC007
//! honest: `std::net` stays confined to `crates/serve` and the CLI, and
//! every other crate that needs to talk to the service goes through this
//! typed wrapper. Connections are keep-alive: one client can issue many
//! sequential requests over a single socket, which is what a
//! latency-measuring load generator wants.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// One keep-alive connection to the service.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    host: String,
}

impl HttpClient {
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> std::io::Result<Self> {
        let host = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            host,
        })
    }

    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None, &[])
    }

    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body), &[])
    }

    /// `post_json` with extra request headers, e.g. a tenant's
    /// `x-api-key` for admission control.
    pub fn post_json_with_headers(
        &mut self,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body), extra_headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n",
            self.host,
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before a status line"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("unparseable status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside headers"));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                headers.push((name.trim().to_string(), value.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("response without content-length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
