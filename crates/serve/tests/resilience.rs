//! Serve v2 resilience, end to end over real loopback sockets: atomic
//! model hot-swap under sustained concurrent load (zero dropped requests,
//! zero mixed generations), per-tenant admission control on the wire,
//! journal → offline replay byte-identity, and the slow-loris cutoff.

use incite_core::{load_latest_classifier_with_hash, ScoringEngine};
use incite_corpus::{generate, CorpusConfig};
use incite_serve::admission::TenantQuota;
use incite_serve::client::HttpClient;
use incite_serve::journal::read_journal;
use incite_serve::{ServeConfig, Server};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn config_on_free_port() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

fn score_body(texts: &[&str]) -> String {
    let escape = |t: &str| {
        t.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect::<String>()
    };
    if let [one] = texts {
        format!("{{\"text\": \"{}\"}}", escape(one))
    } else {
        let items: Vec<String> = texts.iter().map(|t| format!("\"{}\"", escape(t))).collect();
        format!("{{\"texts\": [{}]}}", items.join(","))
    }
}

/// The provenance-tagged score payload of a v2 response.
#[derive(Debug)]
struct Scored {
    bits: Vec<u32>,
    generation: u64,
    model_hash: String,
}

fn parse_scored(body: &str) -> Scored {
    let value: serde::Value = serde_json::from_str(body).expect("response parses");
    let serde::Value::Object(map) = value else {
        panic!("response is not an object: {body}");
    };
    let serde::Value::Array(items) = map.get("bits").expect("bits field") else {
        panic!("bits is not an array: {body}");
    };
    let bits = items
        .iter()
        .map(|v| match v {
            serde::Value::UInt(u) => u32::try_from(*u).expect("u32 bits"),
            serde::Value::Int(i) => u32::try_from(*i).expect("u32 bits"),
            other => panic!("non-integer bits entry: {other:?}"),
        })
        .collect();
    let generation = match map.get("generation").expect("generation field") {
        serde::Value::UInt(u) => *u,
        serde::Value::Int(i) => u64::try_from(*i).expect("u64 generation"),
        other => panic!("non-integer generation: {other:?}"),
    };
    let serde::Value::Str(model_hash) = map.get("model_hash").expect("model_hash field") else {
        panic!("model_hash is not a string: {body}");
    };
    Scored {
        bits,
        generation,
        model_hash: model_hash.clone(),
    }
}

/// A real checkpointed run directory: the resumable pipeline over a
/// generated corpus. Different pipeline seeds produce different models
/// (and therefore different verified model hashes).
fn checkpointed_run_dir(tag: &str, pipeline_seed: u64) -> (PathBuf, incite_corpus::Corpus) {
    let root = std::env::temp_dir().join(format!("incite-resilience-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("temp dir");
    let corpus = generate(&CorpusConfig::tiny(404));
    let config = incite_core::PipelineConfig::quick(pipeline_seed);
    incite_core::run_pipeline_resumable(&corpus, incite_core::Task::Cth, &config, &root)
        .expect("pipeline run");
    (root, corpus)
}

/// Offline expected bits for `texts` under the model in `run_dir`, keyed
/// by that model's hash.
fn expected_bits(run_dir: &std::path::Path, texts: &[String]) -> (String, Vec<u32>) {
    let (classifier, hash) = load_latest_classifier_with_hash(run_dir).expect("load model");
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let bits = ScoringEngine::score_texts(&classifier, &refs, 2)
        .expect("offline scoring")
        .iter()
        .map(|s| s.to_bits())
        .collect();
    (hash, bits)
}

#[test]
fn hot_swap_under_load_drops_nothing_and_never_mixes_generations() {
    let (dir_a, corpus) = checkpointed_run_dir("swap-a", 3);
    let (dir_b, _) = checkpointed_run_dir("swap-b", 5);
    let texts: Vec<String> = corpus
        .documents
        .iter()
        .skip(600)
        .take(24)
        .map(|d| d.text.clone())
        .collect();
    // Expected bits per model, keyed by verified hash: whatever hash a
    // response declares, its bits must match that model exactly.
    let (hash_a, bits_a) = expected_bits(&dir_a, &texts);
    let (hash_b, bits_b) = expected_bits(&dir_b, &texts);
    assert_ne!(
        hash_a, hash_b,
        "the two run dirs must hold different models"
    );
    let expected: BTreeMap<String, Vec<u32>> =
        [(hash_a.clone(), bits_a), (hash_b.clone(), bits_b)].into();

    let handle = Server::start_from_run_dir(&dir_a, config_on_free_port()).expect("server boots");
    let addr = handle.local_addr();

    const CLIENTS: usize = 6;
    let swap_body = format!("{{\"run_dir\": \"{}\"}}", dir_b.display());
    // Three deterministic phases: before the swap request (generation 1
    // only), concurrent with the swap (either generation, every response
    // internally consistent), and after the swap completed (generation 2
    // only). Barriers separate the phases; the middle phase is where the
    // flip lands under live concurrent load.
    let barrier = std::sync::Barrier::new(CLIENTS + 1);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let texts = &texts;
                let expected = &expected;
                let barrier = &barrier;
                let (hash_a, hash_b) = (&hash_a, &hash_b);
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut exchange = |round: usize| -> String {
                        // Mix single-doc and small batches so swaps land
                        // across micro-batch boundaries.
                        let (range, label) = if (c + round).is_multiple_of(3) {
                            let start = (c * 7 + round) % (texts.len() - 5);
                            (start..start + 5, "batch")
                        } else {
                            let idx = (c * 13 + round) % texts.len();
                            (idx..idx + 1, "single")
                        };
                        let batch: Vec<&str> =
                            texts[range.clone()].iter().map(String::as_str).collect();
                        let resp = client
                            .post_json("/v1/score", &score_body(&batch))
                            .expect("no request may be dropped during a swap");
                        assert_eq!(resp.status, 200, "{} {}", label, resp.body);
                        let scored = parse_scored(&resp.body);
                        let model_bits = expected
                            .get(&scored.model_hash)
                            .expect("response declares a known model hash");
                        assert_eq!(
                            scored.bits,
                            model_bits[range.clone()].to_vec(),
                            "bits must match the declared generation's model \
                             exactly (generation {} {label} at {range:?})",
                            scored.generation,
                        );
                        scored.model_hash
                    };
                    for round in 0..8 {
                        let hash = exchange(round);
                        assert_eq!(&hash, hash_a, "phase 1 precedes the swap request");
                    }
                    barrier.wait();
                    for round in 8..28 {
                        // Swap in flight somewhere in here: either model
                        // is legal, mixtures within a response are not
                        // (exchange checks that).
                        exchange(round);
                    }
                    barrier.wait();
                    for round in 28..33 {
                        let hash = exchange(round);
                        assert_eq!(&hash, hash_b, "phase 3 follows the completed swap");
                    }
                })
            })
            .collect();

        barrier.wait();
        let mut admin = HttpClient::connect(addr).expect("admin connect");
        let resp = admin
            .post_json("/v1/admin/swap", &swap_body)
            .expect("swap request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"generation\":2"), "{}", resp.body);
        barrier.wait();

        for worker in workers {
            worker.join().expect("client thread");
        }
    });

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn tenant_admission_is_enforced_per_key_on_the_wire() {
    let (classifier, _) = {
        let corpus = generate(&CorpusConfig::tiny(71));
        let labeled: Vec<(&str, bool)> = corpus
            .documents
            .iter()
            .take(400)
            .map(|d| (d.text.as_str(), d.truth.is_cth))
            .collect();
        (
            incite_ml::TextClassifier::train(
                labeled,
                incite_ml::FeaturizerConfig::default(),
                incite_ml::TrainConfig::default(),
            ),
            corpus,
        )
    };
    let config = ServeConfig {
        tenants: vec![
            TenantQuota {
                name: "alpha".to_string(),
                key: "alpha-key".to_string(),
                capacity: 2,
                refill_per_sec: 1,
            },
            TenantQuota {
                name: "beta".to_string(),
                key: "beta-key".to_string(),
                capacity: 10,
                refill_per_sec: 5,
            },
        ],
        ..config_on_free_port()
    };
    let handle = Server::start(classifier, config).expect("server starts");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");
    let body = score_body(&["report him"]);

    // No key at all → 401, not queued, not scored.
    let resp = client.post_json("/v1/score", &body).expect("request");
    assert_eq!(resp.status, 401, "{}", resp.body);

    // Alpha's burst is 2: two served, the third rejected with a
    // deterministic Retry-After hint.
    for i in 0..2 {
        let resp = client
            .post_json_with_headers("/v1/score", &body, &[("x-api-key", "alpha-key")])
            .expect("request");
        assert_eq!(resp.status, 200, "grant {i}: {}", resp.body);
    }
    let resp = client
        .post_json_with_headers("/v1/score", &body, &[("x-api-key", "alpha-key")])
        .expect("request");
    assert_eq!(resp.status, 429, "{}", resp.body);
    let retry: u64 = resp
        .header("retry-after")
        .expect("429 carries retry-after")
        .parse()
        .expect("numeric retry-after");
    assert!(retry >= 1);

    // Beta is unaffected by alpha's exhaustion (fair share, not global).
    let resp = client
        .post_json_with_headers("/v1/score", &body, &[("x-api-key", "beta-key")])
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The per-tenant counters are on /metrics.
    let metrics = client.get("/metrics").expect("metrics");
    for series in [
        "incite_serve_tenant_admitted_total{tenant=\"alpha\"} 2",
        "incite_serve_tenant_rejected_total{tenant=\"alpha\"} 1",
        "incite_serve_tenant_admitted_total{tenant=\"beta\"} 1",
    ] {
        assert!(
            metrics.body.contains(series),
            "missing {series:?} in:\n{}",
            metrics.body
        );
    }

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn journal_replays_offline_to_byte_identical_bits() {
    let (run_dir, corpus) = checkpointed_run_dir("journal", 3);
    let journal_path = run_dir.join("requests.journal");
    let config = ServeConfig {
        journal: Some(journal_path.clone()),
        ..config_on_free_port()
    };
    let handle = Server::start_from_run_dir(&run_dir, config).expect("server boots");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");

    let texts: Vec<String> = corpus
        .documents
        .iter()
        .skip(700)
        .take(9)
        .map(|d| d.text.clone())
        .collect();
    let mut served: Vec<Scored> = Vec::new();
    for chunk in texts.chunks(3) {
        let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
        let resp = client
            .post_json("/v1/score", &score_body(&refs))
            .expect("request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        served.push(parse_scored(&resp.body));
    }
    // Joining drains the journal thread; only then is the file complete.
    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);

    let (records, damage) = read_journal(&journal_path).expect("journal reads back");
    assert_eq!(damage, None, "clean shutdown leaves no torn tail");
    assert_eq!(records.len(), served.len());

    // Offline replay: re-score every journaled input against the model
    // the record names and demand bit identity — the production score is
    // reproducible from the journal alone.
    let (classifier, hash) = load_latest_classifier_with_hash(&run_dir).expect("load model");
    let mut seqs = BTreeSet::new();
    for (record, scored) in records.iter().zip(&served) {
        assert!(seqs.insert(record.seq), "duplicate seq {}", record.seq);
        assert_eq!(record.model_hash, hash);
        assert_eq!(record.model_hash, scored.model_hash);
        assert_eq!(record.generation, scored.generation);
        assert_eq!(record.tenant, "default");
        assert_eq!(record.bits, scored.bits, "journal holds the served bits");
        let refs: Vec<&str> = record.texts.iter().map(String::as_str).collect();
        let replayed: Vec<u32> = ScoringEngine::score_texts(&classifier, &refs, 1)
            .expect("replay scoring")
            .iter()
            .map(|s| s.to_bits())
            .collect();
        assert_eq!(
            replayed, record.bits,
            "offline replay of seq {} is not byte-identical",
            record.seq
        );
    }
    std::fs::remove_dir_all(&run_dir).ok();
}

#[test]
fn slow_loris_connection_is_cut_without_starving_real_clients() {
    let corpus = generate(&CorpusConfig::tiny(72));
    let labeled: Vec<(&str, bool)> = corpus
        .documents
        .iter()
        .take(400)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let classifier = incite_ml::TextClassifier::train(
        labeled,
        incite_ml::FeaturizerConfig::default(),
        incite_ml::TrainConfig::default(),
    );
    let config = ServeConfig {
        io_window: Duration::from_millis(300),
        ..config_on_free_port()
    };
    let handle = Server::start(classifier, config).expect("server starts");
    let addr = handle.local_addr();

    // The attacker: opens a connection, sends half a request line, stalls.
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    loris
        .write_all(b"POST /v1/sc")
        .expect("partial request line");

    // A well-behaved client is served normally while the loris dangles.
    let mut client = HttpClient::connect(addr).expect("client connect");
    let resp = client
        .post_json("/v1/score", &score_body(&["report him"]))
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The loris connection is closed by the server once the io window
    // expires — observed as EOF (or a reset) on the attacker's socket,
    // well before the 10s default window.
    loris
        .set_read_timeout(Some(Duration::from_secs(8)))
        .expect("read timeout");
    let started = Instant::now();
    let mut sink = [0u8; 64];
    let outcome = loris.read(&mut sink);
    let elapsed = started.elapsed();
    match outcome {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("loris got {n} response bytes for half a request line"),
    }
    assert!(
        elapsed < Duration::from_secs(6),
        "loris held its handler thread for {elapsed:?}"
    );

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    assert_eq!(
        report.stuck_connections, 0,
        "loris connection leaked into the drain"
    );
}
