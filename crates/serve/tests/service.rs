//! End-to-end tests of the inference service over real loopback sockets:
//! byte-identity with the offline engine under concurrent clients,
//! backpressure, graceful drain, and booting from a (possibly damaged)
//! checkpointed run directory.

use incite_core::{load_latest_classifier, CheckpointError, ScoringEngine};
use incite_corpus::{generate, CorpusConfig};
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};
use incite_serve::client::HttpClient;
use incite_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn trained_classifier(seed: u64) -> (TextClassifier, Vec<String>) {
    let corpus = generate(&CorpusConfig::tiny(seed));
    let labeled: Vec<(&str, bool)> = corpus
        .documents
        .iter()
        .take(600)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let classifier =
        TextClassifier::train(labeled, FeaturizerConfig::default(), TrainConfig::default());
    let texts: Vec<String> = corpus
        .documents
        .iter()
        .skip(600)
        .take(48)
        .map(|d| d.text.clone())
        .collect();
    (classifier, texts)
}

fn config_on_free_port() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

fn score_body(texts: &[&str]) -> String {
    let escape = |t: &str| {
        t.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect::<String>()
    };
    if let [one] = texts {
        format!("{{\"text\": \"{}\"}}", escape(one))
    } else {
        let items: Vec<String> = texts.iter().map(|t| format!("\"{}\"", escape(t))).collect();
        format!("{{\"texts\": [{}]}}", items.join(","))
    }
}

fn bits_of(body: &str) -> Vec<u32> {
    let value: serde::Value = serde_json::from_str(body).expect("response parses");
    let serde::Value::Object(map) = value else {
        panic!("response is not an object: {body}");
    };
    let serde::Value::Array(items) = map.get("bits").expect("bits field") else {
        panic!("bits is not an array: {body}");
    };
    items
        .iter()
        .map(|v| match v {
            serde::Value::UInt(u) => u32::try_from(*u).expect("u32 bits"),
            serde::Value::Int(i) => u32::try_from(*i).expect("u32 bits"),
            other => panic!("non-integer bits entry: {other:?}"),
        })
        .collect()
}

#[test]
fn served_scores_byte_identical_to_offline_engine_under_concurrent_clients() {
    let (classifier, texts) = trained_classifier(71);
    // The offline reference: the batch engine entry the server also uses,
    // which is itself pinned bit-identical to `classifier.score`.
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let expected: Vec<u32> = ScoringEngine::score_texts(&classifier, &refs, 2)
        .expect("offline scoring")
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let handle = Server::start(classifier, config_on_free_port()).expect("server starts");
    let addr = handle.local_addr();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let texts = &texts;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Alternate single-document and batch requests, each
                    // client starting at a different offset, so batching
                    // and interleaving vary run to run.
                    if (c + round) % 2 == 0 {
                        let idx = (c * ROUNDS + round) % texts.len();
                        let resp = client
                            .post_json("/v1/score", &score_body(&[&texts[idx]]))
                            .expect("score request");
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        assert_eq!(bits_of(&resp.body), vec![expected[idx]], "doc {idx}");
                    } else {
                        let start = (c * 5 + round) % (texts.len() - 7);
                        let batch: Vec<&str> =
                            texts[start..start + 7].iter().map(String::as_str).collect();
                        let resp = client
                            .post_json("/v1/score", &score_body(&batch))
                            .expect("batch request");
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        assert_eq!(
                            bits_of(&resp.body),
                            expected[start..start + 7].to_vec(),
                            "batch at {start}"
                        );
                    }
                }
            });
        }
    });

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    assert!(report.requests_total >= (CLIENTS * ROUNDS) as u64);
    assert_eq!(report.rejected_overload, 0);
}

#[test]
fn overload_returns_429_with_retry_after_on_the_wire() {
    let (classifier, texts) = trained_classifier(72);
    let config = ServeConfig {
        queue_depth: 0,
        ..config_on_free_port()
    };
    let handle = Server::start(classifier, config).expect("server starts");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");

    let resp = client
        .post_json("/v1/score", &score_body(&[&texts[0]]))
        .expect("request");
    assert_eq!(resp.status, 429);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body.contains("queue full"), "{}", resp.body);

    // Health stays green and metrics record the rejection — overload is
    // backpressure, not an outage.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let metrics = client.get("/metrics").expect("metrics");
    assert!(
        metrics
            .body
            .contains("incite_serve_rejected_overload_total 1"),
        "{}",
        metrics.body
    );

    let report = handle.join();
    assert_eq!(report.rejected_overload, 1);
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn graceful_drain_answers_accepted_requests_and_joins_clean() {
    let (classifier, texts) = trained_classifier(73);
    let handle = Server::start(classifier, config_on_free_port()).expect("server starts");
    let addr = handle.local_addr();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|c| {
                let texts = &texts;
                let stop = &stop;
                scope.spawn(move || {
                    let mut ok = 0usize;
                    let mut refused = 0usize;
                    let mut client = match HttpClient::connect(addr) {
                        Ok(client) => client,
                        Err(_) => return (ok, refused),
                    };
                    for i in 0.. {
                        if stop.load(std::sync::atomic::Ordering::Acquire) && i > 0 {
                            break;
                        }
                        let body = score_body(&[&texts[(c + i) % texts.len()]]);
                        match client.post_json("/v1/score", &body) {
                            // Accepted work is answered; refusals during
                            // the drain are clean 503s. Anything else —
                            // and any dropped (unanswered) request — is a
                            // connection error and fails below.
                            Ok(resp) if resp.status == 200 => ok += 1,
                            Ok(resp) if resp.status == 503 => {
                                refused += 1;
                                break;
                            }
                            Ok(resp) => panic!("unexpected status {}", resp.status),
                            // The server only closes a keep-alive socket
                            // between requests once draining has begun.
                            Err(e) => {
                                assert!(
                                    stop.load(std::sync::atomic::Ordering::Acquire),
                                    "connection error before drain: {e}"
                                );
                                break;
                            }
                        }
                    }
                    (ok, refused)
                })
            })
            .collect();

        // Let the clients build up in-flight traffic, then pull the plug
        // the way the SIGTERM handler does.
        std::thread::sleep(Duration::from_millis(150));
        handle.initiate_drain();
        stop.store(true, std::sync::atomic::Ordering::Release);
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    });

    let total_ok: usize = outcomes.iter().map(|(ok, _)| ok).sum();
    assert!(total_ok > 0, "no requests completed before the drain");

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    assert_eq!(report.stuck_connections, 0, "drain left connections behind");
    assert!(report.requests_total >= total_ok as u64);
}

/// Creates a real checkpointed run directory by running the resumable
/// pipeline on a generated corpus, returning its path.
fn checkpointed_run_dir(tag: &str) -> (PathBuf, incite_corpus::Corpus) {
    let root = std::env::temp_dir().join(format!("incite-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("temp dir");
    let corpus = generate(&CorpusConfig::tiny(404));
    let config = incite_core::PipelineConfig::quick(3);
    incite_core::run_pipeline_resumable(&corpus, incite_core::Task::Cth, &config, &root)
        .expect("pipeline run");
    (root, corpus)
}

#[test]
fn boots_from_a_run_directory_and_serves_the_checkpointed_model() {
    let (run_dir, corpus) = checkpointed_run_dir("boot");
    let classifier = load_latest_classifier(&run_dir).expect("load from run dir");

    let handle = Server::start(classifier.clone(), config_on_free_port()).expect("server starts");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");
    for doc in corpus.documents.iter().take(5) {
        let resp = client
            .post_json("/v1/score", &score_body(&[&doc.text]))
            .expect("request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            bits_of(&resp.body),
            vec![classifier.score(&doc.text).to_bits()],
            "served score differs from the checkpointed model"
        );
    }
    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    std::fs::remove_dir_all(&run_dir).ok();
}

#[test]
fn damaged_run_directories_are_typed_refusals_with_no_partial_bind() {
    let (run_dir, _) = checkpointed_run_dir("damage");

    // A model section whose bytes differ from the manifest record: valid
    // frame, wrong content → HashMismatch.
    let model_file = std::fs::read_dir(&run_dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with(".model.ckpt"))
        .max()
        .expect("a model checkpoint exists");
    let original = std::fs::read(&model_file).expect("read model");
    incite_core::checkpoint::atomic_io::write_hashed(&model_file, b"not a model")
        .expect("overwrite");
    match load_latest_classifier(&run_dir) {
        Err(CheckpointError::HashMismatch { .. }) => {}
        other => panic!("expected HashMismatch, got {other:?}"),
    }

    // A torn write (no valid footer) → Corrupt, still typed.
    std::fs::write(&model_file, &original[..original.len() / 2]).expect("truncate");
    match load_latest_classifier(&run_dir) {
        Err(CheckpointError::Corrupt { .. } | CheckpointError::HashMismatch { .. }) => {}
        other => panic!("expected a typed corruption error, got {other:?}"),
    }

    // No manifest at all → Incompatible with a usable hint.
    std::fs::remove_file(run_dir.join("MANIFEST.ckpt")).expect("remove manifest");
    match load_latest_classifier(&run_dir) {
        Err(CheckpointError::Incompatible { detail }) => {
            assert!(detail.contains("not a run directory"), "{detail}");
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }

    std::fs::remove_dir_all(&run_dir).ok();
}
