//! The serve chaos sweep: with each fault site armed, the service must
//! degrade gracefully — a typed error or one dropped connection, never a
//! hang, never a wrong byte — and recover to byte-identical scoring for
//! the rest of its lifetime. Mirrors the pipeline's kill-point sweep
//! (`crash_recovery.rs`), but the claim here is *availability*, not
//! resumability.
//!
//! Runs only with `--features failpoints`; the release build compiles the
//! sites out entirely.

#![cfg(feature = "failpoints")]

use incite_core::FailpointRegistry;
use incite_corpus::{generate, CorpusConfig};
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};
use incite_serve::chaos;
use incite_serve::client::HttpClient;
use incite_serve::{ServeConfig, Server, ServerHandle};
use std::time::Duration;

fn trained_classifier(seed: u64) -> (TextClassifier, Vec<String>) {
    let corpus = generate(&CorpusConfig::tiny(seed));
    let labeled: Vec<(&str, bool)> = corpus
        .documents
        .iter()
        .take(500)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let classifier =
        TextClassifier::train(labeled, FeaturizerConfig::default(), TrainConfig::default());
    let texts: Vec<String> = corpus
        .documents
        .iter()
        .skip(600)
        .take(8)
        .map(|d| d.text.clone())
        .collect();
    (classifier, texts)
}

fn server_with_armed_site(site: &str, seed: u64) -> (ServerHandle, Vec<String>, Vec<u32>) {
    let (classifier, texts) = trained_classifier(seed);
    let expected: Vec<u32> = texts
        .iter()
        .map(|t| classifier.score(t).to_bits())
        .collect();
    let mut failpoints = FailpointRegistry::new();
    failpoints.arm(site);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        deadline: Duration::from_secs(30),
        failpoints,
        ..ServeConfig::default()
    };
    let handle = Server::start(classifier, config).expect("server starts");
    (handle, texts, expected)
}

fn single_body(text: &str) -> String {
    let escaped: String = text
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("{{\"text\": \"{escaped}\"}}")
}

fn bits_of(body: &str) -> Vec<u32> {
    let value: serde::Value = serde_json::from_str(body).expect("response parses");
    let serde::Value::Object(map) = value else {
        panic!("response is not an object: {body}");
    };
    let serde::Value::Array(items) = map.get("bits").expect("bits field") else {
        panic!("bits is not an array: {body}");
    };
    items
        .iter()
        .map(|v| match v {
            serde::Value::UInt(u) => u32::try_from(*u).expect("u32 bits"),
            serde::Value::Int(i) => u32::try_from(*i).expect("u32 bits"),
            other => panic!("non-integer bits entry: {other:?}"),
        })
        .collect()
}

/// After the fault fired, the same server must score byte-identically.
fn assert_recovered(addr: std::net::SocketAddr, texts: &[String], expected: &[u32]) {
    let mut client = HttpClient::connect(addr).expect("reconnect after fault");
    for (text, want) in texts.iter().zip(expected) {
        let resp = client
            .post_json("/v1/score", &single_body(text))
            .expect("post-fault request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(bits_of(&resp.body), vec![*want], "post-fault byte identity");
    }
}

#[test]
fn socket_reset_drops_one_connection_then_serves_identically() {
    let (handle, texts, expected) = server_with_armed_site(chaos::SOCKET_RESET, 81);
    let addr = handle.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    // The armed site consumes this response before any byte is written:
    // the client sees a dead socket, not a corrupt or hung exchange.
    let outcome = client.post_json("/v1/score", &single_body(&texts[0]));
    assert!(
        outcome.is_err(),
        "armed socket-reset must kill the connection, got {outcome:?}"
    );
    assert_recovered(addr, &texts, &expected);
    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn short_write_truncates_one_response_then_serves_identically() {
    let (handle, texts, expected) = server_with_armed_site(chaos::SHORT_WRITE, 82);
    let addr = handle.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    // Half a response then EOF: the client's parser must fail cleanly
    // (truncated head or short body), never block forever.
    let outcome = client.post_json("/v1/score", &single_body(&texts[0]));
    assert!(
        outcome.is_err(),
        "armed short-write must yield an unparseable exchange, got {outcome:?}"
    );
    assert_recovered(addr, &texts, &expected);
    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn worker_fault_fails_one_batch_typed_then_serves_identically() {
    let (handle, texts, expected) = server_with_armed_site(chaos::WORKER_FAULT, 83);
    let addr = handle.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    // The injected engine fault is a typed 500 on the same connection —
    // the worker loop survives it.
    let resp = client
        .post_json("/v1/score", &single_body(&texts[0]))
        .expect("faulted request still gets a response");
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("injected worker fault"), "{}", resp.body);
    assert_recovered(addr, &texts, &expected);
    let report = handle.join();
    // The one injected fault is the only worker error.
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn journal_open_fault_refuses_boot_with_a_typed_error() {
    // An unopenable journal is a boot failure, not a silent runtime drop:
    // with the journal-open site armed, `Server::start` must return a
    // typed config error before any worker thread exists.
    let (classifier, _texts) = trained_classifier(84);
    let root = std::env::temp_dir().join(format!("incite-chaos-journal-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("journal dir");
    let mut failpoints = FailpointRegistry::new();
    failpoints.arm(chaos::JOURNAL_OPEN);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        deadline: Duration::from_secs(30),
        failpoints,
        journal: Some(root.join("requests.journal")),
        ..ServeConfig::default()
    };
    let message = match Server::start(classifier, config) {
        Err(err) => err.to_string(),
        Ok(_) => panic!("armed journal-open must refuse boot"),
    };
    assert!(
        message.contains("cannot open journal") && message.contains("injected journal-open fault"),
        "boot refusal must name the journal fault, got: {message}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn mid_swap_fault_keeps_the_old_generation_then_swap_succeeds() {
    use incite_serve::journal::read_journal;

    // Boot from a run dir so generations carry real hashes, arm the
    // mid-swap site, and journal throughout: the failed swap must leave
    // no trace in served bits.
    let root = std::env::temp_dir().join(format!("incite-chaos-midswap-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let dir_a = root.join("run-a");
    let dir_b = root.join("run-b");
    let corpus = generate(&CorpusConfig::tiny(404));
    for (dir, seed) in [(&dir_a, 3u64), (&dir_b, 5u64)] {
        std::fs::create_dir_all(dir).expect("run dir");
        let config = incite_core::PipelineConfig::quick(seed);
        incite_core::run_pipeline_resumable(&corpus, incite_core::Task::Cth, &config, dir)
            .expect("pipeline run");
    }
    let mut failpoints = FailpointRegistry::new();
    failpoints.arm(chaos::MID_SWAP);
    let journal_path = root.join("requests.journal");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        deadline: Duration::from_secs(30),
        failpoints,
        journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start_from_run_dir(&dir_a, config).expect("server boots");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");

    let text = &corpus.documents[700].text;
    let before = client
        .post_json("/v1/score", &single_body(text))
        .expect("pre-swap request");
    assert_eq!(before.status, 200, "{}", before.body);

    // The armed swap aborts after loading, before the flip: typed 503,
    // old generation intact.
    let swap_body = format!("{{\"run_dir\": \"{}\"}}", dir_b.display());
    let failed = client
        .post_json("/v1/admin/swap", &swap_body)
        .expect("swap request");
    assert_eq!(failed.status, 503, "{}", failed.body);
    let metrics = client.get("/metrics").expect("metrics");
    assert!(
        metrics.body.contains("incite_serve_model_generation 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("incite_serve_swap_failures_total 1"),
        "{}",
        metrics.body
    );
    let during = client
        .post_json("/v1/score", &single_body(text))
        .expect("post-fault request");
    assert_eq!(during.status, 200);
    assert_eq!(
        bits_of(&during.body),
        bits_of(&before.body),
        "the aborted swap changed served bits"
    );

    // The site tripped once; the retry goes through.
    let retried = client
        .post_json("/v1/admin/swap", &swap_body)
        .expect("swap retry");
    assert_eq!(retried.status, 200, "{}", retried.body);
    assert!(
        retried.body.contains("\"generation\":2"),
        "{}",
        retried.body
    );
    let after = client
        .post_json("/v1/score", &single_body(text))
        .expect("post-swap request");
    assert_eq!(after.status, 200);

    let report = handle.join();
    assert_eq!(report.panicked_threads, 0);
    // Every journaled response — across the fault and the swap — must
    // name a generation whose recorded bits it reproduces.
    let (records, damage) = read_journal(&journal_path).expect("journal reads back");
    assert_eq!(damage, None);
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].generation, 1);
    assert_eq!(
        records[1].generation, 1,
        "failed swap must not advance generations"
    );
    assert_eq!(records[2].generation, 2);
    assert_eq!(records[0].bits, records[1].bits);
    std::fs::remove_dir_all(&root).ok();
}
