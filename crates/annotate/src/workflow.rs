//! The consensus annotation protocol (§5.3).
//!
//! "At least two annotators annotated each document … When the two
//! annotators did not agree, the document was annotated by a third
//! annotator to break the tie." The batch outcome carries the §5.3
//! diagnostics: raw disagreement rate and Cohen's kappa over the first two
//! passes.

use crate::annotator::Annotator;
use incite_stats::kappa::cohen_kappa_from_labels;
use rand::rngs::StdRng;

/// The result of annotating one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Consensus label per document (same order as the input).
    pub labels: Vec<bool>,
    /// Number of documents where the first two annotators disagreed.
    pub disagreements: usize,
    /// Total documents.
    pub total: usize,
    /// Cohen's kappa between the first two annotators (`None` when
    /// degenerate).
    pub kappa: Option<f64>,
}

impl BatchOutcome {
    /// Disagreement rate in `[0, 1]`.
    pub fn disagreement_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.disagreements as f64 / self.total as f64
        }
    }
}

/// Annotates a batch of documents (given their planted truths) with the
/// two-plus-tie-break protocol.
pub fn annotate_batch(
    truths: &[bool],
    first: &Annotator,
    second: &Annotator,
    tie_breaker: &Annotator,
    rng: &mut StdRng,
) -> BatchOutcome {
    let mut labels = Vec::with_capacity(truths.len());
    let mut first_votes = Vec::with_capacity(truths.len());
    let mut second_votes = Vec::with_capacity(truths.len());
    let mut disagreements = 0;
    for &truth in truths {
        let a = first.annotate(truth, rng);
        let b = second.annotate(truth, rng);
        first_votes.push(a);
        second_votes.push(b);
        if a == b {
            labels.push(a);
        } else {
            disagreements += 1;
            labels.push(tie_breaker.annotate(truth, rng));
        }
    }
    let kappa = cohen_kappa_from_labels(&first_votes, &second_votes);
    BatchOutcome {
        labels,
        disagreements,
        total: truths.len(),
        kappa,
    }
}

/// The final expert-review pass: one of the authors re-checks every
/// *positive* consensus label (§5.3: "one of the authors reviewed all
/// positive labeled annotations … after data set delivery"). Negatives are
/// left untouched.
pub fn expert_review(
    truths: &[bool],
    consensus: &mut [bool],
    expert: &Annotator,
    rng: &mut StdRng,
) -> usize {
    let mut flipped = 0;
    for (label, &truth) in consensus.iter_mut().zip(truths) {
        if *label {
            let verdict = expert.annotate(truth, rng);
            if verdict != *label {
                *label = verdict;
                flipped += 1;
            }
        }
    }
    flipped
}

/// The §5.3 spot-checking process: "reviewing random samples of annotations
/// in order to keep track of poor annotator performance." An expert audits
/// a random sample of one annotator's judgments against truth and returns
/// the estimated accuracy (the signal used to drop weak annotators).
pub fn spot_check(
    truths: &[bool],
    annotator: &Annotator,
    sample_size: usize,
    auditor: &Annotator,
    rng: &mut StdRng,
) -> f64 {
    use rand::seq::SliceRandom;
    let mut indices: Vec<usize> = (0..truths.len()).collect();
    indices.shuffle(rng);
    indices.truncate(sample_size.max(1).min(truths.len().max(1)));
    if indices.is_empty() {
        return 1.0;
    }
    let agreed = indices
        .iter()
        .filter(|&&i| {
            let judgment = annotator.annotate(truths[i], rng);
            let audit = auditor.annotate(truths[i], rng);
            judgment == audit
        })
        .count();
    agreed as f64 / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(321)
    }

    fn truths(n: usize, every: usize) -> Vec<bool> {
        (0..n).map(|i| i % every == 0).collect()
    }

    #[test]
    fn oracles_agree_everywhere() {
        let o = Annotator::oracle("o");
        let mut r = rng();
        let t = truths(200, 5);
        let out = annotate_batch(&t, &o, &o, &o, &mut r);
        assert_eq!(out.disagreements, 0);
        assert_eq!(out.labels, t);
        assert_eq!(out.kappa, Some(1.0));
    }

    #[test]
    fn consensus_beats_single_annotator() {
        let crowd = Annotator::crowd_cth("c");
        let mut r = rng();
        let t = truths(20_000, 10);
        let out = annotate_batch(&t, &crowd, &crowd, &crowd, &mut r);
        let consensus_errors = out.labels.iter().zip(&t).filter(|(l, t)| l != t).count();
        let mut single_errors = 0;
        for &truth in &t {
            if crowd.annotate(truth, &mut r) != truth {
                single_errors += 1;
            }
        }
        assert!(
            consensus_errors < single_errors,
            "consensus {consensus_errors} vs single {single_errors}"
        );
    }

    #[test]
    fn cth_crowd_kappa_in_paper_band() {
        let a = Annotator::crowd_cth("a");
        let b = Annotator::crowd_cth("b");
        let mut r = rng();
        let t = truths(30_000, 15);
        let out = annotate_batch(&t, &a, &b, &a, &mut r);
        let kappa = out.kappa.unwrap();
        // Paper: 0.350 (fair agreement). Accept the band.
        assert!((0.2..0.5).contains(&kappa), "kappa = {kappa}");
        assert!((out.disagreement_rate() - 0.1866).abs() < 0.04);
    }

    #[test]
    fn dox_crowd_kappa_in_paper_band() {
        let a = Annotator::crowd_dox("a");
        let b = Annotator::crowd_dox("b");
        let mut r = rng();
        let t = truths(30_000, 20);
        let out = annotate_batch(&t, &a, &b, &a, &mut r);
        let kappa = out.kappa.unwrap();
        // Paper: 0.519 (moderate agreement).
        assert!((0.4..0.7).contains(&kappa), "kappa = {kappa}");
        assert!((out.disagreement_rate() - 0.0394).abs() < 0.02);
    }

    #[test]
    fn expert_review_only_touches_positives() {
        let mut r = rng();
        let t = vec![true, false, true, false];
        let mut consensus = vec![true, false, false, true]; // one FP at 3, one FN at 2
        let expert = Annotator::oracle("e");
        let flipped = expert_review(&t, &mut consensus, &expert, &mut r);
        // The FP at index 3 gets corrected; the FN at index 2 is not
        // reviewed (it was labeled negative).
        assert_eq!(flipped, 1);
        assert_eq!(consensus, vec![true, false, false, false]);
    }

    #[test]
    fn spot_check_separates_good_from_bad_annotators() {
        let mut r = rng();
        let t = truths(5_000, 5);
        let auditor = Annotator::expert("auditor");
        let good = Annotator::expert("good");
        let bad = Annotator {
            id: "bad".into(),
            sensitivity: 0.5,
            specificity: 0.6,
        };
        let good_score = spot_check(&t, &good, 500, &auditor, &mut r);
        let bad_score = spot_check(&t, &bad, 500, &auditor, &mut r);
        assert!(good_score > 0.9, "good {good_score}");
        assert!(
            bad_score < good_score - 0.1,
            "bad {bad_score} vs good {good_score}"
        );
    }

    #[test]
    fn spot_check_handles_degenerate_inputs() {
        let mut r = rng();
        let auditor = Annotator::oracle("a");
        assert_eq!(spot_check(&[], &auditor, 10, &auditor, &mut r), 1.0);
        let one = [true];
        let s = spot_check(&one, &auditor, 100, &auditor, &mut r);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn empty_batch_is_clean() {
        let o = Annotator::oracle("o");
        let mut r = rng();
        let out = annotate_batch(&[], &o, &o, &o, &mut r);
        assert_eq!(out.total, 0);
        assert_eq!(out.disagreement_rate(), 0.0);
        assert!(out.kappa.is_none());
    }
}
