//! Noisy annotator models.
//!
//! An annotator sees a document and produces a binary judgment. The model
//! flips the planted truth with task-dependent error probabilities. Presets
//! are calibrated so that two independent crowd annotators reproduce the
//! paper's §5.3 disagreement rates: 3.94 % on the dox task and 18.66 % on
//! the (semantically harder) CTH task — two annotators with per-judgment
//! accuracy `a` disagree at ≈ `2a(1-a)`, giving a ≈ 0.98 and a ≈ 0.90.

use rand::rngs::StdRng;
use rand::Rng;

/// A simulated annotator.
#[derive(Debug, Clone)]
pub struct Annotator {
    /// Display identifier.
    pub id: String,
    /// Probability of labeling a true positive as positive.
    pub sensitivity: f64,
    /// Probability of labeling a true negative as negative.
    pub specificity: f64,
}

impl Annotator {
    /// Crowd annotator for the doxing task (κ ≈ 0.52, disagreement ≈ 3.9 %).
    pub fn crowd_dox(id: impl Into<String>) -> Self {
        Annotator {
            id: id.into(),
            sensitivity: 0.93,
            specificity: 0.985,
        }
    }

    /// Crowd annotator for the call-to-harassment task (κ ≈ 0.35,
    /// disagreement ≈ 18.7 % — the harder task).
    pub fn crowd_cth(id: impl Into<String>) -> Self {
        Annotator {
            id: id.into(),
            sensitivity: 0.80,
            specificity: 0.91,
        }
    }

    /// Domain-expert annotator (κ ≈ 0.85–0.89).
    pub fn expert(id: impl Into<String>) -> Self {
        Annotator {
            id: id.into(),
            sensitivity: 0.97,
            specificity: 0.99,
        }
    }

    /// A perfect oracle (useful in tests).
    pub fn oracle(id: impl Into<String>) -> Self {
        Annotator {
            id: id.into(),
            sensitivity: 1.0,
            specificity: 1.0,
        }
    }

    /// Produces a judgment for a document with planted truth `truth`.
    pub fn annotate(&self, truth: bool, rng: &mut StdRng) -> bool {
        if truth {
            rng.gen_bool(self.sensitivity)
        } else {
            !rng.gen_bool(self.specificity)
        }
    }

    /// Expected probability of a *correct* judgment at a given base rate.
    pub fn expected_accuracy(&self, base_rate: f64) -> f64 {
        base_rate * self.sensitivity + (1.0 - base_rate) * self.specificity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(55)
    }

    #[test]
    fn oracle_is_always_right() {
        let a = Annotator::oracle("o");
        let mut r = rng();
        for _ in 0..100 {
            assert!(a.annotate(true, &mut r));
            assert!(!a.annotate(false, &mut r));
        }
    }

    #[test]
    fn error_rates_match_parameters() {
        let a = Annotator {
            id: "t".into(),
            sensitivity: 0.8,
            specificity: 0.9,
        };
        let mut r = rng();
        let n = 50_000;
        let tp = (0..n).filter(|_| a.annotate(true, &mut r)).count();
        let tn = (0..n).filter(|_| !a.annotate(false, &mut r)).count();
        assert!((tp as f64 / n as f64 - 0.8).abs() < 0.01);
        assert!((tn as f64 / n as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn crowd_dox_pair_disagreement_near_paper() {
        // Two independent crowd annotators; base rate like the dox training
        // set (~5 % positive).
        let a = Annotator::crowd_dox("a");
        let b = Annotator::crowd_dox("b");
        let mut r = rng();
        let n = 50_000;
        let mut disagreements = 0;
        for i in 0..n {
            let truth = i % 20 == 0;
            if a.annotate(truth, &mut r) != b.annotate(truth, &mut r) {
                disagreements += 1;
            }
        }
        let rate = disagreements as f64 / n as f64;
        assert!((rate - 0.0394).abs() < 0.015, "dox disagreement = {rate}");
    }

    #[test]
    fn crowd_cth_pair_disagreement_near_paper() {
        let a = Annotator::crowd_cth("a");
        let b = Annotator::crowd_cth("b");
        let mut r = rng();
        let n = 50_000;
        let mut disagreements = 0;
        for i in 0..n {
            let truth = i % 15 == 0; // ~6.7 % positive, like the CTH task
            if a.annotate(truth, &mut r) != b.annotate(truth, &mut r) {
                disagreements += 1;
            }
        }
        let rate = disagreements as f64 / n as f64;
        assert!((rate - 0.1866).abs() < 0.03, "cth disagreement = {rate}");
    }

    #[test]
    fn expected_accuracy_formula() {
        let a = Annotator {
            id: "t".into(),
            sensitivity: 0.9,
            specificity: 0.8,
        };
        assert!((a.expected_accuracy(0.5) - 0.85).abs() < 1e-12);
        assert!((a.expected_accuracy(0.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn experts_beat_crowd() {
        let e = Annotator::expert("e");
        let c = Annotator::crowd_cth("c");
        assert!(e.expected_accuracy(0.1) > c.expected_accuracy(0.1));
    }
}
