//! # incite-annotate
//!
//! Annotation-workflow simulation, standing in for the paper's human
//! annotators (§5.3; see DESIGN.md §2). Annotation is modeled as a noise
//! process over the corpus generator's planted ground truth:
//!
//! * [`annotator`] — noisy annotator models with calibrated accuracy
//!   presets (crowd vs domain expert, per task).
//! * [`qualification`] — the crowd-worker gate: ≥ 90 % on a 10-question
//!   screening test to enter, retest every tenth document, removal below
//!   85 %.
//! * [`workflow`] — the two-annotator + tie-break consensus protocol, with
//!   disagreement accounting and Cohen's kappa over the first two passes.

pub mod annotator;
pub mod qualification;
pub mod workflow;

pub use annotator::Annotator;
pub use qualification::{Qualification, QualificationConfig};
pub use workflow::{annotate_batch, BatchOutcome};
