//! Crowd-worker qualification and retesting (§5.3).
//!
//! "Annotators were allowed to participate in the study if they received a
//! score of 90 % or above on an initial set of 10 randomly selected posts
//! from our set of initial annotations, and annotators were retested every
//! tenth document. We removed annotators from the task if their score fell
//! below 85 %."

use crate::annotator::Annotator;
use rand::rngs::StdRng;
use rand::Rng;

/// Gate parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct QualificationConfig {
    /// Screening-test length.
    pub screening_questions: usize,
    /// Minimum screening score to enter (0.90).
    pub entry_score: f64,
    /// Removal threshold on the running test score (0.85).
    pub retention_score: f64,
    /// Insert a test question every N documents (10).
    pub retest_every: usize,
}

impl Default for QualificationConfig {
    fn default() -> Self {
        QualificationConfig {
            screening_questions: 10,
            entry_score: 0.90,
            retention_score: 0.85,
            retest_every: 10,
        }
    }
}

/// Tracks one annotator's qualification state through a task.
#[derive(Debug, Clone)]
pub struct Qualification {
    config: QualificationConfig,
    tests_taken: usize,
    tests_passed: usize,
    docs_since_test: usize,
    active: bool,
}

impl Qualification {
    /// Runs the entry screening; returns `None` if the annotator fails it.
    pub fn screen(
        annotator: &Annotator,
        config: QualificationConfig,
        base_rate: f64,
        rng: &mut StdRng,
    ) -> Option<Qualification> {
        let mut correct = 0;
        for _ in 0..config.screening_questions {
            let truth = rng.gen_bool(base_rate);
            if annotator.annotate(truth, rng) == truth {
                correct += 1;
            }
        }
        let score = correct as f64 / config.screening_questions.max(1) as f64;
        if score + 1e-12 >= config.entry_score {
            Some(Qualification {
                config,
                tests_taken: 0,
                tests_passed: 0,
                docs_since_test: 0,
                active: true,
            })
        } else {
            None
        }
    }

    /// Whether the annotator is still allowed on the task.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Running test score (1.0 before any retest).
    pub fn running_score(&self) -> f64 {
        if self.tests_taken == 0 {
            1.0
        } else {
            self.tests_passed as f64 / self.tests_taken as f64
        }
    }

    /// Records one annotated document; every `retest_every` documents a
    /// hidden test question is injected and scored. Returns `false` when
    /// the annotator has been removed.
    pub fn record_document(
        &mut self,
        annotator: &Annotator,
        base_rate: f64,
        rng: &mut StdRng,
    ) -> bool {
        if !self.active {
            return false;
        }
        self.docs_since_test += 1;
        if self.docs_since_test >= self.config.retest_every {
            self.docs_since_test = 0;
            let truth = rng.gen_bool(base_rate);
            self.tests_taken += 1;
            if annotator.annotate(truth, rng) == truth {
                self.tests_passed += 1;
            }
            if self.running_score() < self.config.retention_score {
                self.active = false;
            }
        }
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn oracle_always_qualifies_and_survives() {
        let a = Annotator::oracle("o");
        let mut r = rng();
        let mut q = Qualification::screen(&a, QualificationConfig::default(), 0.3, &mut r).unwrap();
        for _ in 0..500 {
            assert!(q.record_document(&a, 0.3, &mut r));
        }
        assert_eq!(q.running_score(), 1.0);
    }

    #[test]
    fn bad_annotators_fail_screening_often() {
        let bad = Annotator {
            id: "bad".into(),
            sensitivity: 0.5,
            specificity: 0.5,
        };
        let mut r = rng();
        let passes = (0..200)
            .filter(|_| {
                Qualification::screen(&bad, QualificationConfig::default(), 0.5, &mut r).is_some()
            })
            .count();
        // P(≥9/10 correct at 50 %) ≈ 1.1 %.
        assert!(passes < 20, "bad annotator passed {passes}/200 screenings");
    }

    #[test]
    fn mediocre_annotators_get_removed_over_time() {
        let mediocre = Annotator {
            id: "m".into(),
            sensitivity: 0.6,
            specificity: 0.6,
        };
        let mut r = rng();
        let mut removed = 0;
        let trials = 50;
        for _ in 0..trials {
            // Skip screening; start them active to test retention alone.
            let mut q = Qualification {
                config: QualificationConfig::default(),
                tests_taken: 0,
                tests_passed: 0,
                docs_since_test: 0,
                active: true,
            };
            for _ in 0..300 {
                if !q.record_document(&mediocre, 0.5, &mut r) {
                    removed += 1;
                    break;
                }
            }
        }
        assert!(removed > trials / 2, "only {removed}/{trials} removed");
    }

    #[test]
    fn retest_cadence_is_every_tenth_document() {
        let a = Annotator::oracle("o");
        let mut r = rng();
        let mut q = Qualification::screen(&a, QualificationConfig::default(), 0.5, &mut r).unwrap();
        for _ in 0..9 {
            q.record_document(&a, 0.5, &mut r);
        }
        assert_eq!(q.tests_taken, 0);
        q.record_document(&a, 0.5, &mut r);
        assert_eq!(q.tests_taken, 1);
        for _ in 0..10 {
            q.record_document(&a, 0.5, &mut r);
        }
        assert_eq!(q.tests_taken, 2);
    }

    #[test]
    fn removed_annotators_stay_removed() {
        let a = Annotator::oracle("o");
        let mut r = rng();
        let mut q = Qualification {
            config: QualificationConfig::default(),
            tests_taken: 10,
            tests_passed: 0,
            docs_since_test: 9,
            active: true,
        };
        // Next document triggers a retest; even a pass keeps score 1/11 < 0.85.
        assert!(!q.record_document(&a, 0.5, &mut r));
        assert!(!q.is_active());
        assert!(!q.record_document(&a, 0.5, &mut r));
    }
}
