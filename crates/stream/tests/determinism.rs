//! The stream determinism contract, end to end:
//!
//! 1. rankings are byte-identical at 1, 2 and 8 threads;
//! 2. a split run (checkpoint after a few epochs, resume in a fresh
//!    invocation) reproduces the uninterrupted run byte for byte;
//! 3. with `--features failpoints`, a kill-point sweep crashes the watch
//!    loop on both sides of every early checkpoint boundary
//!    (`stream-mid-epoch-N` before the save, `stream-after-epoch-N`
//!    after it), resumes disarmed, and demands byte-identical rankings —
//!    the same discipline as the core pipeline's crash-recovery sweep.

use incite_corpus::{generate, Corpus, CorpusConfig};
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};
use incite_stream::{run_watch, simulate, EventStream, RankerConfig, SimConfig, WatchConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn corpus() -> Corpus {
    generate(&CorpusConfig::tiny(404))
}

fn state_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("incite-stream-sweep-{tag}-{}", std::process::id()))
}

struct Fixture {
    stream: EventStream,
    texts: BTreeMap<u64, String>,
    classifier: TextClassifier,
}

impl Fixture {
    fn new() -> Self {
        let corpus = corpus();
        let stream = simulate(&corpus, &SimConfig::default());
        let texts: BTreeMap<u64, String> = corpus
            .documents
            .iter()
            .map(|d| (d.id.0, d.text.clone()))
            .collect();
        let labeled: Vec<(String, bool)> = corpus
            .documents
            .iter()
            .take(800)
            .map(|d| (d.text.clone(), d.truth.is_cth))
            .collect();
        let refs: Vec<(&str, bool)> = labeled.iter().map(|(t, y)| (t.as_str(), *y)).collect();
        let classifier = TextClassifier::train(
            refs.iter().copied(),
            FeaturizerConfig::default(),
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        Fixture {
            stream,
            texts,
            classifier,
        }
    }

    fn doc_texts(&self) -> BTreeMap<u64, &str> {
        self.texts.iter().map(|(id, t)| (*id, t.as_str())).collect()
    }

    fn config(&self, threads: usize) -> WatchConfig {
        WatchConfig {
            ranker: RankerConfig {
                threads,
                epoch_len: 2048,
                ..RankerConfig::default()
            },
            ..WatchConfig::default()
        }
    }
}

#[test]
fn rankings_are_byte_identical_across_thread_counts() {
    let fx = Fixture::new();
    let doc_texts = fx.doc_texts();
    let mut rendered: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        let outcome = run_watch(&fx.stream, &doc_texts, &fx.classifier, &fx.config(threads))
            .expect("watch run");
        assert!(outcome.epochs > 2, "stream too short to exercise epochs");
        assert!(
            outcome.rankings.contains("target "),
            "no targets ranked at {threads} threads"
        );
        rendered.push(outcome.rankings);
    }
    assert_eq!(rendered[0], rendered[1], "1 vs 2 threads diverged");
    assert_eq!(rendered[0], rendered[2], "1 vs 8 threads diverged");
}

#[test]
fn split_run_resume_is_byte_identical() {
    let fx = Fixture::new();
    let doc_texts = fx.doc_texts();
    let reference = run_watch(&fx.stream, &doc_texts, &fx.classifier, &fx.config(2))
        .expect("uninterrupted run");

    let dir = state_dir("split");
    std::fs::remove_dir_all(&dir).ok();
    // First invocation: a few checkpointed epochs, then stop.
    let mut first = fx.config(1);
    first.state_dir = Some(dir.clone());
    first.max_epochs = Some(2);
    let partial = run_watch(&fx.stream, &doc_texts, &fx.classifier, &first).expect("partial run");
    assert_eq!(partial.epochs, 2);
    assert!(partial.resumed_at.is_none());

    // Second invocation: resumes from the checkpoint, different thread
    // count, runs to the end.
    let mut second = fx.config(4);
    second.state_dir = Some(dir.clone());
    let resumed = run_watch(&fx.stream, &doc_texts, &fx.classifier, &second).expect("resumed run");
    assert_eq!(resumed.resumed_at, Some(partial.events as u64));
    assert_eq!(resumed.epochs, reference.epochs);
    assert_eq!(
        resumed.rankings, reference.rankings,
        "resumed rankings diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash on both sides of each early checkpoint boundary and resume.
/// `stream-mid-epoch-N` fires with epoch N computed but unsaved (resume
/// replays it); `stream-after-epoch-N` fires with epoch N durable
/// (resume skips it). Either way the final rankings must match the
/// uninterrupted run byte for byte.
#[cfg(feature = "failpoints")]
#[test]
fn kill_resume_sweep_is_byte_identical() {
    use incite_stream::StreamError;

    let fx = Fixture::new();
    let doc_texts = fx.doc_texts();
    let reference = run_watch(&fx.stream, &doc_texts, &fx.classifier, &fx.config(2))
        .expect("uninterrupted run");

    let sites: Vec<String> = (1..=3)
        .flat_map(|epoch| {
            [
                format!("stream-mid-epoch-{epoch}"),
                format!("stream-after-epoch-{epoch}"),
            ]
        })
        .collect();
    for site in &sites {
        let dir = state_dir(&format!("kill-{site}"));
        std::fs::remove_dir_all(&dir).ok();

        // Crash: the armed site aborts the watch loop exactly there.
        let mut armed = fx.config(2);
        armed.state_dir = Some(dir.clone());
        armed.failpoints.arm(site);
        match run_watch(&fx.stream, &doc_texts, &fx.classifier, &armed) {
            Err(StreamError::Fault(fault)) => assert_eq!(&fault.site, site),
            other => panic!("site {site}: expected injected fault, got {other:?}"),
        }

        // Resume: same state directory, disarmed, to the end.
        let mut disarmed = fx.config(2);
        disarmed.state_dir = Some(dir.clone());
        let recovered = run_watch(&fx.stream, &doc_texts, &fx.classifier, &disarmed)
            .unwrap_or_else(|e| panic!("site {site}: resume failed: {e}"));
        // mid-epoch-1 dies before the first save: nothing to resume from.
        if site != "stream-mid-epoch-1" {
            assert!(
                recovered.resumed_at.is_some(),
                "site {site}: expected a checkpoint to resume from"
            );
        }
        assert_eq!(
            recovered.rankings, reference.rankings,
            "site {site}: recovered rankings diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
