//! The streaming threat ranker: two-axis scoring on the toxicity ×
//! topic-overlap plane.
//!
//! Events are consumed in fixed-size epochs. Each epoch:
//!
//! 1. scores every newly-posted document's toxicity through the same
//!    [`ScoringEngine::score_texts`] micro-batch path serve uses;
//! 2. folds each document into a [`TopicFingerprint`] (parallel,
//!    slot-indexed, deterministic);
//! 3. applies events **sequentially in stream order** — follower graph
//!    updates, per-actor history profiles, and audience-exposure
//!    snapshots for amplifications of targeted documents;
//! 4. computes exposure overlaps in parallel (`map_indexed`, one slot
//!    per exposure);
//! 5. folds admissions into per-target ranked lists under a per-target
//!    adaptive threshold ladder built on [`ThresholdConfig`]'s candidate
//!    grid.
//!
//! Every parallel step writes slot `i` from input `i` alone; every
//! cross-event fold is sequential; all maps are `BTreeMap`/`BTreeSet`.
//! Rankings are therefore byte-identical at any thread count.
//!
//! The ranker never reads ground truth: targets come from the post
//! events' platform metadata (the @-mention), toxicity from the
//! checkpointed classifier, overlap from observed posting history.

use crate::event::{EventKind, EventStream};
use crate::StreamError;
use incite_core::engine::ScoringEngine;
use incite_core::parallel::map_indexed;
use incite_core::threshold::ThresholdConfig;
use incite_ml::{TextClassifier, TopicFingerprint};
use incite_textkit::fnv1a;
use std::collections::{BTreeMap, BTreeSet};

/// Ranker knobs. The defaults are what `incite watch` ships.
#[derive(Debug, Clone)]
pub struct RankerConfig {
    /// Events consumed per epoch (also the checkpoint cadence).
    pub epoch_len: usize,
    /// Ranked entries kept per target.
    pub top_k: usize,
    /// Recent documents remembered per actor as overlap evidence.
    pub history_cap: usize,
    /// Exposures per target between threshold-ladder adjustments.
    pub adaptive_window: u32,
    /// The candidate grid and precision targets for the adaptive ladder
    /// (reuses the §5.5 threshold-selection parameters).
    pub thresholds: ThresholdConfig,
    /// Worker threads for the parallel steps (1 = serial).
    pub threads: usize,
}

impl Default for RankerConfig {
    fn default() -> Self {
        RankerConfig {
            epoch_len: 256,
            top_k: 10,
            history_cap: 8,
            adaptive_window: 32,
            thresholds: ThresholdConfig::default(),
            threads: 1,
        }
    }
}

impl RankerConfig {
    /// Fingerprint binding checkpointed state to the exact ranking
    /// semantics (thread count excluded: it must not change results).
    pub fn fingerprint(&self) -> String {
        let t = &self.thresholds;
        let text = format!(
            "epoch={};top_k={};history={};window={};target={};slack={};cands={:?}",
            self.epoch_len,
            self.top_k,
            self.history_cap,
            self.adaptive_window,
            t.target_precision,
            t.precision_slack,
            t.candidates
        );
        format!("{:016x}", fnv1a(text.as_bytes(), 0x7a11_5eed))
    }
}

/// One ranked piece of evidence: an audience member newly exposed to a
/// targeted document, with both axis scores. Scores are stored as raw
/// f32 bits so serialized state is byte-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreatEntry {
    /// The amplify event that caused the exposure.
    pub event: u64,
    /// The amplified document.
    pub doc: u64,
    /// The newly-exposed audience member.
    pub audience: u32,
    /// Classifier toxicity of the document (f32 bits).
    pub toxicity_bits: u32,
    /// Topic overlap between the document and the member's history (f32 bits).
    pub overlap_bits: u32,
    /// toxicity × overlap (f32 bits) — the ranking key.
    pub threat_bits: u32,
    /// The member's recent documents contributing to the overlap.
    pub contributors: Vec<u64>,
}

impl ThreatEntry {
    pub fn toxicity(&self) -> f32 {
        f32::from_bits(self.toxicity_bits)
    }
    pub fn overlap(&self) -> f32 {
        f32::from_bits(self.overlap_bits)
    }
    pub fn threat(&self) -> f32 {
        f32::from_bits(self.threat_bits)
    }
}

/// Per-actor streaming state.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActorState {
    /// Cumulative topic profile of everything the actor posted.
    pub(crate) fingerprint: TopicFingerprint,
    /// Most recent posted doc ids (bounded by `history_cap`).
    pub(crate) history: Vec<u64>,
    /// Total posts observed.
    pub(crate) posts: u64,
}

/// Per-document streaming state.
#[derive(Debug, Clone)]
pub(crate) struct DocState {
    pub(crate) author: u32,
    pub(crate) target: Option<u32>,
    pub(crate) toxicity_bits: u32,
    pub(crate) fingerprint: TopicFingerprint,
    /// Actors already exposed (the author, plus every amplified audience).
    pub(crate) exposed: BTreeSet<u32>,
}

/// Per-target ranking state with its adaptive threshold ladder.
#[derive(Debug, Clone, Default)]
pub(crate) struct TargetState {
    /// Index into `ThresholdConfig::candidates`.
    pub(crate) ladder_idx: usize,
    /// Exposures observed in the current adaptive window.
    pub(crate) seen: u32,
    /// Exposures admitted in the current adaptive window.
    pub(crate) admitted: u32,
    /// Ranked evidence, best first, at most `top_k`.
    pub(crate) entries: Vec<ThreatEntry>,
}

/// An exposure snapshot taken during sequential event application; the
/// overlap is computed afterwards in parallel.
struct Exposure {
    event: u64,
    doc: u64,
    target: u32,
    audience: u32,
    toxicity_bits: u32,
    doc_fingerprint: TopicFingerprint,
    member_fingerprint: TopicFingerprint,
    contributors: Vec<u64>,
}

/// The streaming ranker. See the module docs for the epoch pipeline.
#[derive(Debug, Clone)]
pub struct ThreatRanker {
    pub(crate) config: RankerConfig,
    pub(crate) actors: Vec<ActorState>,
    /// followee → followers.
    pub(crate) follows: BTreeMap<u32, BTreeSet<u32>>,
    pub(crate) docs: BTreeMap<u64, DocState>,
    pub(crate) targets: BTreeMap<u32, TargetState>,
    /// Next unprocessed stream position.
    pub(crate) next_event: usize,
    pub(crate) epochs_done: u64,
}

impl ThreatRanker {
    /// A fresh ranker for a stream with `n_actors` actors.
    pub fn new(config: RankerConfig, n_actors: usize) -> Self {
        ThreatRanker {
            config,
            actors: vec![ActorState::default(); n_actors],
            follows: BTreeMap::new(),
            docs: BTreeMap::new(),
            targets: BTreeMap::new(),
            next_event: 0,
            epochs_done: 0,
        }
    }

    pub fn config(&self) -> &RankerConfig {
        &self.config
    }

    /// Stream position of the next unprocessed event.
    pub fn next_event(&self) -> usize {
        self.next_event
    }

    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// Ranked entries per target id (best first).
    pub fn rankings(&self) -> impl Iterator<Item = (u32, &[ThreatEntry])> {
        self.targets
            .iter()
            .map(|(id, state)| (*id, state.entries.as_slice()))
    }

    /// Consumes the next epoch of events. Returns the number of events
    /// processed; zero means the stream is exhausted.
    pub fn process_epoch(
        &mut self,
        stream: &EventStream,
        doc_texts: &BTreeMap<u64, &str>,
        classifier: &TextClassifier,
    ) -> Result<usize, StreamError> {
        let start = self.next_event;
        let end = (start + self.config.epoch_len).min(stream.events.len());
        if start >= end {
            return Ok(0);
        }
        let epoch = &stream.events[start..end];
        let threads = self.config.threads;

        // 1+2. Score and fingerprint every document first posted in this
        // epoch, in first-appearance order.
        let mut fresh: Vec<u64> = Vec::new();
        let mut fresh_set: BTreeSet<u64> = BTreeSet::new();
        for event in epoch {
            if let EventKind::Post { doc, .. } = event.kind {
                if !self.docs.contains_key(&doc.0) && fresh_set.insert(doc.0) {
                    fresh.push(doc.0);
                }
            }
        }
        let mut texts: Vec<&str> = Vec::with_capacity(fresh.len());
        for doc in &fresh {
            let text = doc_texts
                .get(doc)
                .ok_or(StreamError::UnknownDoc { doc: *doc })?;
            texts.push(text);
        }
        let toxicity = ScoringEngine::score_texts(classifier, &texts, threads)?;
        let featurizer = classifier.featurizer();
        let fingerprints = map_indexed(texts.len(), threads, |i| {
            TopicFingerprint::from_features(&featurizer.features(texts[i]))
        })?;
        let mut scored: BTreeMap<u64, (u32, TopicFingerprint)> = BTreeMap::new();
        for (i, doc) in fresh.iter().enumerate() {
            scored.insert(*doc, (toxicity[i].to_bits(), fingerprints[i].clone()));
        }

        // 3. Apply events sequentially, snapshotting exposures.
        let mut exposures: Vec<Exposure> = Vec::new();
        for event in epoch {
            match event.kind {
                EventKind::Follow { follower, followee } => {
                    self.follows
                        .entry(followee.0)
                        .or_default()
                        .insert(follower.0);
                }
                EventKind::Post {
                    doc,
                    author,
                    target,
                } => {
                    if self.docs.contains_key(&doc.0) {
                        continue; // replayed post: idempotent
                    }
                    let (toxicity_bits, fingerprint) = scored
                        .get(&doc.0)
                        .cloned()
                        .ok_or(StreamError::UnknownDoc { doc: doc.0 })?;
                    let actor = self
                        .actors
                        .get_mut(author.0 as usize)
                        .ok_or(StreamError::UnknownActor { actor: author.0 })?;
                    actor.fingerprint.merge(&fingerprint);
                    if actor.history.len() >= self.config.history_cap {
                        actor.history.remove(0);
                    }
                    actor.history.push(doc.0);
                    actor.posts += 1;
                    let mut exposed = BTreeSet::new();
                    exposed.insert(author.0);
                    self.docs.insert(
                        doc.0,
                        DocState {
                            author: author.0,
                            target: target.map(|t| t.0),
                            toxicity_bits,
                            fingerprint,
                            exposed,
                        },
                    );
                }
                EventKind::Amplify { doc, amplifier } => {
                    let state =
                        self.docs
                            .get_mut(&doc.0)
                            .ok_or(StreamError::AmplifyBeforePost {
                                event: event.id.0,
                                doc: doc.0,
                            })?;
                    state.exposed.insert(amplifier.0);
                    let audience: Vec<u32> = self
                        .follows
                        .get(&amplifier.0)
                        .map(|followers| {
                            followers
                                .iter()
                                .copied()
                                .filter(|f| !state.exposed.contains(f))
                                .collect()
                        })
                        .unwrap_or_default();
                    for member in audience {
                        state.exposed.insert(member);
                        let Some(target) = state.target else { continue };
                        if member == target {
                            continue; // the target seeing it is not audience risk
                        }
                        let actor = self
                            .actors
                            .get(member as usize)
                            .ok_or(StreamError::UnknownActor { actor: member })?;
                        if actor.fingerprint.is_empty() {
                            continue; // no history: overlap is zero by definition
                        }
                        exposures.push(Exposure {
                            event: event.id.0,
                            doc: doc.0,
                            target,
                            audience: member,
                            toxicity_bits: state.toxicity_bits,
                            doc_fingerprint: state.fingerprint.clone(),
                            member_fingerprint: actor.fingerprint.clone(),
                            contributors: actor.history.clone(),
                        });
                    }
                }
            }
        }

        // 4. Overlaps in parallel: slot i from exposure i alone.
        let overlaps = map_indexed(exposures.len(), threads, |i| {
            exposures[i]
                .member_fingerprint
                .overlap(&exposures[i].doc_fingerprint)
        })?;

        // 5. Sequential fold into per-target rankings.
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for (exposure, overlap) in exposures.iter().zip(overlaps.iter()) {
            let target = self.targets.entry(exposure.target).or_default();
            let candidates = &self.config.thresholds.candidates;
            let threshold = candidates[target.ladder_idx.min(candidates.len() - 1)];
            target.seen += 1;
            let toxicity = f32::from_bits(exposure.toxicity_bits);
            if f64::from(toxicity) > threshold && *overlap > 0.0 {
                target.admitted += 1;
                let threat = toxicity * *overlap;
                target.entries.push(ThreatEntry {
                    event: exposure.event,
                    doc: exposure.doc,
                    audience: exposure.audience,
                    toxicity_bits: exposure.toxicity_bits,
                    overlap_bits: overlap.to_bits(),
                    threat_bits: threat.to_bits(),
                    contributors: exposure.contributors.clone(),
                });
                touched.insert(exposure.target);
            }
            if target.seen >= self.config.adaptive_window {
                let rate = f64::from(target.admitted) / f64::from(target.seen);
                let t = &self.config.thresholds;
                if rate > t.target_precision {
                    // Too permissive for review bandwidth: climb the ladder.
                    target.ladder_idx = (target.ladder_idx + 1).min(candidates.len() - 1);
                } else if rate < t.target_precision - t.precision_slack {
                    // Starving: probe lower, the §5.5 recall-protection move.
                    target.ladder_idx = target.ladder_idx.saturating_sub(1);
                }
                target.seen = 0;
                target.admitted = 0;
            }
        }
        for id in touched {
            if let Some(target) = self.targets.get_mut(&id) {
                target.entries.sort_by(|a, b| {
                    b.threat()
                        .total_cmp(&a.threat())
                        .then(a.event.cmp(&b.event))
                        .then(a.audience.cmp(&b.audience))
                });
                target.entries.truncate(self.config.top_k);
            }
        }

        self.next_event = end;
        self.epochs_done += 1;
        Ok(end - start)
    }

    /// Renders the ranked threat lists. Targets are ordered by their top
    /// entry's threat (descending, ties by actor id); every target line
    /// starts with `target ` (the smoke test greps for it).
    pub fn render_rankings(&self, actors: &[String]) -> String {
        let handle = |id: u32| -> &str {
            actors
                .get(id as usize)
                .map(|h| h.as_str())
                .unwrap_or("<unknown>")
        };
        let mut ordered: Vec<(&u32, &TargetState)> = self
            .targets
            .iter()
            .filter(|(_, state)| !state.entries.is_empty())
            .collect();
        ordered.sort_by(|(a_id, a), (b_id, b)| {
            let a_top = a.entries.first().map(|e| e.threat()).unwrap_or(0.0);
            let b_top = b.entries.first().map(|e| e.threat()).unwrap_or(0.0);
            b_top.total_cmp(&a_top).then(a_id.cmp(b_id))
        });
        let candidates = &self.config.thresholds.candidates;
        let mut out = String::new();
        out.push_str(&format!(
            "threat rankings: {} targets, {} events processed, {} epochs\n",
            ordered.len(),
            self.next_event,
            self.epochs_done
        ));
        for (id, state) in ordered {
            let threshold = candidates[state.ladder_idx.min(candidates.len() - 1)];
            out.push_str(&format!(
                "target {} entries={} threshold={}\n",
                handle(*id),
                state.entries.len(),
                threshold
            ));
            for entry in &state.entries {
                out.push_str(&format!(
                    "  threat={:.4} tox={:.4} overlap={:.4} event={} doc={} audience={} contributors={}\n",
                    entry.threat(),
                    entry.toxicity(),
                    entry.overlap(),
                    entry.event,
                    entry.doc,
                    handle(entry.audience),
                    entry
                        .contributors
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate, SimConfig};
    use incite_corpus::{generate, CorpusConfig};
    use incite_ml::{FeaturizerConfig, TrainConfig};

    fn setup() -> (EventStream, BTreeMap<u64, String>, TextClassifier) {
        let corpus = generate(&CorpusConfig::tiny(404));
        let stream = simulate(&corpus, &SimConfig::default());
        let texts: BTreeMap<u64, String> = corpus
            .documents
            .iter()
            .map(|d| (d.id.0, d.text.clone()))
            .collect();
        let labeled: Vec<(String, bool)> = corpus
            .documents
            .iter()
            .take(800)
            .map(|d| (d.text.clone(), d.truth.is_cth))
            .collect();
        let refs: Vec<(&str, bool)> = labeled.iter().map(|(t, y)| (t.as_str(), *y)).collect();
        let classifier = TextClassifier::train(
            refs.iter().copied(),
            FeaturizerConfig::default(),
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        (stream, texts, classifier)
    }

    fn run_to_end(
        stream: &EventStream,
        texts: &BTreeMap<u64, String>,
        classifier: &TextClassifier,
        threads: usize,
    ) -> ThreatRanker {
        let doc_texts: BTreeMap<u64, &str> =
            texts.iter().map(|(id, t)| (*id, t.as_str())).collect();
        let mut ranker = ThreatRanker::new(
            RankerConfig {
                threads,
                epoch_len: 128,
                ..RankerConfig::default()
            },
            stream.actors.len(),
        );
        loop {
            let n = ranker
                .process_epoch(stream, &doc_texts, classifier)
                .expect("epoch");
            if n == 0 {
                break;
            }
        }
        ranker
    }

    #[test]
    fn rankings_are_thread_invariant() {
        let (stream, texts, classifier) = setup();
        let serial = run_to_end(&stream, &texts, &classifier, 1);
        let parallel = run_to_end(&stream, &texts, &classifier, 4);
        assert_eq!(
            serial.render_rankings(&stream.actors),
            parallel.render_rankings(&stream.actors)
        );
    }

    #[test]
    fn rankings_surface_targets_with_evidence() {
        let (stream, texts, classifier) = setup();
        let ranker = run_to_end(&stream, &texts, &classifier, 2);
        let rendered = ranker.render_rankings(&stream.actors);
        assert!(
            rendered.contains("target "),
            "no targets ranked:\n{rendered}"
        );
        let mut saw_entries = false;
        for (_, entries) in ranker.rankings() {
            for entry in entries {
                saw_entries = true;
                assert!(entry.threat() > 0.0);
                assert!(entry.overlap() > 0.0);
                assert!((0.0..=1.0).contains(&entry.overlap()));
                assert!(!entry.contributors.is_empty());
                // Ranking key is the product of the two axes.
                let product = entry.toxicity() * entry.overlap();
                assert_eq!(product.to_bits(), entry.threat_bits);
            }
        }
        assert!(saw_entries, "no threat entries admitted");
    }

    #[test]
    fn amplify_before_post_is_typed() {
        let (stream, texts, classifier) = setup();
        let doc_texts: BTreeMap<u64, &str> =
            texts.iter().map(|(id, t)| (*id, t.as_str())).collect();
        // Find the first amplify and start the stream there: its post
        // event is missing, which must be a typed refusal.
        let first_amp = stream
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Amplify { .. }))
            .expect("stream has amplifies");
        let truncated = EventStream {
            actors: stream.actors.clone(),
            events: stream.events[first_amp..]
                .iter()
                .enumerate()
                .map(|(i, e)| crate::event::StreamEvent {
                    id: crate::event::EventId(i as u64),
                    timestamp: e.timestamp,
                    kind: e.kind,
                })
                .collect(),
        };
        let mut ranker = ThreatRanker::new(RankerConfig::default(), truncated.actors.len());
        let mut result = Ok(1);
        while let Ok(n) = result {
            if n == 0 {
                break;
            }
            result = ranker.process_epoch(&truncated, &doc_texts, &classifier);
        }
        assert!(matches!(result, Err(StreamError::AmplifyBeforePost { .. })));
    }
}
