//! Seeded, deterministic event simulator over the corpus' persona model.
//!
//! The generator produces documents with authors, timestamps and ground
//! truth; this module extends that world model with the *dynamics* the
//! paper could only observe indirectly: who follows whom, and which
//! posts get quoted/reposted into new audiences. The simulator is the
//! world, so it may read ground truth (targeted incitements amplify
//! harder — the coordination the paper measures); the ranker downstream
//! sees only events and text, never truth.
//!
//! Determinism: one `StdRng` seeded from `SimConfig::seed`, documents
//! visited in `(timestamp, id)` order, actor table sorted. Same seed +
//! same corpus → byte-identical stream.

use crate::event::{ActorId, EventId, EventKind, EventStream, StreamEvent};
use incite_corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Simulator knobs. Defaults produce a stream roughly 3× the corpus'
/// document count: one post per document plus follows and amplifies.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; the only source of randomness.
    pub seed: u64,
    /// Mean follower count materialized when an actor first acts
    /// (uniform 1..=2*mean).
    pub follower_mean: u32,
    /// Probability a non-targeted document gets one amplification.
    pub benign_amplify: f64,
    /// Max amplifications of a targeted (CTH/dox) document (uniform 1..=max).
    pub hot_amplify: u32,
    /// Probability each document's arrival also spawns a follow event.
    pub follow_churn: f64,
    /// Truncate the stream to this many events after sorting (0 = all).
    pub max_events: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 7,
            follower_mean: 6,
            benign_amplify: 0.05,
            hot_amplify: 3,
            follow_churn: 0.10,
            max_events: 0,
        }
    }
}

/// Builds the deterministic event stream for a corpus.
pub fn simulate(corpus: &Corpus, config: &SimConfig) -> EventStream {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Actor table: every author plus every named target, sorted so ids
    // are stable regardless of document order.
    let mut handles: BTreeSet<&str> = BTreeSet::new();
    for doc in &corpus.documents {
        handles.insert(doc.author.as_str());
        if let Some(target) = &doc.truth.target_handle {
            handles.insert(target.as_str());
        }
    }
    let actors: Vec<String> = handles.iter().map(|h| h.to_string()).collect();
    let index: BTreeMap<&str, u32> = actors
        .iter()
        .enumerate()
        .map(|(i, h)| (h.as_str(), i as u32))
        .collect();
    let n = actors.len() as u32;

    // Documents in arrival order.
    let mut docs: Vec<_> = corpus.documents.iter().collect();
    docs.sort_by_key(|d| (d.timestamp, d.id.0));

    let mut events: Vec<(u64, EventKind)> = Vec::new();

    // Follower edges materialize lazily, the first time an actor acts
    // (posts or amplifies): a crawler learns an account's followers when
    // it first encounters the account. This keeps follow events
    // interleaved with posts, so a `max_events` prefix of the stream is
    // a balanced sample instead of a wall of graph bootstrap.
    let mut materialized: BTreeSet<u32> = BTreeSet::new();
    let mut ensure_followers =
        |actor: u32, ts: u64, rng: &mut StdRng, events: &mut Vec<(u64, EventKind)>| {
            if n < 2 || !materialized.insert(actor) {
                return;
            }
            let count = rng.gen_range(1..=config.follower_mean.max(1) * 2);
            for _ in 0..count {
                let follower = rng.gen_range(0..n);
                if follower != actor {
                    events.push((
                        ts,
                        EventKind::Follow {
                            follower: ActorId(follower),
                            followee: ActorId(actor),
                        },
                    ));
                }
            }
        };

    for doc in docs {
        let author = index[doc.author.as_str()];
        ensure_followers(author, doc.timestamp, &mut rng, &mut events);
        let target = doc
            .truth
            .target_handle
            .as_deref()
            .map(|h| ActorId(index[h]));
        events.push((
            doc.timestamp,
            EventKind::Post {
                doc: doc.id,
                author: ActorId(author),
                target,
            },
        ));

        // Targeted incitements amplify hard; benign posts rarely.
        let targeted = target.is_some() && (doc.truth.is_cth || doc.truth.is_dox);
        let amps = if targeted {
            rng.gen_range(1..=config.hot_amplify.max(1))
        } else if rng.gen_bool(config.benign_amplify) {
            1
        } else {
            0
        };
        for _ in 0..amps {
            if n < 2 {
                break;
            }
            let amplifier = loop {
                let a = rng.gen_range(0..n);
                if a != author {
                    break a;
                }
            };
            // The amplifier's followers must exist before the amplify
            // event; same timestamp as the post sorts stably before the
            // strictly-later amplification.
            ensure_followers(amplifier, doc.timestamp, &mut rng, &mut events);
            let delay = rng.gen_range(60..86_400u64);
            events.push((
                doc.timestamp + delay,
                EventKind::Amplify {
                    doc: doc.id,
                    amplifier: ActorId(amplifier),
                },
            ));
        }

        // Background graph churn keeps audiences shifting over time.
        if n >= 2 && rng.gen_bool(config.follow_churn) {
            let follower = rng.gen_range(0..n);
            let followee = loop {
                let f = rng.gen_range(0..n);
                if f != follower {
                    break f;
                }
            };
            events.push((
                doc.timestamp,
                EventKind::Follow {
                    follower: ActorId(follower),
                    followee: ActorId(followee),
                },
            ));
        }
    }

    // Stable sort keeps insertion order within a timestamp, so event ids
    // are a deterministic function of (corpus, config).
    events.sort_by_key(|(ts, _)| *ts);
    if config.max_events > 0 {
        events.truncate(config.max_events);
    }
    let events = events
        .into_iter()
        .enumerate()
        .map(|(i, (timestamp, kind))| StreamEvent {
            id: EventId(i as u64),
            timestamp,
            kind,
        })
        .collect();

    EventStream { actors, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    fn tiny_corpus() -> Corpus {
        generate(&CorpusConfig::tiny(404))
    }

    #[test]
    fn same_seed_same_stream() {
        let corpus = tiny_corpus();
        let config = SimConfig {
            max_events: 500,
            ..SimConfig::default()
        };
        let a = simulate(&corpus, &config);
        let b = simulate(&corpus, &config);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let corpus = tiny_corpus();
        let a = simulate(&corpus, &SimConfig::default());
        let b = simulate(
            &corpus,
            &SimConfig {
                seed: 8,
                ..SimConfig::default()
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn stream_is_time_ordered_and_roundtrips() {
        let corpus = tiny_corpus();
        let stream = simulate(
            &corpus,
            &SimConfig {
                max_events: 800,
                ..SimConfig::default()
            },
        );
        assert!(!stream.events.is_empty());
        for pair in stream.events.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
        for (i, event) in stream.events.iter().enumerate() {
            assert_eq!(event.id.0, i as u64);
        }
        let bytes = stream.encode().expect("encode");
        let back = EventStream::decode(&bytes).expect("decode");
        assert_eq!(back, stream);
    }

    #[test]
    fn targeted_documents_are_amplified() {
        let corpus = tiny_corpus();
        let stream = simulate(&corpus, &SimConfig::default());
        let mut amplified: BTreeSet<u64> = BTreeSet::new();
        for event in &stream.events {
            if let EventKind::Amplify { doc, .. } = event.kind {
                amplified.insert(doc.0);
            }
        }
        let targeted = corpus
            .documents
            .iter()
            .filter(|d| d.truth.target_handle.is_some() && (d.truth.is_cth || d.truth.is_dox))
            .count();
        let targeted_amplified = corpus
            .documents
            .iter()
            .filter(|d| {
                d.truth.target_handle.is_some()
                    && (d.truth.is_cth || d.truth.is_dox)
                    && amplified.contains(&d.id.0)
            })
            .count();
        // Every targeted incitement gets at least one amplification.
        assert_eq!(targeted_amplified, targeted);
        assert!(targeted > 0, "tiny corpus should contain targeted docs");
    }
}
