//! # incite-stream
//!
//! Streaming amplification events and two-axis threat ranking — the
//! `incite watch` subsystem (DESIGN.md §18). The batch pipeline answers
//! "which documents were incitements" after the fact; this crate answers
//! the operational question the paper's measurements motivate: *as
//! amplification happens, which targets are accumulating the riskiest
//! newly-exposed audiences?*
//!
//! * [`event`] — the typed event model (post / amplify / follow) and its
//!   validated JSONL codec.
//! * [`mod@simulate`] — a seeded, deterministic event simulator over the
//!   corpus' platform/persona model.
//! * [`ranker`] — the streaming threat ranker: toxicity via the same
//!   [`incite_core::ScoringEngine`] micro-batch path serve uses, topic
//!   overlap via [`incite_ml::TopicFingerprint`], ranked per-target
//!   threat lists on the toxicity × overlap plane with evidence.
//! * [`state`] — checkpoint/resume of ranker state through the
//!   `atomic_io` funnel.
//! * [`watch`] — the epoch loop tying it together, with failpoint sites
//!   at both sides of the checkpoint boundary for the kill/resume sweep.
//!
//! Determinism contract: rankings are byte-identical across thread
//! counts (per-epoch scoring uses `core::parallel::map_indexed`; every
//! cross-event fold is sequential in event order) and across kill/resume
//! at any checkpoint boundary.

pub mod event;
pub mod ranker;
pub mod simulate;
pub mod state;
pub mod watch;

pub use event::{ActorId, EventId, EventKind, EventStream, StreamEvent};
pub use ranker::{RankerConfig, ThreatEntry, ThreatRanker};
pub use simulate::{simulate, SimConfig};
pub use watch::{run_watch, WatchConfig, WatchOutcome};

use incite_core::checkpoint::CheckpointError;
use incite_core::failpoint::InjectedFault;
use incite_core::parallel::ScoreError;

/// Typed errors for the stream subsystem. Variants carry identifiers,
/// line numbers and counts — never document or event-line text (INC013).
#[derive(Debug)]
pub enum StreamError {
    /// Checkpoint I/O failed (wraps the atomic_io/checkpoint error).
    Checkpoint(CheckpointError),
    /// The scoring engine failed; `kind` is its stable error class.
    Score { kind: &'static str },
    /// An event referenced a document absent from the corpus.
    UnknownDoc { doc: u64 },
    /// An event referenced an actor outside the stream's actor table.
    UnknownActor { actor: u32 },
    /// An amplify event arrived before its document's post event.
    AmplifyBeforePost { event: u64, doc: u64 },
    /// An event line failed to parse or violated stream ordering.
    BadEventLine { line: usize },
    /// The input is not an event stream (missing or foreign header).
    MissingHeader,
    /// A checkpoint was written for a different stream or configuration.
    StateMismatch,
    /// Serialization failed (vendored serde refused a value).
    Encode,
    /// A deterministic fault injected at a failpoint site (test builds).
    Fault(InjectedFault),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            StreamError::Score { kind } => write!(f, "scoring failed: {kind}"),
            StreamError::UnknownDoc { doc } => {
                write!(f, "event references unknown document {doc}")
            }
            StreamError::UnknownActor { actor } => {
                write!(f, "event references actor {actor} outside the actor table")
            }
            StreamError::AmplifyBeforePost { event, doc } => write!(
                f,
                "event {event} amplifies document {doc} before its post event"
            ),
            StreamError::BadEventLine { line } => {
                write!(f, "malformed or out-of-order event at line {line}")
            }
            StreamError::MissingHeader => {
                write!(f, "input is not an incite event stream (bad header)")
            }
            StreamError::StateMismatch => write!(
                f,
                "checkpointed state was written for a different stream or config"
            ),
            StreamError::Encode => write!(f, "serialization failed"),
            StreamError::Fault(fault) => write!(f, "injected fault: {fault}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> Self {
        StreamError::Checkpoint(e)
    }
}

impl From<ScoreError> for StreamError {
    fn from(e: ScoreError) -> Self {
        StreamError::Score { kind: e.kind() }
    }
}

impl From<InjectedFault> for StreamError {
    fn from(fault: InjectedFault) -> Self {
        StreamError::Fault(fault)
    }
}
