//! Checkpoint/resume of ranker state through the `atomic_io` funnel.
//!
//! One `STREAM.ckpt` file per state directory, written with
//! [`atomic_io::write_hashed`] (tmp + rename + integrity footer) so a
//! kill at any instant leaves either the previous state or the new one,
//! never a torn file. The payload is JSON over flat rows — the vendored
//! serde derives structs and fieldless enums only — and every float is
//! stored as its raw `u32` bits, so a save/load cycle is byte-exact and
//! resumed runs produce byte-identical rankings.
//!
//! A state file is bound to the stream digest and the ranker-config
//! fingerprint it was written under; loading it against anything else is
//! a typed [`StreamError::StateMismatch`].

use crate::ranker::{ActorState, DocState, RankerConfig, TargetState, ThreatEntry, ThreatRanker};
use crate::StreamError;
use incite_core::checkpoint::atomic_io;
use incite_ml::TopicFingerprint;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Checkpoint file name inside the state directory.
pub const STATE_FILE: &str = "STREAM.ckpt";

const STATE_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct StateFile {
    version: u32,
    stream_digest: String,
    config_fingerprint: String,
    next_event: u64,
    epochs_done: u64,
    actors: Vec<ActorRow>,
    follows: Vec<FollowRow>,
    docs: Vec<DocRow>,
    targets: Vec<TargetRow>,
}

#[derive(Serialize, Deserialize)]
struct ActorRow {
    /// Fingerprint slots as raw f32 bits (byte-exact roundtrip).
    fingerprint: Vec<u32>,
    history: Vec<u64>,
    posts: u64,
}

#[derive(Serialize, Deserialize)]
struct FollowRow {
    followee: u32,
    followers: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
struct DocRow {
    doc: u64,
    author: u32,
    target: Option<u32>,
    toxicity_bits: u32,
    fingerprint: Vec<u32>,
    exposed: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
struct TargetRow {
    target: u32,
    ladder_idx: u64,
    seen: u32,
    admitted: u32,
    entries: Vec<EntryRow>,
}

#[derive(Serialize, Deserialize)]
struct EntryRow {
    event: u64,
    doc: u64,
    audience: u32,
    toxicity_bits: u32,
    overlap_bits: u32,
    threat_bits: u32,
    contributors: Vec<u64>,
}

fn pack_fingerprint(fp: &TopicFingerprint) -> Vec<u32> {
    fp.slots().iter().map(|s| s.to_bits()).collect()
}

fn unpack_fingerprint(bits: &[u32]) -> Result<TopicFingerprint, StreamError> {
    let slots: Vec<f32> = bits.iter().map(|b| f32::from_bits(*b)).collect();
    TopicFingerprint::from_slots(&slots).ok_or(StreamError::StateMismatch)
}

/// Saves the ranker to `state_dir/STREAM.ckpt`, bound to `stream_digest`.
/// Returns the payload's content hash.
pub fn save_state(
    state_dir: &Path,
    ranker: &ThreatRanker,
    stream_digest: &str,
) -> Result<String, StreamError> {
    let file = StateFile {
        version: STATE_VERSION,
        stream_digest: stream_digest.to_string(),
        config_fingerprint: ranker.config.fingerprint(),
        next_event: ranker.next_event as u64,
        epochs_done: ranker.epochs_done,
        actors: ranker
            .actors
            .iter()
            .map(|a| ActorRow {
                fingerprint: pack_fingerprint(&a.fingerprint),
                history: a.history.clone(),
                posts: a.posts,
            })
            .collect(),
        follows: ranker
            .follows
            .iter()
            .map(|(followee, followers)| FollowRow {
                followee: *followee,
                followers: followers.iter().copied().collect(),
            })
            .collect(),
        docs: ranker
            .docs
            .iter()
            .map(|(doc, state)| DocRow {
                doc: *doc,
                author: state.author,
                target: state.target,
                toxicity_bits: state.toxicity_bits,
                fingerprint: pack_fingerprint(&state.fingerprint),
                exposed: state.exposed.iter().copied().collect(),
            })
            .collect(),
        targets: ranker
            .targets
            .iter()
            .map(|(target, state)| TargetRow {
                target: *target,
                ladder_idx: state.ladder_idx as u64,
                seen: state.seen,
                admitted: state.admitted,
                entries: state
                    .entries
                    .iter()
                    .map(|e| EntryRow {
                        event: e.event,
                        doc: e.doc,
                        audience: e.audience,
                        toxicity_bits: e.toxicity_bits,
                        overlap_bits: e.overlap_bits,
                        threat_bits: e.threat_bits,
                        contributors: e.contributors.clone(),
                    })
                    .collect(),
            })
            .collect(),
    };
    let payload = serde_json::to_string(&file).map_err(|_| StreamError::Encode)?;
    let hash = atomic_io::write_hashed(&state_dir.join(STATE_FILE), payload.as_bytes())?;
    Ok(hash)
}

/// Loads a ranker from `state_dir/STREAM.ckpt`. The checkpoint must have
/// been written for the same stream digest and an equivalent config.
pub fn load_state(
    state_dir: &Path,
    config: RankerConfig,
    n_actors: usize,
    stream_digest: &str,
) -> Result<ThreatRanker, StreamError> {
    let payload = atomic_io::read_hashed(&state_dir.join(STATE_FILE))?;
    let text = std::str::from_utf8(&payload).map_err(|_| StreamError::StateMismatch)?;
    let file: StateFile = serde_json::from_str(text).map_err(|_| StreamError::StateMismatch)?;
    if file.version != STATE_VERSION
        || file.stream_digest != stream_digest
        || file.config_fingerprint != config.fingerprint()
        || file.actors.len() != n_actors
    {
        return Err(StreamError::StateMismatch);
    }

    let mut ranker = ThreatRanker::new(config, n_actors);
    ranker.next_event = file.next_event as usize;
    ranker.epochs_done = file.epochs_done;
    for (slot, row) in ranker.actors.iter_mut().zip(file.actors.iter()) {
        *slot = ActorState {
            fingerprint: unpack_fingerprint(&row.fingerprint)?,
            history: row.history.clone(),
            posts: row.posts,
        };
    }
    for row in &file.follows {
        let followers: BTreeSet<u32> = row.followers.iter().copied().collect();
        ranker.follows.insert(row.followee, followers);
    }
    let mut docs: BTreeMap<u64, DocState> = BTreeMap::new();
    for row in &file.docs {
        docs.insert(
            row.doc,
            DocState {
                author: row.author,
                target: row.target,
                toxicity_bits: row.toxicity_bits,
                fingerprint: unpack_fingerprint(&row.fingerprint)?,
                exposed: row.exposed.iter().copied().collect(),
            },
        );
    }
    ranker.docs = docs;
    for row in &file.targets {
        ranker.targets.insert(
            row.target,
            TargetState {
                ladder_idx: row.ladder_idx as usize,
                seen: row.seen,
                admitted: row.admitted,
                entries: row
                    .entries
                    .iter()
                    .map(|e| ThreatEntry {
                        event: e.event,
                        doc: e.doc,
                        audience: e.audience,
                        toxicity_bits: e.toxicity_bits,
                        overlap_bits: e.overlap_bits,
                        threat_bits: e.threat_bits,
                        contributors: e.contributors.clone(),
                    })
                    .collect(),
            },
        );
    }
    Ok(ranker)
}

/// Whether a state checkpoint exists in `state_dir`.
pub fn has_state(state_dir: &Path) -> bool {
    state_dir.join(STATE_FILE).is_file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranker::RankerConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("incite-stream-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() -> Result<(), StreamError> {
        let dir = temp_dir("roundtrip");
        let mut ranker = ThreatRanker::new(RankerConfig::default(), 3);
        ranker.next_event = 42;
        ranker.epochs_done = 2;
        ranker.follows.insert(1, [0u32, 2].into_iter().collect());
        ranker.actors[1].history = vec![10, 11];
        ranker.actors[1].posts = 2;
        ranker.targets.insert(
            2,
            TargetState {
                ladder_idx: 3,
                seen: 5,
                admitted: 1,
                entries: vec![ThreatEntry {
                    event: 9,
                    doc: 10,
                    audience: 0,
                    toxicity_bits: 0.75f32.to_bits(),
                    overlap_bits: 0.5f32.to_bits(),
                    threat_bits: 0.375f32.to_bits(),
                    contributors: vec![10, 11],
                }],
            },
        );

        save_state(&dir, &ranker, "digest-a")?;
        assert!(has_state(&dir));
        let loaded = load_state(&dir, RankerConfig::default(), 3, "digest-a")?;
        assert_eq!(loaded.next_event, 42);
        assert_eq!(loaded.epochs_done, 2);
        assert_eq!(loaded.follows, ranker.follows);
        assert_eq!(loaded.actors[1].history, vec![10, 11]);
        let target = loaded.targets.get(&2).expect("target restored");
        assert_eq!(target.ladder_idx, 3);
        assert_eq!(target.entries, ranker.targets[&2].entries);
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn mismatched_digest_or_config_is_refused() -> Result<(), StreamError> {
        let dir = temp_dir("mismatch");
        let ranker = ThreatRanker::new(RankerConfig::default(), 2);
        save_state(&dir, &ranker, "digest-a")?;
        assert!(matches!(
            load_state(&dir, RankerConfig::default(), 2, "digest-b"),
            Err(StreamError::StateMismatch)
        ));
        let other_config = RankerConfig {
            top_k: 99,
            ..RankerConfig::default()
        };
        assert!(matches!(
            load_state(&dir, other_config, 2, "digest-a"),
            Err(StreamError::StateMismatch)
        ));
        // Thread count is not part of the fingerprint: state written at
        // one thread count loads at another.
        let threads_config = RankerConfig {
            threads: 8,
            ..RankerConfig::default()
        };
        assert!(load_state(&dir, threads_config, 2, "digest-a").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
