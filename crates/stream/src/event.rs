//! The amplification-event model and its JSONL codec.
//!
//! A stream is a time-ordered sequence of three event kinds over the
//! corpus' platform/persona model:
//!
//! * **Post** — an actor publishes a document (optionally naming a target
//!   persona, the way platform metadata exposes an @-mention).
//! * **Amplify** — an actor quotes/reposts an earlier document, exposing
//!   it to their followers.
//! * **Follow** — a follower edge appears in the social graph.
//!
//! Events serialize one per JSONL line behind a header record naming the
//! actor table, using flat primitive records (the vendored serde supports
//! structs and fieldless enums only). The in-memory model is typed; the
//! codec converts at the boundary and refuses malformed lines with line
//! numbers, never line content (INC013).

use crate::StreamError;
use incite_corpus::DocId;
use incite_textkit::fnv1a;
use serde::{Deserialize, Serialize};

/// A persona in the stream: index into [`EventStream::actors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ActorId(pub u32);

/// A stream position: events are numbered 0.. in time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `author` publishes `doc`, optionally naming `target`.
    Post {
        doc: DocId,
        author: ActorId,
        target: Option<ActorId>,
    },
    /// `amplifier` quotes/reposts `doc` to their followers.
    Amplify { doc: DocId, amplifier: ActorId },
    /// `follower` starts following `followee`.
    Follow {
        follower: ActorId,
        followee: ActorId,
    },
}

/// One stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEvent {
    pub id: EventId,
    /// Unix timestamp (seconds); non-decreasing along the stream.
    pub timestamp: u64,
    pub kind: EventKind,
}

/// A complete event stream: the actor table plus time-ordered events.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    /// Actor handles; `ActorId(i)` names `actors[i]`.
    pub actors: Vec<String>,
    /// Events ordered by `(timestamp, id)` with `id` equal to position.
    pub events: Vec<StreamEvent>,
}

/// Magic tag on the header line, so a corpus JSONL fed to `watch` by
/// mistake is a typed refusal instead of a garbled parse.
const STREAM_TAG: &str = "incite-events-v1";

/// Seed for the stream digest (independent of the feature hashes).
const DIGEST_SEED: u64 = 0x0b5e_55ed_57ae_a41d;

#[derive(Serialize, Deserialize)]
struct HeaderRecord {
    stream: String,
    actors: Vec<String>,
}

/// Flat serde-facing record: `kind` selects which fields are meaningful
/// (`post`: actor=author, other=target; `amplify`: actor=amplifier;
/// `follow`: actor=follower, other=followee).
#[derive(Serialize, Deserialize)]
struct EventRecord {
    id: u64,
    ts: u64,
    kind: String,
    doc: Option<u64>,
    actor: u32,
    other: Option<u32>,
}

impl EventStream {
    /// Content digest of the actor table and every event, used to bind a
    /// checkpointed ranker state to the exact stream it was built from.
    pub fn digest(&self) -> String {
        let mut bytes = Vec::with_capacity(self.events.len() * 24 + 64);
        bytes.extend_from_slice(&(self.actors.len() as u64).to_le_bytes());
        for handle in &self.actors {
            bytes.extend_from_slice(&(handle.len() as u64).to_le_bytes());
            bytes.extend_from_slice(handle.as_bytes());
        }
        for event in &self.events {
            let (kind, doc, actor, other) = encode_kind(&event.kind);
            bytes.extend_from_slice(&event.id.0.to_le_bytes());
            bytes.extend_from_slice(&event.timestamp.to_le_bytes());
            bytes.push(kind);
            bytes.extend_from_slice(&doc.unwrap_or(u64::MAX).to_le_bytes());
            bytes.extend_from_slice(&actor.to_le_bytes());
            bytes.extend_from_slice(&other.unwrap_or(u32::MAX).to_le_bytes());
        }
        format!("{:016x}", fnv1a(&bytes, DIGEST_SEED))
    }

    /// Serializes the stream to JSONL bytes (header line + one event per
    /// line). Callers persist the buffer through the atomic-write funnel.
    pub fn encode(&self) -> Result<Vec<u8>, StreamError> {
        let mut out = Vec::with_capacity(self.events.len() * 64 + 256);
        let header = HeaderRecord {
            stream: STREAM_TAG.to_string(),
            actors: self.actors.clone(),
        };
        let line = serde_json::to_string(&header).map_err(|_| StreamError::Encode)?;
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
        for event in &self.events {
            let (kind, doc, actor, other) = encode_kind(&event.kind);
            let record = EventRecord {
                id: event.id.0,
                ts: event.timestamp,
                kind: kind_name(kind).to_string(),
                doc,
                actor,
                other,
            };
            let line = serde_json::to_string(&record).map_err(|_| StreamError::Encode)?;
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
        Ok(out)
    }

    /// Parses JSONL bytes back into a validated stream: header tag, UTF-8,
    /// per-line JSON, known kinds, in-table actor indices, sequential ids
    /// and non-decreasing timestamps. Errors carry line numbers only.
    pub fn decode(bytes: &[u8]) -> Result<EventStream, StreamError> {
        let text = std::str::from_utf8(bytes).map_err(|_| StreamError::MissingHeader)?;
        let mut lines = text.lines().enumerate();
        let (_, header_line) = lines.next().ok_or(StreamError::MissingHeader)?;
        let header: HeaderRecord =
            serde_json::from_str(header_line).map_err(|_| StreamError::MissingHeader)?;
        if header.stream != STREAM_TAG {
            return Err(StreamError::MissingHeader);
        }
        let n_actors = header.actors.len() as u32;

        let mut events = Vec::new();
        let mut last_ts = 0u64;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let record: EventRecord = serde_json::from_str(line)
                .map_err(|_| StreamError::BadEventLine { line: lineno })?;
            let check_actor = |a: u32| -> Result<ActorId, StreamError> {
                if a < n_actors {
                    Ok(ActorId(a))
                } else {
                    Err(StreamError::UnknownActor { actor: a })
                }
            };
            let kind = match record.kind.as_str() {
                "post" => EventKind::Post {
                    doc: DocId(
                        record
                            .doc
                            .ok_or(StreamError::BadEventLine { line: lineno })?,
                    ),
                    author: check_actor(record.actor)?,
                    target: record.other.map(check_actor).transpose()?,
                },
                "amplify" => EventKind::Amplify {
                    doc: DocId(
                        record
                            .doc
                            .ok_or(StreamError::BadEventLine { line: lineno })?,
                    ),
                    amplifier: check_actor(record.actor)?,
                },
                "follow" => EventKind::Follow {
                    follower: check_actor(record.actor)?,
                    followee: check_actor(
                        record
                            .other
                            .ok_or(StreamError::BadEventLine { line: lineno })?,
                    )?,
                },
                _ => return Err(StreamError::BadEventLine { line: lineno }),
            };
            if record.id != events.len() as u64 || record.ts < last_ts {
                return Err(StreamError::BadEventLine { line: lineno });
            }
            last_ts = record.ts;
            events.push(StreamEvent {
                id: EventId(record.id),
                timestamp: record.ts,
                kind,
            });
        }
        Ok(EventStream {
            actors: header.actors,
            events,
        })
    }
}

fn encode_kind(kind: &EventKind) -> (u8, Option<u64>, u32, Option<u32>) {
    match *kind {
        EventKind::Post {
            doc,
            author,
            target,
        } => (0, Some(doc.0), author.0, target.map(|t| t.0)),
        EventKind::Amplify { doc, amplifier } => (1, Some(doc.0), amplifier.0, None),
        EventKind::Follow { follower, followee } => (2, None, follower.0, Some(followee.0)),
    }
}

fn kind_name(kind: u8) -> &'static str {
    match kind {
        0 => "post",
        1 => "amplify",
        _ => "follow",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventStream {
        EventStream {
            actors: vec!["grimwolf1".to_string(), "palefrog2".to_string()],
            events: vec![
                StreamEvent {
                    id: EventId(0),
                    timestamp: 100,
                    kind: EventKind::Follow {
                        follower: ActorId(1),
                        followee: ActorId(0),
                    },
                },
                StreamEvent {
                    id: EventId(1),
                    timestamp: 200,
                    kind: EventKind::Post {
                        doc: DocId(7),
                        author: ActorId(0),
                        target: Some(ActorId(1)),
                    },
                },
                StreamEvent {
                    id: EventId(2),
                    timestamp: 260,
                    kind: EventKind::Amplify {
                        doc: DocId(7),
                        amplifier: ActorId(1),
                    },
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() -> Result<(), StreamError> {
        let stream = sample();
        let bytes = stream.encode()?;
        let back = EventStream::decode(&bytes)?;
        assert_eq!(back, stream);
        assert_eq!(back.digest(), stream.digest());
        Ok(())
    }

    #[test]
    fn digest_tracks_content() {
        let stream = sample();
        let mut other = stream.clone();
        other.events[2].timestamp += 1;
        assert_ne!(stream.digest(), other.digest());
    }

    #[test]
    fn decode_refuses_wrong_header() {
        let err = EventStream::decode(b"{\"not\":\"a header\"}\n");
        assert!(matches!(err, Err(StreamError::MissingHeader)));
        let err = EventStream::decode(b"");
        assert!(matches!(err, Err(StreamError::MissingHeader)));
    }

    #[test]
    fn decode_refuses_bad_lines_by_number_only() -> Result<(), StreamError> {
        let stream = sample();
        let mut bytes = stream.encode()?;
        bytes.extend_from_slice(b"{\"id\":3,\"ts\":1,\"kind\":\"post\",\"actor\":0}\n");
        // ts regressed below the last event's: refused with the file line
        // number (header is line 1, events start at line 2).
        match EventStream::decode(&bytes) {
            Err(StreamError::BadEventLine { line }) => assert_eq!(line, 5),
            other => panic!("expected BadEventLine, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn decode_refuses_out_of_table_actor() -> Result<(), StreamError> {
        let stream = sample();
        let bytes = stream.encode()?;
        let text = String::from_utf8(bytes).map_err(|_| StreamError::Encode)?;
        let bad = text.replace("\"actor\":1", "\"actor\":9");
        match EventStream::decode(bad.as_bytes()) {
            Err(StreamError::UnknownActor { actor: 9 }) => Ok(()),
            other => panic!("expected UnknownActor, got {other:?}"),
        }
    }
}
