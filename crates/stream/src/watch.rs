//! The `incite watch` epoch loop: consume events, checkpoint, repeat.
//!
//! Each iteration processes one epoch through the ranker, then saves
//! state through the `atomic_io` funnel. Failpoint sites bracket the
//! checkpoint boundary exactly the way the pipeline's sweep does:
//!
//! * `stream-mid-epoch-<n>` fires after epoch `n` is computed but
//!   *before* its checkpoint — a resume replays the whole epoch from the
//!   previous state and must discard the partial work cleanly;
//! * `stream-after-epoch-<n>` fires after the checkpoint — a resume
//!   skips the completed epoch.
//!
//! The kill/resume sweep in `tests/determinism.rs` iterates both site
//! families and asserts byte-identical rankings against an uninterrupted
//! run.

use crate::event::EventStream;
use crate::ranker::{RankerConfig, ThreatRanker};
use crate::state::{has_state, load_state, save_state};
use crate::StreamError;
use incite_core::failpoint::FailpointRegistry;
use incite_ml::TextClassifier;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Configuration for one watch run.
#[derive(Debug, Clone, Default)]
pub struct WatchConfig {
    pub ranker: RankerConfig,
    /// Checkpoint directory; `None` runs without persistence.
    pub state_dir: Option<PathBuf>,
    /// Fault-injection sites for the kill/resume sweep (empty = no-op).
    pub failpoints: FailpointRegistry,
    /// Stop after this many epochs *this invocation* (None = run to the
    /// end of the stream). Used by split-run resume tests and by callers
    /// that interleave watching with other work.
    pub max_epochs: Option<u64>,
}

/// What a watch run did.
#[derive(Debug, Clone)]
pub struct WatchOutcome {
    /// Total events consumed (including before a resume point).
    pub events: usize,
    /// Total epochs completed (including before a resume point).
    pub epochs: u64,
    /// Event position state was resumed from, if any.
    pub resumed_at: Option<u64>,
    /// Rendered per-target threat rankings.
    pub rankings: String,
}

/// Runs the watch loop over `stream`, resuming from `config.state_dir`
/// when a matching checkpoint exists. `doc_texts` maps every document id
/// the stream can post to its text.
pub fn run_watch(
    stream: &EventStream,
    doc_texts: &BTreeMap<u64, &str>,
    classifier: &TextClassifier,
    config: &WatchConfig,
) -> Result<WatchOutcome, StreamError> {
    let digest = stream.digest();
    let mut resumed_at = None;
    let mut ranker = match &config.state_dir {
        Some(dir) if has_state(dir) => {
            let ranker = load_state(dir, config.ranker.clone(), stream.actors.len(), &digest)?;
            resumed_at = Some(ranker.next_event() as u64);
            ranker
        }
        _ => ThreatRanker::new(config.ranker.clone(), stream.actors.len()),
    };

    let mut epochs_this_run = 0u64;
    loop {
        if config.max_epochs.is_some_and(|cap| epochs_this_run >= cap) {
            break;
        }
        let consumed = ranker.process_epoch(stream, doc_texts, classifier)?;
        if consumed == 0 {
            break;
        }
        epochs_this_run += 1;
        let epoch = ranker.epochs_done();
        // Partial-work site: state for this epoch exists only in memory.
        config
            .failpoints
            .check(&format!("stream-mid-epoch-{epoch}"))?;
        if let Some(dir) = &config.state_dir {
            save_state(dir, &ranker, &digest)?;
        }
        // Boundary site: the epoch is durably checkpointed.
        config
            .failpoints
            .check(&format!("stream-after-epoch-{epoch}"))?;
    }

    Ok(WatchOutcome {
        events: ranker.next_event(),
        epochs: ranker.epochs_done(),
        resumed_at,
        rankings: ranker.render_rankings(&stream.actors),
    })
}
