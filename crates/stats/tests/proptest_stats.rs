//! Property tests on the statistics substrate.

use incite_stats::classify::{auc_roc, BinaryConfusion};
use incite_stats::correction::{benjamini_hochberg, bh_adjusted, bonferroni};
use incite_stats::descriptive::{mean, median, quantile, std_dev};
use incite_stats::kappa::cohen_kappa_from_labels;
use incite_stats::special::{chi_square_sf, normal_cdf, student_t_two_sided};
use incite_stats::ttest::welch_t_test;
use incite_stats::Ecdf;
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..max_len)
}

proptest! {
    #[test]
    fn mean_between_min_and_max(data in finite_vec(50)) {
        prop_assume!(!data.is_empty());
        let m = mean(&data);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(data in finite_vec(50), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        prop_assume!(!data.is_empty());
        let (lo_q, hi_q) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantile(&data, lo_q) <= quantile(&data, hi_q) + 1e-9);
        prop_assert_eq!(quantile(&data, 0.5), median(&data));
    }

    #[test]
    fn std_dev_nonnegative(data in finite_vec(50)) {
        prop_assume!(data.len() >= 2);
        prop_assert!(std_dev(&data) >= 0.0 || std_dev(&data).is_nan());
    }

    #[test]
    fn welch_p_value_in_unit_interval(a in finite_vec(30), b in finite_vec(30)) {
        if let Some(r) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
            prop_assert!(r.df > 0.0);
        }
    }

    #[test]
    fn t_test_is_antisymmetric(a in finite_vec(20), b in finite_vec(20)) {
        if let (Some(ab), Some(ba)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
            prop_assert!((ab.t + ba.t).abs() < 1e-9);
            prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        }
    }

    #[test]
    fn tail_probabilities_are_probabilities(x in -50.0f64..50.0, df in 1.0f64..100.0) {
        let p = student_t_two_sided(x, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let c = chi_square_sf(x.abs(), df);
        prop_assert!((0.0..=1.0).contains(&c));
        let n = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    #[test]
    fn normal_cdf_is_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
    }

    #[test]
    fn bh_rejections_grow_with_q(pvals in prop::collection::vec(0.0f64..1.0, 1..30)) {
        let strict = benjamini_hochberg(&pvals, 0.01);
        let loose = benjamini_hochberg(&pvals, 0.2);
        for (s, l) in strict.iter().zip(&loose) {
            prop_assert!(!s || *l, "rejection lost when loosening q");
        }
        // Bonferroni is never more liberal than BH at equal alpha.
        let bonf = bonferroni(&pvals, 0.05);
        let bh = benjamini_hochberg(&pvals, 0.05);
        for (b, h) in bonf.iter().zip(&bh) {
            prop_assert!(!b || *h);
        }
    }

    #[test]
    fn bh_adjusted_within_unit_interval(pvals in prop::collection::vec(0.0f64..1.0, 0..30)) {
        for adj in bh_adjusted(&pvals) {
            prop_assert!((0.0..=1.0).contains(&adj));
        }
    }

    #[test]
    fn kappa_is_at_most_one(labels in prop::collection::vec((any::<bool>(), any::<bool>()), 1..100)) {
        let a: Vec<bool> = labels.iter().map(|(x, _)| *x).collect();
        let b: Vec<bool> = labels.iter().map(|(_, y)| *y).collect();
        if let Some(k) = cohen_kappa_from_labels(&a, &b) {
            prop_assert!(k <= 1.0 + 1e-12, "kappa = {k}");
            prop_assert!(k >= -1.0 - 1e-12, "kappa = {k}");
        }
    }

    #[test]
    fn auc_in_unit_interval(scored in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..100)) {
        let scores: Vec<f64> = scored.iter().map(|(s, _)| *s).collect();
        let labels: Vec<bool> = scored.iter().map(|(_, l)| *l).collect();
        if let Some(auc) = auc_roc(&scores, &labels) {
            prop_assert!((0.0..=1.0).contains(&auc));
            // Inverting scores inverts AUC.
            let inv: Vec<f64> = scores.iter().map(|s| 1.0 - s).collect();
            let auc_inv = auc_roc(&inv, &labels).unwrap();
            prop_assert!((auc + auc_inv - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn confusion_metrics_bounded(pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        let actual: Vec<bool> = pairs.iter().map(|(a, _)| *a).collect();
        let predicted: Vec<bool> = pairs.iter().map(|(_, p)| *p).collect();
        let c = BinaryConfusion::from_pairs(&actual, &predicted);
        prop_assert_eq!(c.total() as usize, pairs.len());
        let m = c.table_metrics();
        for s in [m.positive, m.negative, m.macro_avg] {
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
        }
    }

    #[test]
    fn ecdf_is_monotone_cdf(data in finite_vec(60), probes in prop::collection::vec(-1e6f64..1e6, 1..20)) {
        prop_assume!(!data.is_empty());
        let e = Ecdf::new(&data);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in sorted {
            let v = e.eval(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
    }
}
