//! Mann–Whitney U test (Wilcoxon rank-sum).
//!
//! The §6.3 thread-size comparisons use t-tests on log-transformed sizes;
//! the rank-sum test is the standard nonparametric robustness check for the
//! same question (are responses to one attack type stochastically larger
//! than the baseline?) without any distributional assumption. The
//! `sec6_3`-adjacent analyses use it to confirm the t-test conclusions.

use crate::special::normal_cdf;

/// The outcome of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Normal-approximation z score (tie-corrected).
    pub z: f64,
    /// Two-sided p-value (normal approximation; requires n ≳ 8 per group).
    pub p_value: f64,
    /// Common-language effect size: P(a > b) + ½P(a = b).
    pub effect_size: f64,
}

/// Runs the two-sided Mann–Whitney U test. Returns `None` when either
/// sample is empty or all values are identical.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitneyResult> {
    let (na, nb) = (a.len() as f64, b.len() as f64);
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // Rank the pooled sample with average ranks for ties.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&x| (x, true))
        .chain(b.iter().map(|&x| (x, false)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));

    let n = pooled.len();
    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        let tie_size = (j - i + 1) as f64;
        if tie_size > 1.0 {
            tie_term += tie_size.powi(3) - tie_size;
        }
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_a += avg_rank;
            }
        }
        i = j + 1;
    }

    let u = rank_sum_a - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let n_total = na + nb;
    let variance = na * nb / 12.0 * ((n_total + 1.0) - tie_term / (n_total * (n_total - 1.0)));
    if variance <= 0.0 {
        return None; // all values tied
    }
    let z = (u - mean_u) / variance.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(MannWhitneyResult {
        u,
        z,
        p_value: p.clamp(0.0, 1.0),
        effect_size: u / (na * nb),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_are_null() {
        let a: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.z.abs() < 1e-9, "z = {}", r.z);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!((r.effect_size - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shifted_distributions_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 50.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert_eq!(r.effect_size, 0.0); // every a below every b
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert_eq!(r2.effect_size, 1.0);
    }

    #[test]
    fn reference_value() {
        // Hand-checkable: a = [1,2,3], b = [4,5,6] → U_a = 0.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.u, 0.0);
        // a = [1,4], b = [2,3] → ranks a = {1,4}, U_a = 5 - 3 = 2.
        let r = mann_whitney_u(&[1.0, 4.0], &[2.0, 3.0]).unwrap();
        assert_eq!(r.u, 2.0);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.05); // small samples, mild shift
        assert!(r.effect_size < 0.5);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[3.0, 3.0], &[3.0, 3.0]).is_none());
    }

    #[test]
    fn agrees_with_t_test_on_clean_shift() {
        use crate::ttest::welch_t_test;
        let a: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| (i % 7) as f64 + 3.0).collect();
        let u = mann_whitney_u(&a, &b).unwrap();
        let t = welch_t_test(&a, &b).unwrap();
        assert_eq!(u.p_value < 0.01, t.p_value < 0.01);
        assert_eq!(u.z < 0.0, t.t < 0.0);
    }
}
