//! Multiple-testing corrections.
//!
//! §6.3: thread-size comparisons are "corrected for multiple comparisons
//! using Benjamini Hochberg with a default error rate of 0.1".

/// Benjamini–Hochberg FDR procedure.
///
/// Given raw p-values and a false-discovery rate `q`, returns a boolean per
/// input (in the original order) saying whether that hypothesis is rejected.
///
/// ```
/// use incite_stats::benjamini_hochberg;
///
/// let p = [0.001, 0.02, 0.8];
/// assert_eq!(benjamini_hochberg(&p, 0.05), vec![true, true, false]);
/// ```
pub fn benjamini_hochberg(p_values: &[f64], q: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| {
        p_values[i]
            .partial_cmp(&p_values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Find the largest k with p_(k) <= (k/m) q.
    let mut cutoff_rank: Option<usize> = None;
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = (rank + 1) as f64 / m as f64 * q;
        if p_values[idx] <= threshold {
            cutoff_rank = Some(rank);
        }
    }
    let mut rejected = vec![false; m];
    if let Some(k) = cutoff_rank {
        for &idx in &order[..=k] {
            rejected[idx] = true;
        }
    }
    rejected
}

/// Benjamini–Hochberg adjusted p-values (step-up, monotone).
pub fn bh_adjusted(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| {
        p_values[i]
            .partial_cmp(&p_values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut adjusted = vec![0.0; m];
    let mut running_min = f64::INFINITY;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let adj = (p_values[idx] * m as f64 / (rank + 1) as f64).min(1.0);
        running_min = running_min.min(adj);
        adjusted[idx] = running_min;
    }
    adjusted
}

/// Bonferroni correction: rejects where `p <= alpha / m`.
pub fn bonferroni(p_values: &[f64], alpha: f64) -> Vec<bool> {
    let m = p_values.len().max(1) as f64;
    p_values.iter().map(|&p| p <= alpha / m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bh_rejects_everything_below_threshold_chain() {
        // m=5, q=0.05; sorted thresholds are k/m·q = .01 .02 .03 .04 .05.
        // 0.005≤.01, 0.01≤.02, 0.03≤.03, 0.04≤.04 all pass; 0.55 fails.
        let p = [0.01, 0.04, 0.03, 0.005, 0.55];
        let rej = benjamini_hochberg(&p, 0.05);
        assert_eq!(rej, vec![true, true, true, true, false]);
        // Tightening q to 0.04 drops the 0.04 and rescues nothing above it.
        let rej2 = benjamini_hochberg(&p, 0.03);
        assert_eq!(rej2, vec![true, false, false, true, false]);
    }

    #[test]
    fn bh_all_significant() {
        let p = [0.001, 0.002, 0.003];
        assert_eq!(benjamini_hochberg(&p, 0.05), vec![true, true, true]);
    }

    #[test]
    fn bh_none_significant() {
        let p = [0.5, 0.6, 0.9];
        assert_eq!(benjamini_hochberg(&p, 0.05), vec![false, false, false]);
    }

    #[test]
    fn bh_step_up_rescues_earlier_pvalues() {
        // 0.04 alone at rank 1 would fail (threshold 0.025) but rank-2 0.045
        // passes its threshold 0.05, rescuing both.
        let p = [0.04, 0.045];
        assert_eq!(benjamini_hochberg(&p, 0.05), vec![true, true]);
    }

    #[test]
    fn bh_empty_input() {
        assert!(benjamini_hochberg(&[], 0.1).is_empty());
        assert!(bh_adjusted(&[]).is_empty());
    }

    #[test]
    fn adjusted_pvalues_are_monotone_in_rank() {
        let p = [0.01, 0.04, 0.03, 0.005, 0.55];
        let adj = bh_adjusted(&p);
        // Adjusted values, when sorted by raw p, must be non-decreasing.
        let mut order: Vec<usize> = (0..p.len()).collect();
        order.sort_by(|&i, &j| p[i].partial_cmp(&p[j]).unwrap());
        for w in order.windows(2) {
            assert!(adj[w[0]] <= adj[w[1]] + 1e-12);
        }
        // And consistent with the rejection set at q=0.05.
        let rej = benjamini_hochberg(&p, 0.05);
        for i in 0..p.len() {
            assert_eq!(adj[i] <= 0.05, rej[i], "index {i}");
        }
    }

    #[test]
    fn bonferroni_divides_alpha() {
        let p = [0.01, 0.02, 0.001];
        assert_eq!(bonferroni(&p, 0.05), vec![true, false, true]);
    }
}
