//! Descriptive statistics.
//!
//! §6.3 reports thread-position distributions as median / mean / standard
//! deviation; those summaries come from here.

/// Arithmetic mean. `NaN` for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (n−1 denominator). `NaN` for fewer than two
/// observations.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Median (average of middle two for even n). `NaN` for empty input.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Quantile by linear interpolation between order statistics (type 7, the
/// numpy/R default). `q` is clamped to `[0, 1]`. `NaN` for empty input.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Natural log transform of positive counts, used before t-tests on thread
/// sizes "in order to ensure symmetric distribution" (§6.3). Non-positive
/// values are dropped.
pub fn log_transform(data: &[f64]) -> Vec<f64> {
    data.iter()
        .copied()
        .filter(|x| *x > 0.0)
        .map(f64::ln)
        .collect()
}

/// Summary of a sample: n, mean, median, standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub median: f64,
    pub std_dev: f64,
}

/// Computes a [`Summary`].
pub fn summarize(data: &[f64]) -> Summary {
    Summary {
        n: data.len(),
        mean: mean(data),
        median: median(data),
        std_dev: std_dev(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_known_value() {
        // Var([2,4,4,4,5,5,7,9]) with n-1 = 32/7.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&data, 0.0), 10.0);
        assert_eq!(quantile(&data, 1.0), 40.0);
        assert!((quantile(&data, 0.25) - 17.5).abs() < 1e-12);
        // Out-of-range q is clamped.
        assert_eq!(quantile(&data, 2.0), 40.0);
    }

    #[test]
    fn log_transform_drops_nonpositive() {
        let out = log_transform(&[1.0, 0.0, -2.0, std::f64::consts::E]);
        assert_eq!(out.len(), 2);
        assert!((out[0] - 0.0).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summarize(&data);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }
}
