//! Empirical CDFs and histograms (Figures 5 and 6).

/// An empirical cumulative distribution function over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF; NaN values are dropped.
    pub fn new(data: &[f64]) -> Self {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`. `NaN` for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Evaluates the ECDF at each point of a grid, returning `(x, F(x))`
    /// pairs — the series a Figure 5-style CDF plot draws.
    pub fn curve(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// A log-spaced grid from 1 to `max` with `points` entries, matching the
    /// log-x axis of Figure 5.
    pub fn log_grid(max: f64, points: usize) -> Vec<f64> {
        if points == 0 || max <= 1.0 {
            return vec![1.0];
        }
        let lmax = max.ln();
        let mut grid: Vec<f64> = (0..points)
            .map(|i| (lmax * i as f64 / (points - 1) as f64).exp())
            .collect();
        // exp(ln(max)) can round a hair below max; the grid must end exactly
        // at max so CDF curves terminate at 1.
        if let Some(last) = grid.last_mut() {
            *last = max;
        }
        grid
    }

    /// Inverse ECDF (quantile of the sample). `q` clamped to `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
    /// Observations below `min` / at-or-above the last edge.
    pub underflow: u64,
    pub overflow: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[min, max)`.
    pub fn new(data: &[f64], min: f64, max: f64, bins: usize) -> Self {
        let bins = bins.max(1);
        let width = (max - min) / bins as f64;
        let mut h = Histogram {
            min,
            width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        };
        for &x in data {
            if x.is_nan() {
                continue;
            }
            if x < min {
                h.underflow += 1;
            } else if x >= max {
                h.overflow += 1;
            } else {
                let b = ((x - min) / width) as usize;
                h.counts[b.min(bins - 1)] += 1;
            }
        }
        h
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_steps_through_sample() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_handles_duplicates() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty_ecdf_is_nan() {
        let e = Ecdf::new(&[]);
        assert!(e.eval(1.0).is_nan());
        assert!(e.is_empty());
    }

    #[test]
    fn quantile_inverse() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    fn log_grid_spans_range() {
        let g = Ecdf::log_grid(1000.0, 4);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[3] - 1000.0).abs() < 1e-9);
        assert!((g[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn curve_matches_eval() {
        let e = Ecdf::new(&[1.0, 10.0, 100.0]);
        let curve = e.curve(&[1.0, 10.0, 100.0]);
        assert_eq!(curve[0].1, e.eval(1.0));
        assert_eq!(curve[2].1, 1.0);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let data = [0.5, 1.5, 2.5, 9.5, -1.0, 10.0, 11.0];
        let h = Histogram::new(&data, 0.0, 10.0, 10);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 4);
    }
}
