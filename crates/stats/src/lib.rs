//! # incite-stats
//!
//! Statistics substrate for the `incite` reproduction. Every significance
//! test, agreement score and classifier metric reported by the paper is
//! implemented here from first principles:
//!
//! * [`descriptive`] — means, variances, medians, quantiles (thread-position
//!   statistics of §6.3/§7.4).
//! * [`special`] — log-gamma, regularized incomplete gamma and beta
//!   functions: the numerical bedrock for every p-value.
//! * [`ttest`] — Welch and Student two-sample t-tests on (log) thread sizes
//!   (§6.3 "pairwise t-test on the log of the size of the threads").
//! * [`chisq`] — one-way chi-square tests (§6.2 reporting-subcategory and
//!   gender comparisons).
//! * [`correction`] — Benjamini–Hochberg FDR control (§6.3 "corrected for
//!   multiple comparisons using Benjamini Hochberg with a default error rate
//!   of 0.1") and Bonferroni.
//! * [`kappa`] — Cohen's kappa (§5.3 annotator agreement).
//! * [`mannwhitney`] — the rank-sum robustness check for the thread-size
//!   comparisons.
//! * [`classify`] — confusion matrices, precision/recall/F1 with weighted
//!   and macro averages (Table 3), ROC curves and AUC (§5.4 "optimize our
//!   classifiers' parameters for better AUC-ROC scores").
//! * [`ecdf`] — empirical CDFs and histograms (Figures 5 and 6).

pub mod chisq;
pub mod classify;
pub mod correction;
pub mod descriptive;
pub mod ecdf;
pub mod kappa;
pub mod mannwhitney;
pub mod special;
pub mod ttest;

pub use chisq::{chi_square_gof, ChiSquareResult};
pub use classify::{auc_roc, BinaryConfusion, MultiMetrics, PrfScores};
pub use correction::{benjamini_hochberg, bonferroni};
pub use descriptive::{mean, median, quantile, std_dev, variance};
pub use ecdf::Ecdf;
pub use kappa::{cohen_kappa, cohen_kappa_from_labels};
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use ttest::{welch_t_test, TTestResult};
