//! Cohen's kappa inter-annotator agreement.
//!
//! §5.3 reports kappa for crowd annotators (0.519 dox / 0.350 CTH —
//! "moderate" and "fair" agreement) and for domain experts (0.893 / 0.845 —
//! "strong"). Kappa corrects raw agreement for the agreement expected by
//! chance given each annotator's marginal label distribution.

/// Cohen's kappa from a square confusion matrix `counts[i][j]` = number of
/// items annotator A labeled `i` and annotator B labeled `j`.
///
/// Returns `None` for an empty or non-square matrix or zero total. A
/// degenerate case where chance agreement is 1 (both annotators constant and
/// identical) yields `Some(1.0)` when observed agreement is also 1.
pub fn cohen_kappa(counts: &[Vec<f64>]) -> Option<f64> {
    let k = counts.len();
    if k == 0 || counts.iter().any(|row| row.len() != k) {
        return None;
    }
    let total: f64 = counts.iter().flatten().sum();
    if total <= 0.0 {
        return None;
    }
    let observed: f64 = (0..k).map(|i| counts[i][i]).sum::<f64>() / total;
    let mut expected = 0.0;
    for i in 0..k {
        let row: f64 = counts[i].iter().sum();
        let col: f64 = counts.iter().map(|r| r[i]).sum();
        expected += (row / total) * (col / total);
    }
    if (1.0 - expected).abs() < 1e-12 {
        return Some(if (1.0 - observed).abs() < 1e-12 {
            1.0
        } else {
            0.0
        });
    }
    Some((observed - expected) / (1.0 - expected))
}

/// Cohen's kappa straight from two parallel label sequences.
///
/// Labels can be any equatable, hashable type. Returns `None` when the
/// sequences are empty or of different lengths.
pub fn cohen_kappa_from_labels<T: Eq + std::hash::Hash + Clone>(a: &[T], b: &[T]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    // Build the label universe deterministically by first appearance.
    let mut universe: Vec<T> = Vec::new();
    let mut index = std::collections::HashMap::new();
    for label in a.iter().chain(b.iter()) {
        if !index.contains_key(label) {
            index.insert(label.clone(), universe.len());
            universe.push(label.clone());
        }
    }
    let k = universe.len();
    let mut counts = vec![vec![0.0; k]; k];
    for (x, y) in a.iter().zip(b) {
        counts[index[x]][index[y]] += 1.0;
    }
    cohen_kappa(&counts)
}

/// The qualitative band for a kappa value, following the convention the
/// paper uses (Landis & Koch): fair / moderate / strong, etc.
pub fn kappa_band(kappa: f64) -> &'static str {
    match kappa {
        k if k < 0.0 => "poor",
        k if k < 0.20 => "slight",
        k if k < 0.40 => "fair",
        k if k < 0.60 => "moderate",
        k if k < 0.80 => "substantial",
        _ => "strong",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let counts = vec![vec![20.0, 0.0], vec![0.0, 30.0]];
        assert!((cohen_kappa(&counts).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chance_level_agreement_is_zero() {
        // Marginals 50/50 for both; diagonal exactly at chance.
        let counts = vec![vec![25.0, 25.0], vec![25.0, 25.0]];
        assert!(cohen_kappa(&counts).unwrap().abs() < 1e-12);
    }

    #[test]
    fn textbook_example() {
        // Wikipedia example: [[20, 5], [10, 15]] → kappa = 0.4.
        let counts = vec![vec![20.0, 5.0], vec![10.0, 15.0]];
        assert!((cohen_kappa(&counts).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn systematic_disagreement_is_negative() {
        let counts = vec![vec![0.0, 25.0], vec![25.0, 0.0]];
        assert!(cohen_kappa(&counts).unwrap() < 0.0);
    }

    #[test]
    fn from_labels_matches_matrix() {
        let a = vec![1, 1, 0, 1, 0, 0, 1, 0];
        let b = vec![1, 1, 0, 0, 0, 1, 1, 0];
        let from_labels = cohen_kappa_from_labels(&a, &b).unwrap();
        // a=1,b=1: 3; a=1,b=0: 1; a=0,b=1: 1; a=0,b=0: 3.
        let counts = vec![vec![3.0, 1.0], vec![1.0, 3.0]];
        let from_matrix = cohen_kappa(&counts).unwrap();
        assert!((from_labels - from_matrix).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs() {
        assert!(cohen_kappa(&[]).is_none());
        assert!(cohen_kappa(&[vec![1.0, 2.0]]).is_none());
        let empty: Vec<u8> = vec![];
        assert!(cohen_kappa_from_labels(&empty, &empty).is_none());
        assert!(cohen_kappa_from_labels(&[1, 2], &[1]).is_none());
    }

    #[test]
    fn constant_identical_annotators() {
        let a = vec!["x"; 10];
        assert_eq!(cohen_kappa_from_labels(&a, &a), Some(1.0));
    }

    #[test]
    fn bands_match_paper_language() {
        assert_eq!(kappa_band(0.519), "moderate"); // dox crowd agreement
        assert_eq!(kappa_band(0.350), "fair"); // CTH crowd agreement
        assert_eq!(kappa_band(0.893), "strong"); // dox expert agreement
        assert_eq!(kappa_band(0.845), "strong"); // CTH expert agreement
    }

    #[test]
    fn multiclass_kappa() {
        let a = vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0];
        let b = vec![0, 1, 2, 0, 1, 1, 0, 2, 2, 0];
        let k = cohen_kappa_from_labels(&a, &b).unwrap();
        assert!(k > 0.5 && k < 1.0, "kappa = {k}");
    }
}
