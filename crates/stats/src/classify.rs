//! Classifier evaluation: confusion matrices, precision/recall/F1 and ROC.
//!
//! Table 3 reports per-label F1/precision/recall plus weighted and macro
//! averages; §5.4 tunes hyperparameters "for better AUC-ROC scores". Both
//! live here.

use serde::{Deserialize, Serialize};

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    pub true_positive: u64,
    pub false_positive: u64,
    pub true_negative: u64,
    pub false_negative: u64,
}

/// Precision / recall / F1 for one label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Number of true instances of the label.
    pub support: u64,
}

impl BinaryConfusion {
    /// Accumulates one prediction.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.true_positive += 1,
            (false, true) => self.false_positive += 1,
            (false, false) => self.true_negative += 1,
            (true, false) => self.false_negative += 1,
        }
    }

    /// Builds a confusion matrix from parallel label/prediction slices.
    pub fn from_pairs(actual: &[bool], predicted: &[bool]) -> BinaryConfusion {
        let mut c = BinaryConfusion::default();
        for (&a, &p) in actual.iter().zip(predicted) {
            c.record(a, p);
        }
        c
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Accuracy. `NaN` when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return f64::NAN;
        }
        (self.true_positive + self.true_negative) as f64 / t as f64
    }

    /// Scores for the positive label. Precision/recall are 0 when undefined.
    pub fn positive_scores(&self) -> PrfScores {
        prf(self.true_positive, self.false_positive, self.false_negative)
    }

    /// Scores for the negative label (treating "negative" as the target).
    pub fn negative_scores(&self) -> PrfScores {
        prf(self.true_negative, self.false_negative, self.false_positive)
    }

    /// Table 3-style metrics: positive, negative, weighted avg, macro avg.
    pub fn table_metrics(&self) -> MultiMetrics {
        let pos = self.positive_scores();
        let neg = self.negative_scores();
        let total_support = pos.support + neg.support;
        let weight = |a: f64, b: f64| {
            if total_support == 0 {
                f64::NAN
            } else {
                (a * pos.support as f64 + b * neg.support as f64) / total_support as f64
            }
        };
        MultiMetrics {
            positive: pos,
            negative: neg,
            weighted: PrfScores {
                precision: weight(pos.precision, neg.precision),
                recall: weight(pos.recall, neg.recall),
                f1: weight(pos.f1, neg.f1),
                support: pos.support + neg.support,
            },
            macro_avg: PrfScores {
                precision: (pos.precision + neg.precision) / 2.0,
                recall: (pos.recall + neg.recall) / 2.0,
                f1: (pos.f1 + neg.f1) / 2.0,
                support: pos.support + neg.support,
            },
        }
    }
}

fn prf(tp: u64, fp: u64, fn_: u64) -> PrfScores {
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    // Exact-zero guard against 0/0: both terms are nonnegative ratios, so
    // the sum is 0.0 iff both are identically zero.
    // incite-lint: allow(INC003)
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrfScores {
        precision,
        recall,
        f1,
        support: tp + fn_,
    }
}

/// The four Table 3 rows for one classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiMetrics {
    pub positive: PrfScores,
    pub negative: PrfScores,
    pub weighted: PrfScores,
    pub macro_avg: PrfScores,
}

/// Area under the ROC curve from scores and binary labels, computed via the
/// Mann–Whitney U relation with proper tie handling (average ranks).
///
/// Returns `None` when either class is absent.
pub fn auc_roc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    if scores.len() != labels.len() || scores.is_empty() {
        return None;
    }
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Rank scores ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[i]
            .partial_cmp(&scores[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos as f64 * n_neg as f64))
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    pub threshold: f64,
    pub true_positive_rate: f64,
    pub false_positive_rate: f64,
}

/// The full ROC curve, one point per distinct score threshold (descending).
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    let pos_count = labels.iter().filter(|&&l| l).count();
    let neg_count = labels.len() - pos_count;
    if pos_count == 0 || neg_count == 0 {
        return Vec::new();
    }
    let n_pos = pos_count as f64;
    let n_neg = neg_count as f64;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| {
        scores[j]
            .partial_cmp(&scores[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut points = Vec::new();
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            true_positive_rate: tp / n_pos,
            false_positive_rate: fp / n_neg,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_accumulates() {
        let actual = [true, true, false, false, true];
        let pred = [true, false, false, true, true];
        let c = BinaryConfusion::from_pairs(&actual, &pred);
        assert_eq!(c.true_positive, 2);
        assert_eq!(c.false_negative, 1);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn prf_basic() {
        let c = BinaryConfusion {
            true_positive: 8,
            false_positive: 2,
            false_negative: 4,
            true_negative: 86,
        };
        let s = c.positive_scores();
        assert!((s.precision - 0.8).abs() < 1e-12);
        assert!((s.recall - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.support, 12);
    }

    #[test]
    fn degenerate_prf_is_zero_not_nan() {
        let c = BinaryConfusion::default();
        let s = c.positive_scores();
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn weighted_average_leans_to_majority_class() {
        // Strong negative class, weak positive class — Table 3's shape.
        let c = BinaryConfusion {
            true_positive: 60,
            false_positive: 40,
            false_negative: 40,
            true_negative: 9860,
        };
        let m = c.table_metrics();
        assert!(m.weighted.f1 > m.macro_avg.f1);
        assert!(m.negative.f1 > 0.99);
        assert!((m.positive.f1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn perfect_classifier_auc_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc_roc(&scores, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_auc_is_half() {
        // Deterministic interleave: alternating labels at identical spacing.
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let auc = auc_roc(&scores, &labels).unwrap();
        assert!((auc - 0.5).abs() < 0.02, "auc = {auc}");
    }

    #[test]
    fn auc_handles_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc_roc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_none() {
        assert!(auc_roc(&[0.1, 0.2], &[true, true]).is_none());
        assert!(auc_roc(&[], &[]).is_none());
    }

    #[test]
    fn auc_reference_value() {
        // sklearn.metrics.roc_auc_score([0,0,1,1], [0.1,0.4,0.35,0.8]) = 0.75.
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, false, true, true];
        assert!((auc_roc(&scores, &labels).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_is_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2, 0.1];
        let labels = [true, true, false, true, false, false];
        let curve = roc_curve(&scores, &labels);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].true_positive_rate <= w[1].true_positive_rate);
            assert!(w[0].false_positive_rate <= w[1].false_positive_rate);
            assert!(w[0].threshold >= w[1].threshold);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.true_positive_rate, 1.0);
        assert_eq!(last.false_positive_rate, 1.0);
    }
}
