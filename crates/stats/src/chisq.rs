//! Chi-square tests.
//!
//! §6.2: "we ran several one-way chi-square tests, while correcting for
//! multiple testing" to compare reporting subcategories across data sets and
//! gender splits. The one-way (goodness-of-fit) test compares observed
//! counts against expected counts (uniform by default).

use crate::special::chi_square_sf;

/// The outcome of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub df: usize,
    /// Right-tail p-value.
    pub p_value: f64,
}

/// One-way (goodness-of-fit) chi-square test.
///
/// `observed` are category counts; `expected` are expected counts of the
/// same length, or `None` for a uniform expectation. Returns `None` for
/// fewer than two categories, mismatched lengths, or any non-positive
/// expected count.
pub fn chi_square_gof(observed: &[f64], expected: Option<&[f64]>) -> Option<ChiSquareResult> {
    if observed.len() < 2 {
        return None;
    }
    let total: f64 = observed.iter().sum();
    let uniform = vec![total / observed.len() as f64; observed.len()];
    let expected = match expected {
        Some(e) => {
            if e.len() != observed.len() {
                return None;
            }
            e
        }
        None => &uniform,
    };
    if expected.iter().any(|&e| e <= 0.0) {
        return None;
    }
    let statistic: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    let df = observed.len() - 1;
    Some(ChiSquareResult {
        statistic,
        df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Chi-square test of independence on a 2×2 contingency table
/// `[[a, b], [c, d]]` (without Yates correction, matching
/// `scipy.stats.chi2_contingency(correction=False)`).
pub fn chi_square_2x2(a: f64, b: f64, c: f64, d: f64) -> Option<ChiSquareResult> {
    let n = a + b + c + d;
    if n <= 0.0 {
        return None;
    }
    let row1 = a + b;
    let row2 = c + d;
    let col1 = a + c;
    let col2 = b + d;
    if row1 <= 0.0 || row2 <= 0.0 || col1 <= 0.0 || col2 <= 0.0 {
        return None;
    }
    let statistic = n * (a * d - b * c).powi(2) / (row1 * row2 * col1 * col2);
    Some(ChiSquareResult {
        statistic,
        df: 1,
        p_value: chi_square_sf(statistic, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_observations_give_zero_statistic() {
        let r = chi_square_gof(&[25.0, 25.0, 25.0, 25.0], None).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.df, 3);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_observations_are_significant() {
        let r = chi_square_gof(&[90.0, 10.0], None).unwrap();
        // statistic = (40^2/50)*2 = 64
        assert!((r.statistic - 64.0).abs() < 1e-9);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn explicit_expected_counts() {
        // Observed matches expected exactly.
        let r = chi_square_gof(&[30.0, 70.0], Some(&[30.0, 70.0])).unwrap();
        assert_eq!(r.statistic, 0.0);
        // scipy reference: chisquare([16,18,16,14,12,12]) → stat 2.0, p≈0.849.
        let r2 = chi_square_gof(&[16.0, 18.0, 16.0, 14.0, 12.0, 12.0], None).unwrap();
        assert!((r2.statistic - 2.0).abs() < 1e-9);
        assert!((r2.p_value - 0.8491).abs() < 1e-3);
    }

    #[test]
    fn invalid_inputs_return_none() {
        assert!(chi_square_gof(&[5.0], None).is_none());
        assert!(chi_square_gof(&[5.0, 5.0], Some(&[5.0])).is_none());
        assert!(chi_square_gof(&[5.0, 5.0], Some(&[0.0, 10.0])).is_none());
    }

    #[test]
    fn contingency_2x2_reference() {
        // Hand computation for [[10, 20], [30, 40]] without Yates correction:
        // expected cells (12, 18, 28, 42) → χ² = 4/12 + 4/18 + 4/28 + 4/42
        // = 0.79365, p = P(χ²₁ ≥ 0.79365) ≈ 0.373.
        let r = chi_square_2x2(10.0, 20.0, 30.0, 40.0).unwrap();
        assert!(
            (r.statistic - 0.79365).abs() < 1e-4,
            "stat = {}",
            r.statistic
        );
        assert!((r.p_value - 0.373).abs() < 1e-3, "p = {}", r.p_value);
    }

    #[test]
    fn contingency_degenerate_returns_none() {
        assert!(chi_square_2x2(0.0, 0.0, 0.0, 0.0).is_none());
        assert!(chi_square_2x2(5.0, 5.0, 0.0, 0.0).is_none());
    }
}
