//! Two-sample t-tests.
//!
//! §6.3: "We ran a pairwise t-test on the log of the size of the threads in
//! order to ensure symmetric distribution" — each attack-type group is
//! compared against the 5,000-post random baseline. We provide Welch's
//! unequal-variance t-test (the robust default) and the pooled Student
//! variant; the thread analysis uses Welch on log-transformed sizes.

use crate::descriptive::{mean, variance};
use crate::special::student_t_two_sided;

/// The outcome of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (group `a` minus group `b` in the numerator).
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the unequal-variance test).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Difference of sample means `mean(a) - mean(b)`.
    pub mean_difference: f64,
}

/// Welch's unequal-variance two-sample t-test.
///
/// Returns `None` when either sample has fewer than two observations or when
/// both variances are zero.
///
/// ```
/// use incite_stats::welch_t_test;
///
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [6.0, 7.0, 8.0, 9.0];
/// let r = welch_t_test(&a, &b).unwrap();
/// assert!(r.t < 0.0);
/// assert!(r.p_value < 0.01);
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = student_t_two_sided(t, df);
    Some(TTestResult {
        t,
        df,
        p_value: p,
        mean_difference: ma - mb,
    })
}

/// Pooled-variance Student two-sample t-test (assumes equal variances).
pub fn student_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let df = na + nb - 2.0;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    let se = (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    if se <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se;
    Some(TTestResult {
        t,
        df,
        p_value: student_t_two_sided(t, df),
        mean_difference: ma - mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_give_t_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert!(r.t.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert_eq!(r.mean_difference, 0.0);
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 20.0 + (i % 3) as f64).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.t < 0.0);
        assert!((r.mean_difference + 10.0).abs() < 1e-9);
    }

    #[test]
    fn welch_reference_value() {
        // Hand computation: a = [1,2,3,4], b = [2,3,4,5]. Both variances are
        // 5/3, se² = 5/6, t = -1/√(5/6) ≈ -1.0954, Welch df = 6 exactly,
        // two-sided p ≈ 0.3153 (t-table).
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.t - (-1.0954)).abs() < 1e-3, "t = {}", r.t);
        assert!((r.df - 6.0).abs() < 1e-9, "df = {}", r.df);
        assert!((r.p_value - 0.3153).abs() < 1e-2, "p = {}", r.p_value);
    }

    #[test]
    fn student_reference_value() {
        let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
        let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
        let r = student_t_test(&a, &b).unwrap();
        assert!((r.t - 1.959).abs() < 5e-3, "t = {}", r.t);
        assert_eq!(r.df, 10.0);
    }

    #[test]
    fn too_small_samples_return_none() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(student_t_test(&[], &[]).is_none());
    }

    #[test]
    fn zero_variance_everywhere_returns_none() {
        assert!(welch_t_test(&[5.0, 5.0], &[5.0, 5.0]).is_none());
    }

    #[test]
    fn welch_df_between_min_and_sum() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.df >= 4.0 && r.df <= 9.0, "df = {}", r.df);
    }
}
