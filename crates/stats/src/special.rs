//! Special functions: log-gamma, regularized incomplete gamma and beta.
//!
//! These provide the tail probabilities behind every p-value in the crate:
//! chi-square survival is `Q(k/2, x/2)` and the Student-t CDF reduces to the
//! regularized incomplete beta function.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return if x <= 0.0 { 0.0 } else { 1.0 };
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return if x <= 0.0 { 1.0 } else { 0.0 };
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion for P(a, x), valid for x < a+1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x), valid for x >= a+1 (Lentz's method).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its region of fast convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

/// Student-t distribution two-sided tail probability for statistic `t` with
/// `df` degrees of freedom: `P(|T| >= |t|)`.
pub fn student_t_two_sided(t: f64, df: f64) -> f64 {
    if !t.is_finite() || df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x)
}

/// Chi-square survival function: `P(X >= x)` for `k` degrees of freedom.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Standard normal CDF via the complementary error function relation.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function (via regularized incomplete gamma).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10); // Γ(5)=24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for (a, x) in [(1.0, 0.5), (2.5, 3.0), (10.0, 8.0), (0.5, 0.1)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 1.0, 2.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn chi_square_reference_values() {
        // From standard chi-square tables.
        close(chi_square_sf(3.841, 1.0), 0.05, 1e-3);
        close(chi_square_sf(5.991, 2.0), 0.05, 1e-3);
        close(chi_square_sf(6.635, 1.0), 0.01, 1e-3);
        close(chi_square_sf(0.0, 5.0), 1.0, 1e-12);
    }

    #[test]
    fn beta_inc_symmetry_and_bounds() {
        close(beta_inc(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(beta_inc(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for x in [0.2, 0.5, 0.8] {
            close(
                beta_inc(2.0, 5.0, x),
                1.0 - beta_inc(5.0, 2.0, 1.0 - x),
                1e-10,
            );
        }
        // I_x(1,1) = x (uniform distribution).
        close(beta_inc(1.0, 1.0, 0.3), 0.3, 1e-10);
    }

    #[test]
    fn student_t_reference_values() {
        // Two-sided critical values: t=2.776, df=4 → p≈0.05.
        close(student_t_two_sided(2.776, 4.0), 0.05, 1e-3);
        // t=1.96 with large df approaches the normal 0.05.
        close(student_t_two_sided(1.96, 10_000.0), 0.05, 1e-3);
        close(student_t_two_sided(0.0, 10.0), 1.0, 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
        close(normal_cdf(3.0), 0.99865, 1e-4);
    }

    #[test]
    fn erfc_reference() {
        close(erfc(0.0), 1.0, 1e-12);
        close(erfc(1.0), 0.157299, 1e-5);
        close(erfc(-1.0), 1.842701, 1e-5);
    }
}
