//! Cross-substrate check: the §5.6 extractors must recover the PII kinds the
//! corpus generator plants, meeting the paper's ≥95 % accuracy bar.

use incite_corpus::{generate, CorpusConfig};
use incite_pii::eval::evaluate_extractors;
use incite_pii::PiiExtractor;
use incite_taxonomy::pii_kind::PiiSet;

#[test]
fn extractors_meet_paper_accuracy_on_planted_doxes() {
    let corpus = generate(&CorpusConfig::tiny(77));
    let extractor = PiiExtractor::new();
    let sample: Vec<(&str, PiiSet)> = corpus
        .true_doxes()
        .map(|d| (d.text.as_str(), d.truth.pii))
        .collect();
    assert!(
        sample.len() >= 30,
        "need a meaningful sample, got {}",
        sample.len()
    );
    let accs = evaluate_extractors(&extractor, &sample);
    for acc in &accs {
        assert!(
            acc.accuracy() >= 0.95,
            "{:?} accuracy {} below the paper's bar ({} / {})",
            acc.kind,
            acc.accuracy(),
            acc.correct,
            acc.total
        );
    }
}
