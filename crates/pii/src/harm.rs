//! Harm-risk assignment (§7.2).
//!
//! Combines automatic PII extraction with the manually annotated reputation
//! flag to place each dox in the Table 7 risk categories.

use crate::extract::PiiExtractor;
use incite_taxonomy::harm::RiskSet;

/// Assigns the harm-risk set for a document: extract PII, map through
/// Table 7, add the reputation flag (which the paper annotates manually —
/// callers pass the annotation).
pub fn assign_risks(extractor: &PiiExtractor, text: &str, reputation_flag: bool) -> RiskSet {
    let pii = extractor.pii_set(text);
    RiskSet::from_pii(pii, reputation_flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_taxonomy::HarmRisk;

    #[test]
    fn address_implies_physical_risk() {
        let ex = PiiExtractor::new();
        let risks = assign_risks(&ex, "lives at 44 Fox Run Blvd, Milltown, TX 75001", false);
        assert!(risks.contains(HarmRisk::Physical));
        assert!(!risks.contains(HarmRisk::Online));
    }

    #[test]
    fn email_implies_online_and_economic() {
        let ex = PiiExtractor::new();
        let risks = assign_risks(&ex, "contact: target@example.com", false);
        assert!(risks.contains(HarmRisk::Online));
        assert!(risks.contains(HarmRisk::EconomicIdentity));
        assert_eq!(risks.len(), 2);
    }

    #[test]
    fn social_profile_is_online_only() {
        let ex = PiiExtractor::new();
        let risks = assign_risks(&ex, "main account twitter.com/target_user9", false);
        assert_eq!(risks.iter().collect::<Vec<_>>(), vec![HarmRisk::Online]);
    }

    #[test]
    fn reputation_comes_only_from_the_flag() {
        let ex = PiiExtractor::new();
        let text = "works at the mill, her boss should know. 555-01 nothing";
        assert!(!assign_risks(&ex, text, false).contains(HarmRisk::Reputation));
        assert!(assign_risks(&ex, text, true).contains(HarmRisk::Reputation));
    }

    #[test]
    fn no_pii_no_flag_is_empty() {
        let ex = PiiExtractor::new();
        assert!(assign_risks(&ex, "nothing sensitive here", false).is_empty());
    }

    #[test]
    fn full_dox_hits_all_four() {
        let ex = PiiExtractor::new();
        let text = "Name: a b\nAddress: 12000 Quarry Gate St, Ashford, PA 19000\n\
                    Email: a.b@example.com\nSSN: 000-55-1234\nfb: a.b.9";
        let risks = assign_risks(&ex, text, true);
        assert_eq!(risks.len(), 4);
    }
}
