//! Luhn checksum validation for candidate card numbers.
//!
//! The per-network regexes are deliberately loose about digits; Luhn
//! validation removes most random digit-run false positives, which is how
//! the paper's per-card-company expressions reach high precision.

/// Whether a digit string (separators allowed) passes the Luhn checksum.
pub fn luhn_valid(candidate: &str) -> bool {
    let digits: Vec<u32> = candidate.chars().filter_map(|c| c.to_digit(10)).collect();
    if digits.len() < 12 {
        return false;
    }
    let mut sum = 0u32;
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut d = d;
        if i % 2 == 1 {
            d *= 2;
            if d > 9 {
                d -= 9;
            }
        }
        sum += d;
    }
    sum.is_multiple_of(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_standard_test_numbers() {
        assert!(luhn_valid("4111111111111111"));
        assert!(luhn_valid("5555555555554444"));
        assert!(luhn_valid("378282246310005"));
        assert!(luhn_valid("6011111111111117"));
    }

    #[test]
    fn rejects_off_by_one() {
        assert!(!luhn_valid("4111111111111112"));
        assert!(!luhn_valid("5555555555554445"));
    }

    #[test]
    fn tolerates_separators() {
        assert!(luhn_valid("4111-1111-1111-1111"));
        assert!(luhn_valid("4111 1111 1111 1111"));
    }

    #[test]
    fn rejects_short_runs() {
        assert!(!luhn_valid("59"));
        assert!(!luhn_valid(""));
        assert!(!luhn_valid("0"));
    }
}
