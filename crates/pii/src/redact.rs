//! PII redaction.
//!
//! The paper's content-moderation motivation (§3: classifiers are released
//! "to help online platforms better detect calls to harassment and doxing")
//! implies the obvious companion operation: removing the PII a dox exposes.
//! [`redact`] replaces every extracted span with a `[kind]` placeholder,
//! handling overlapping matches by keeping the earliest-starting (then
//! longest) span.

use crate::extract::{PiiExtractor, PiiMatch};

/// Replaces every PII span in `text` with `[KIND]`. Returns the redacted
/// text and the matches that were applied (non-overlapping, in order).
///
/// ```
/// use incite_pii::{redact, PiiExtractor};
///
/// let extractor = PiiExtractor::new();
/// let (clean, spans) = redact(&extractor, "reach me at me@example.com");
/// assert_eq!(clean, "reach me at [EMAIL]");
/// assert_eq!(spans.len(), 1);
/// ```
pub fn redact(extractor: &PiiExtractor, text: &str) -> (String, Vec<PiiMatch>) {
    let mut matches = extractor.extract(text);
    // Earliest start wins; ties broken by longest span.
    matches.sort_by_key(|m| (m.start, std::cmp::Reverse(m.end)));
    let mut applied: Vec<PiiMatch> = Vec::new();
    for m in matches {
        if applied.last().is_none_or(|last| m.start >= last.end) {
            applied.push(m);
        }
    }
    let mut out = String::with_capacity(text.len());
    let mut cursor = 0;
    for m in &applied {
        out.push_str(&text[cursor..m.start]);
        out.push('[');
        out.push_str(&m.kind.slug().to_uppercase());
        out.push(']');
        cursor = m.end;
    }
    out.push_str(&text[cursor..]);
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_taxonomy::PiiKind;

    fn ex() -> PiiExtractor {
        PiiExtractor::new()
    }

    #[test]
    fn redacts_every_kind_in_a_drop() {
        let text = "Name: pat q\nPhone: (212) 555-0101\nEmail: pat@example.net\n\
                    Twitter: @patq1 via twitter: patq1\nAddress: 900 Larkspur Ave, Fairview, OH 44111";
        let (red, applied) = redact(&ex(), text);
        assert!(!red.contains("555-0101"));
        assert!(!red.contains("pat@example.net"));
        assert!(!red.contains("Larkspur"));
        assert!(red.contains("[PHONE]"));
        assert!(red.contains("[EMAIL]"));
        assert!(red.contains("[ADDRESS]"));
        assert!(applied.len() >= 3);
    }

    #[test]
    fn clean_text_is_unchanged() {
        let text = "we talked about the game for hours";
        let (red, applied) = redact(&ex(), text);
        assert_eq!(red, text);
        assert!(applied.is_empty());
    }

    #[test]
    fn overlapping_spans_do_not_corrupt_output() {
        // An SSN-shaped run inside a phone-like context; whatever the
        // extractor finds, the output must be valid and fully redacted.
        let text = "dial 212-555-0187 or 000-12-3456 now";
        let (red, applied) = redact(&ex(), text);
        assert!(!red.contains("0187"));
        assert!(!red.contains("3456"));
        // Non-overlap invariant.
        for w in applied.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn applied_spans_index_the_original_text() {
        let text = "contact a@example.com and b@example.net";
        let (_, applied) = redact(&ex(), text);
        assert_eq!(applied.len(), 2);
        for m in &applied {
            assert_eq!(&text[m.start..m.end], m.text);
            assert_eq!(m.kind, PiiKind::Email);
        }
    }

    #[test]
    fn unicode_around_matches_survives() {
        let text = "héllo → mail me at x.y9@example.com ← thanks";
        let (red, _) = redact(&ex(), text);
        assert!(red.contains("héllo →"));
        assert!(red.contains("← thanks"));
        assert!(red.contains("[EMAIL]"));
    }
}
