//! Extractor-evaluation harness (§5.6).
//!
//! The paper evaluates its regexes on 98 true-positive pastes doxes and
//! reports ≥ 95 % accuracy per extractor (seven at 100 %), and evaluates the
//! pronoun gender method on 123 doxes (94.3 %). This harness reproduces
//! both evaluations against documents with known ground truth.

use crate::extract::PiiExtractor;
use crate::gender::infer_gender;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{Gender, PiiKind};

/// Per-extractor accuracy over an evaluation sample.
#[derive(Debug, Clone)]
pub struct ExtractorAccuracy {
    pub kind: PiiKind,
    /// Documents where extracted presence equals planted presence.
    pub correct: usize,
    pub total: usize,
}

impl ExtractorAccuracy {
    /// Accuracy in `[0, 1]`; 1.0 for an empty sample.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Evaluates presence/absence agreement per PII kind over `(text, truth)`
/// pairs — the §5.6 extractor evaluation.
pub fn evaluate_extractors(
    extractor: &PiiExtractor,
    sample: &[(&str, PiiSet)],
) -> Vec<ExtractorAccuracy> {
    PiiKind::ALL
        .iter()
        .map(|&kind| {
            let correct = sample
                .iter()
                .filter(|(text, truth)| {
                    extractor.pii_set(text).contains(kind) == truth.contains(kind)
                })
                .count();
            ExtractorAccuracy {
                kind,
                correct,
                total: sample.len(),
            }
        })
        .collect()
}

/// Gender-inference accuracy over `(text, truth)` pairs restricted to
/// documents whose planted gender is known — the §5.6 123-dox evaluation.
pub fn evaluate_gender(sample: &[(&str, Gender)]) -> (usize, usize) {
    let relevant: Vec<_> = sample
        .iter()
        .filter(|(_, g)| *g != Gender::Unknown)
        .collect();
    let correct = relevant
        .iter()
        .filter(|(text, g)| infer_gender(text) == *g)
        .count();
    (correct, relevant.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_extraction_scores_one() {
        let ex = PiiExtractor::new();
        let truth: PiiSet = [PiiKind::Email].into_iter().collect();
        let sample = vec![
            ("mail: a@example.com", truth),
            ("no pii at all", PiiSet::EMPTY),
        ];
        let accs = evaluate_extractors(&ex, &sample);
        for acc in accs {
            assert_eq!(acc.accuracy(), 1.0, "{:?}", acc.kind);
        }
    }

    #[test]
    fn missed_extraction_lowers_accuracy() {
        let ex = PiiExtractor::new();
        // Claim a phone exists where there is none.
        let truth: PiiSet = [PiiKind::Phone].into_iter().collect();
        let sample = vec![("nothing here", truth)];
        let accs = evaluate_extractors(&ex, &sample);
        let phone = accs.iter().find(|a| a.kind == PiiKind::Phone).unwrap();
        assert_eq!(phone.accuracy(), 0.0);
        let email = accs.iter().find(|a| a.kind == PiiKind::Email).unwrap();
        assert_eq!(email.accuracy(), 1.0);
    }

    #[test]
    fn gender_eval_skips_unknown_truth() {
        let sample = vec![
            ("report him and his server", Gender::Male),
            ("her account, flag her", Gender::Female),
            ("no pronouns", Gender::Unknown),
        ];
        let (correct, total) = evaluate_gender(&sample);
        assert_eq!(total, 2);
        assert_eq!(correct, 2);
    }

    #[test]
    fn empty_sample_is_vacuously_perfect() {
        let ex = PiiExtractor::new();
        let accs = evaluate_extractors(&ex, &[]);
        assert!(accs.iter().all(|a| a.accuracy() == 1.0));
        assert_eq!(evaluate_gender(&[]), (0, 0));
    }
}
