//! The twelve PII extractors.

use crate::luhn::luhn_valid;
use incite_regex::Regex;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::PiiKind;

/// Failure to compile one of the extractor patterns.
///
/// Unreachable through [`PiiExtractor::new`] / [`PiiExtractor::try_new`]
/// today (the builtin patterns are constants exercised by the test suite);
/// the type exists so the fallible constructor can keep its contract if the
/// pattern set ever becomes configurable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiiError {
    /// The pattern that failed to compile.
    pub pattern: String,
    /// The underlying compilation error.
    pub source: incite_regex::Error,
}

impl std::fmt::Display for PiiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PII pattern `{}` failed to compile: {}",
            self.pattern, self.source
        )
    }
}

impl std::error::Error for PiiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One extracted PII span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiiMatch {
    pub kind: PiiKind,
    /// The matched text.
    pub text: String,
    /// Byte offsets into the source document.
    pub start: usize,
    pub end: usize,
}

/// Reserved path segments that look like profile URLs but are site
/// functionality (the paper's "stopwords … reserved for site
/// functionalities").
const FACEBOOK_STOPWORDS: &[&str] = &[
    "pages",
    "groups",
    "events",
    "marketplace",
    "watch",
    "gaming",
    "help",
    "login",
    "sharer",
];
const INSTAGRAM_STOPWORDS: &[&str] = &["p", "explore", "reels", "stories", "accounts", "about"];
const TWITTER_STOPWORDS: &[&str] = &[
    "home",
    "search",
    "hashtag",
    "i",
    "explore",
    "settings",
    "intent",
    "share",
    "notifications",
];
const YOUTUBE_STOPWORDS: &[&str] = &[
    "watch", "results", "feed", "playlist", "embed", "shorts", "about", "t",
];

/// Stopwords for the inline `site: handle` form: URL scheme/domain tokens
/// that the pattern would otherwise capture from lines like
/// `"Twitter: https://twitter.com/user"`.
const INLINE_STOPWORDS: &[&str] = &[
    "https",
    "http",
    "www",
    "com",
    "twitter",
    "facebook",
    "instagram",
    "youtube",
    "fb",
    "ig",
    "channel",
    "user",
];

/// The compiled extractor set.
///
/// ```
/// use incite_pii::PiiExtractor;
/// use incite_taxonomy::PiiKind;
///
/// let extractor = PiiExtractor::new();
/// let pii = extractor.pii_set("call (212) 555-0187 or mail a@example.com");
/// assert!(pii.contains(PiiKind::Phone));
/// assert!(pii.contains(PiiKind::Email));
/// ```
/// The compiled extractor set.
#[derive(Debug)]
pub struct PiiExtractor {
    email: Regex,
    phone: Regex,
    ssn: Regex,
    address: Regex,
    cards: Vec<(Regex, &'static str)>,
    facebook_url: Regex,
    facebook_inline: Regex,
    instagram_url: Regex,
    instagram_inline: Regex,
    twitter_url: Regex,
    twitter_inline: Regex,
    youtube_url: Regex,
    youtube_inline: Regex,
}

impl Default for PiiExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl PiiExtractor {
    /// Compiles the builtin patterns, infallibly: they are constants covered
    /// by tests, so the only failure mode is programmer error. Callers that
    /// want to decide for themselves should use [`Self::try_new`].
    pub fn new() -> Self {
        // The expect is unreachable: every builtin pattern is compile-tested
        // by `builtin_patterns_compile`.
        // incite-lint: allow(INC001)
        Self::try_new().expect("builtin PII patterns compile")
    }

    /// Compiles all patterns, surfacing a compilation failure as a
    /// [`PiiError`] instead of panicking.
    pub fn try_new() -> Result<Self, PiiError> {
        let ci = |p: &str| {
            Regex::case_insensitive(p).map_err(|source| PiiError {
                pattern: p.to_string(),
                source,
            })
        };
        let extractor = PiiExtractor {
            email: ci(r"\b[a-z0-9._%+-]+@[a-z0-9.-]+\.[a-z][a-z]+\b")?,
            // US phone: optional +1/1 prefix, optional parens, common
            // separators. The 555-01XX fictional exchange also matches.
            phone: ci(r"(\+?1[-. ])?\(?\d{3}\)?[-. ]\d{3}[-. ]?\d{4}\b")?,
            ssn: ci(r"\b\d{3}-\d{2}-\d{4}\b")?,
            // US street address: house number, street name words, suffix,
            // optionally a city/state/zip tail.
            address: ci(
                r"\b\d{1,5} [a-z][a-z ]* (ave|avenue|st|street|rd|road|blvd|boulevard|ln|lane|dr|drive|ct|court|way)\b(, [a-z][a-z ]*, [a-z][a-z] \d{5})?",
            )?,
            cards: vec![
                (ci(r"\b4\d{3}[- ]?\d{4}[- ]?\d{4}[- ]?\d{4}\b")?, "visa"),
                (
                    ci(r"\b5[1-5]\d{2}[- ]?\d{4}[- ]?\d{4}[- ]?\d{4}\b")?,
                    "mastercard",
                ),
                (ci(r"\b3[47]\d{2}[- ]?\d{6}[- ]?\d{5}\b")?, "amex"),
                (ci(r"\b6011[- ]?\d{4}[- ]?\d{4}[- ]?\d{4}\b")?, "discover"),
            ],
            // The inline forms tolerate a doubled label prefix
            // ("Facebook: fb: handle"), common in structured dox drops.
            facebook_url: ci(r"(https?://)?(www\.)?facebook\.com/([a-z0-9.]+)")?,
            facebook_inline: ci(
                r"\b(facebook|fb)\s*:\s*(?:(?:facebook|fb)\s*:\s*)?@?([a-z0-9._-]+)",
            )?,
            instagram_url: ci(r"(https?://)?(www\.)?instagram\.com/([a-z0-9._]+)")?,
            instagram_inline: ci(
                r"\b(instagram|ig)\s*:\s*(?:(?:instagram|ig)\s*:\s*)?@?([a-z0-9._]+)",
            )?,
            twitter_url: ci(r"(https?://)?(www\.)?twitter\.com/([a-z0-9_]+)")?,
            twitter_inline: ci(r"\btwitter\s*:\s*(?:twitter\s*:\s*)?@?([a-z0-9_]+)")?,
            youtube_url: ci(
                r"(https?://)?(www\.)?youtube\.com/((channel|c|user)/|@)?([a-z0-9_-]+)",
            )?,
            youtube_inline: ci(r"\byoutube\s*:\s*(?:youtube\s*:\s*)?@?([a-z0-9_-]+)")?,
        };
        // Spec mirrors of the INC005 lint: Table 6 fixes nine PII families;
        // §5.6's twelve expressions count each card network once.
        debug_assert_eq!(PiiKind::ALL.len(), 9);
        debug_assert_eq!(extractor.cards.len(), 4);
        Ok(extractor)
    }

    /// Extracts all PII spans from a document.
    ///
    /// Cheap literal gates skip pattern families that cannot possibly match
    /// (no digit → no phone/SSN/card/address; no `@` → no email; no platform
    /// name → no profile), which makes scanning the overwhelmingly benign
    /// bulk of a corpus much faster without changing results.
    pub fn extract(&self, text: &str) -> Vec<PiiMatch> {
        let mut out = Vec::new();
        let lower = text.to_lowercase();
        let has_digit = text.bytes().any(|b| b.is_ascii_digit());

        if lower.contains('@') {
            self.find_simple(&self.email, PiiKind::Email, text, &mut out);
        }
        if has_digit {
            self.find_simple(&self.phone, PiiKind::Phone, text, &mut out);
            self.find_simple(&self.ssn, PiiKind::Ssn, text, &mut out);
            self.find_simple(&self.address, PiiKind::Address, text, &mut out);
            for (re, _network) in &self.cards {
                for m in re.find_iter(text) {
                    if luhn_valid(m.as_str()) {
                        out.push(PiiMatch {
                            kind: PiiKind::CreditCard,
                            text: m.as_str().to_string(),
                            start: m.start,
                            end: m.end,
                        });
                    }
                }
            }
        }
        if lower.contains("facebook") || lower.contains("fb") {
            self.find_profile(
                &self.facebook_url,
                3,
                FACEBOOK_STOPWORDS,
                PiiKind::Facebook,
                text,
                &mut out,
            );
            self.find_profile(
                &self.facebook_inline,
                2,
                INLINE_STOPWORDS,
                PiiKind::Facebook,
                text,
                &mut out,
            );
        }
        if lower.contains("instagram") || lower.contains("ig") {
            self.find_profile(
                &self.instagram_url,
                3,
                INSTAGRAM_STOPWORDS,
                PiiKind::Instagram,
                text,
                &mut out,
            );
            self.find_profile(
                &self.instagram_inline,
                2,
                INLINE_STOPWORDS,
                PiiKind::Instagram,
                text,
                &mut out,
            );
        }
        if lower.contains("twitter") {
            self.find_profile(
                &self.twitter_url,
                3,
                TWITTER_STOPWORDS,
                PiiKind::Twitter,
                text,
                &mut out,
            );
            self.find_profile(
                &self.twitter_inline,
                1,
                INLINE_STOPWORDS,
                PiiKind::Twitter,
                text,
                &mut out,
            );
        }
        if lower.contains("youtube") {
            self.find_profile(
                &self.youtube_url,
                5,
                YOUTUBE_STOPWORDS,
                PiiKind::YouTube,
                text,
                &mut out,
            );
            self.find_profile(
                &self.youtube_inline,
                1,
                INLINE_STOPWORDS,
                PiiKind::YouTube,
                text,
                &mut out,
            );
        }

        // Phone numbers may shadow SSN-like shapes and vice versa; dedup
        // exact duplicate spans per kind, then sort by position.
        out.sort_by_key(|m| (m.start, m.end, m.kind));
        out.dedup_by(|a, b| a.start == b.start && a.end == b.end && a.kind == b.kind);
        out
    }

    /// The set of distinct PII kinds present.
    pub fn pii_set(&self, text: &str) -> PiiSet {
        self.extract(text).into_iter().map(|m| m.kind).collect()
    }

    /// Extracted OSN handles, normalized to lowercase `platform:handle`
    /// keys — the linking identity used by the repeated-dox analysis (§7.3).
    pub fn osn_handles(&self, text: &str) -> Vec<String> {
        let mut handles: Vec<String> = self
            .extract(text)
            .into_iter()
            .filter(|m| m.kind.is_osn_profile())
            .map(|m| {
                let handle = m
                    .text
                    .rsplit(['/', ':', ' ', '@'])
                    .next()
                    .unwrap_or(&m.text)
                    .to_lowercase();
                format!("{}:{}", m.kind.slug(), handle)
            })
            .collect();
        handles.sort();
        handles.dedup();
        handles
    }

    fn find_simple(&self, re: &Regex, kind: PiiKind, text: &str, out: &mut Vec<PiiMatch>) {
        for m in re.find_iter(text) {
            out.push(PiiMatch {
                kind,
                text: m.as_str().to_string(),
                start: m.start,
                end: m.end,
            });
        }
    }

    fn find_profile(
        &self,
        re: &Regex,
        handle_group: usize,
        stopwords: &[&str],
        kind: PiiKind,
        text: &str,
        out: &mut Vec<PiiMatch>,
    ) {
        for caps in re.captures_iter(text) {
            // Group 0 is always present in a match; skip defensively rather
            // than panic if the VM ever returns malformed slots.
            let Some(whole) = caps.get(0) else {
                continue;
            };
            let Some(handle) = caps.get(handle_group) else {
                continue;
            };
            let handle_lc = handle.as_str().to_lowercase();
            if handle_lc.len() < 2 {
                continue;
            }
            if stopwords.iter().any(|s| *s == handle_lc) {
                continue;
            }
            out.push(PiiMatch {
                kind,
                text: whole.as_str().to_string(),
                start: whole.start,
                end: whole.end,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex() -> PiiExtractor {
        PiiExtractor::new()
    }

    fn kinds(text: &str) -> Vec<PiiKind> {
        ex().pii_set(text).iter().collect()
    }

    #[test]
    fn builtin_patterns_compile() {
        // `PiiExtractor::new` leans on this: it proves the builtin pattern
        // set compiles, so the infallible wrapper cannot actually panic.
        assert!(PiiExtractor::try_new().is_ok());
    }

    #[test]
    fn extracts_emails() {
        assert_eq!(
            kinds("reach me at jane.doe42@example.com ok"),
            vec![PiiKind::Email]
        );
        assert!(kinds("no at sign here").is_empty());
    }

    #[test]
    fn extracts_us_phones_in_common_formats() {
        for t in [
            "call (212) 555-0187",
            "call 212-555-0187",
            "call 212.555.0187",
            "call 1-212-555-0187",
            "call +1 212 555 0187",
        ] {
            assert!(kinds(t).contains(&PiiKind::Phone), "{t}");
        }
        assert!(!kinds("in the year 2125550").contains(&PiiKind::Phone));
    }

    #[test]
    fn extracts_ssns() {
        assert!(kinds("ssn: 000-12-3456").contains(&PiiKind::Ssn));
        assert!(!kinds("date 2020-08-01").contains(&PiiKind::Ssn));
    }

    #[test]
    fn extracts_addresses() {
        assert!(kinds("lives at 12345 Maplewood Ave, Springfield, NY 10001")
            .contains(&PiiKind::Address));
        assert!(kinds("22 Hollow Creek Rd is the spot").contains(&PiiKind::Address));
        assert!(!kinds("the 5 best streets in town").contains(&PiiKind::Address));
    }

    #[test]
    fn cards_require_luhn() {
        assert!(kinds("card 4111111111111111 exp 09/27").contains(&PiiKind::CreditCard));
        // Same shape, bad checksum.
        assert!(!kinds("card 4111111111111112 exp 09/27").contains(&PiiKind::CreditCard));
        // Amex test number.
        assert!(kinds("amex 378282246310005").contains(&PiiKind::CreditCard));
    }

    #[test]
    fn profile_urls_are_extracted() {
        assert!(kinds("https://facebook.com/some.person.12").contains(&PiiKind::Facebook));
        assert!(kinds("instagram.com/some_person_9").contains(&PiiKind::Instagram));
        assert!(kinds("find him at twitter.com/someperson99").contains(&PiiKind::Twitter));
        assert!(kinds("youtube.com/channel/UCabc123def").contains(&PiiKind::YouTube));
        assert!(kinds("https://www.youtube.com/@somecreator").contains(&PiiKind::YouTube));
    }

    #[test]
    fn inline_site_handle_forms_are_extracted() {
        assert!(kinds("fb: jane.doe.77").contains(&PiiKind::Facebook));
        assert!(kinds("Facebook: jane.doe.77").contains(&PiiKind::Facebook));
        assert!(kinds("ig: jane_doe_77").contains(&PiiKind::Instagram));
        assert!(kinds("twitter: @janedoe77").contains(&PiiKind::Twitter));
        assert!(kinds("youtube: janedoech9").contains(&PiiKind::YouTube));
    }

    #[test]
    fn stopwords_suppress_functionality_urls() {
        assert!(!kinds("see facebook.com/pages for info").contains(&PiiKind::Facebook));
        assert!(!kinds("twitter.com/search is down").contains(&PiiKind::Twitter));
        assert!(!kinds("youtube.com/watch fails to load").contains(&PiiKind::YouTube));
        assert!(!kinds("instagram.com/explore trending").contains(&PiiKind::Instagram));
    }

    #[test]
    fn multiple_kinds_in_one_document() {
        let text = "Name: pat q\nPhone: (212) 555-0101\nEmail: pat@example.net\n\
                    Twitter: @patq1\nAddress: 900 Larkspur Ave, Fairview, OH 44111";
        let set = ex().pii_set(text);
        assert!(set.contains(PiiKind::Phone));
        assert!(set.contains(PiiKind::Email));
        assert!(set.contains(PiiKind::Twitter));
        assert!(set.contains(PiiKind::Address));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn match_offsets_index_source() {
        let text = "mail: someone@example.com and cell 212-555-0144";
        for m in ex().extract(text) {
            assert_eq!(&text[m.start..m.end], m.text, "{m:?}");
        }
    }

    #[test]
    fn osn_handles_are_normalized_keys() {
        let handles = ex().osn_handles("twitter.com/JaneDoe77 and later twitter: @janedoe77");
        assert_eq!(handles, vec!["twitter:janedoe77".to_string()]);
    }

    #[test]
    fn benign_text_yields_nothing() {
        assert!(ex()
            .extract("we talked about the game for hours")
            .is_empty());
        assert!(ex().extract("").is_empty());
    }

    #[test]
    fn extraction_survives_weird_input() {
        let weird = "@@@:::///...---000";
        let _ = ex().extract(weird); // must not panic
        let unicode = "héllo wörld ünïcode 500 Ämber Ave";
        let _ = ex().extract(unicode);
    }
}
