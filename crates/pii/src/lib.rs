//! # incite-pii
//!
//! The PII-extraction layer of §5.6: twelve regular expressions (built on
//! the from-scratch [`incite_regex`] engine) that pull addresses, card
//! numbers, emails, social-media profiles, phone numbers and SSNs out of
//! documents, plus the pronoun-based target-gender inference and the
//! PII → harm-risk mapping of §7.2.
//!
//! Design notes mirroring the paper:
//! * US-format phone numbers, addresses and SSNs only ("we chose to detect
//!   only U.S. phone numbers, addresses and SSNs … to optimize for
//!   precision").
//! * One expression per card network, each Luhn-validated.
//! * Two expression families per social platform: profile URLs (with
//!   reserved-word stoplists for site functionality paths) and
//!   `site: handle` shorthand.
//!
//! Modules: [`extract`] (the extractor), [`luhn`], [`gender`],
//! [`harm`] (risk assignment), [`eval`] (the §5.6 accuracy harness).

pub mod eval;
pub mod extract;
pub mod gender;
pub mod harm;
pub mod luhn;
pub mod redact;

pub use extract::{PiiError, PiiExtractor, PiiMatch};
pub use gender::infer_gender;
pub use harm::assign_risks;
pub use redact::redact;
