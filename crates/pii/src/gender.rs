//! Pronoun-based target-gender inference (§5.6).
//!
//! Counts "he/him/his" vs "she/her/hers" pronoun groups and picks the more
//! frequent one, exactly as the paper describes. The paper's manual
//! evaluation found 94.3 % agreement; the same caveats apply (misgendering,
//! third parties mentioned in the text).

use incite_taxonomy::Gender;

const MASCULINE: [&str; 3] = ["he", "him", "his"];
const FEMININE: [&str; 3] = ["she", "her", "hers"];

/// Counts pronoun-group occurrences as standalone lowercase word tokens.
pub fn pronoun_counts(text: &str) -> (usize, usize) {
    let mut masculine = 0;
    let mut feminine = 0;
    let mut word = String::new();
    let mut flush = |w: &mut String| {
        if MASCULINE.contains(&w.as_str()) {
            masculine += 1;
        } else if FEMININE.contains(&w.as_str()) {
            feminine += 1;
        }
        w.clear();
    };
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            for lc in ch.to_lowercase() {
                word.push(lc);
            }
        } else if !word.is_empty() {
            flush(&mut word);
        }
    }
    if !word.is_empty() {
        flush(&mut word);
    }
    (masculine, feminine)
}

/// Infers the likely target gender from pronoun counts.
pub fn infer_gender(text: &str) -> Gender {
    let (m, f) = pronoun_counts(text);
    Gender::from_pronoun_counts(m, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masculine_majority() {
        assert_eq!(
            infer_gender("he posted it, then his friends spread it, report him"),
            Gender::Male
        );
    }

    #[test]
    fn feminine_majority() {
        assert_eq!(
            infer_gender("she runs the channel, her posts, flag her"),
            Gender::Female
        );
    }

    #[test]
    fn absence_is_unknown() {
        assert_eq!(
            infer_gender("report this account to the platform"),
            Gender::Unknown
        );
        assert_eq!(infer_gender(""), Gender::Unknown);
    }

    #[test]
    fn tie_is_unknown() {
        assert_eq!(infer_gender("he said, she said"), Gender::Unknown);
    }

    #[test]
    fn pronouns_must_be_standalone_words() {
        // "theme", "shelter", "history" must not count.
        let (m, f) = pronoun_counts("the theme of the shelter's history");
        assert_eq!((m, f), (0, 0));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(infer_gender("HE did it. HIS account."), Gender::Male);
    }

    #[test]
    fn counts_are_exact() {
        let (m, f) = pronoun_counts("he him his she her hers hers");
        assert_eq!(m, 3);
        assert_eq!(f, 4);
    }
}
