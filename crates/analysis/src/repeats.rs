//! Repeated-dox linking (§7.3).
//!
//! "Social media profile accounts (Facebook, YouTube, Twitter, Instagram)
//! were the most reliable method of linking multiple doxes that were likely
//! about the same target." Doxes sharing any extracted OSN handle are
//! grouped; the analysis reports how many doxes repeat, how often repeats
//! stay on one data set, and the per-data-set split.

use incite_corpus::Document;
use incite_pii::PiiExtractor;
use incite_taxonomy::DataSet;
use std::collections::HashMap;

/// §7.3 summary statistics.
#[derive(Debug, Clone)]
pub struct RepeatStats {
    /// Doxes analyzed.
    pub total: usize,
    /// Doxes whose OSN handle appears in more than one dox.
    pub repeated: usize,
    /// Repeated doxes whose handle never leaves one data set.
    pub same_data_set: usize,
    /// Repeated doxes whose handle spans data sets.
    pub cross_posted: usize,
    /// Repeated doxes per data set.
    pub per_data_set: Vec<(DataSet, usize)>,
    /// Number of distinct repeated targets (handle groups of size > 1).
    pub repeated_targets: usize,
}

impl RepeatStats {
    /// Fraction of doxes that are repeats (paper: 20.1 % on the full
    /// above-threshold set; 11.12 % inside the annotated set).
    pub fn repeated_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.repeated as f64 / self.total as f64
        }
    }

    /// Fraction of repeats staying on one data set (paper: 98 %).
    pub fn same_data_set_fraction(&self) -> f64 {
        if self.repeated == 0 {
            0.0
        } else {
            self.same_data_set as f64 / self.repeated as f64
        }
    }
}

/// Links doxes by extracted OSN handles and computes [`RepeatStats`].
pub fn repeated_doxes(extractor: &PiiExtractor, docs: &[&Document]) -> RepeatStats {
    // handle → indices of docs containing it.
    let mut by_handle: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, d) in docs.iter().enumerate() {
        for handle in extractor.osn_handles(&d.text) {
            by_handle.entry(handle).or_default().push(i);
        }
    }

    let mut repeated_flags = vec![false; docs.len()];
    let mut cross_flags = vec![false; docs.len()];
    let mut repeated_targets = 0;
    for indices in by_handle.values() {
        if indices.len() < 2 {
            continue;
        }
        repeated_targets += 1;
        let first_ds = docs[indices[0]].platform.data_set();
        let crosses = indices
            .iter()
            .any(|&i| docs[i].platform.data_set() != first_ds);
        for &i in indices {
            repeated_flags[i] = true;
            if crosses {
                cross_flags[i] = true;
            }
        }
    }

    let repeated = repeated_flags.iter().filter(|&&f| f).count();
    let cross_posted = cross_flags.iter().filter(|&&f| f).count();
    let mut per_data_set: Vec<(DataSet, usize)> = DataSet::ALL
        .iter()
        .map(|&ds| {
            let n = docs
                .iter()
                .enumerate()
                .filter(|(i, d)| repeated_flags[*i] && d.platform.data_set() == ds)
                .count();
            (ds, n)
        })
        .collect();
    per_data_set.retain(|(_, n)| *n > 0);

    RepeatStats {
        total: docs.len(),
        repeated,
        same_data_set: repeated - cross_posted,
        cross_posted,
        per_data_set,
        repeated_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(91))
    }

    fn dox_docs(corpus: &Corpus) -> Vec<&Document> {
        corpus.documents.iter().filter(|d| d.truth.is_dox).collect()
    }

    #[test]
    fn finds_planted_repeats() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let stats = repeated_doxes(&ex, &docs);
        assert_eq!(stats.total, docs.len());
        // Generator plants ~11 % repeats (annotated-set duplicate rate);
        // only doxes whose shared identity carries an OSN handle link up.
        let frac = stats.repeated_fraction();
        assert!(frac > 0.02, "repeated fraction {frac}");
        assert!(frac < 0.5, "implausibly many repeats: {frac}");
        assert!(stats.repeated_targets > 0);
    }

    #[test]
    fn repeats_stay_on_one_data_set_mostly() {
        // §7.3: 98 % same data set (generator plants the same bias).
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let stats = repeated_doxes(&ex, &docs);
        if stats.repeated > 20 {
            assert!(
                stats.same_data_set_fraction() > 0.8,
                "same-data-set {}",
                stats.same_data_set_fraction()
            );
        }
        assert_eq!(stats.same_data_set + stats.cross_posted, stats.repeated);
    }

    #[test]
    fn per_data_set_counts_sum_to_repeated() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let stats = repeated_doxes(&ex, &docs);
        let sum: usize = stats.per_data_set.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, stats.repeated);
    }

    #[test]
    fn no_handles_means_no_repeats() {
        let ex = PiiExtractor::new();
        let stats = repeated_doxes(&ex, &[]);
        assert_eq!(stats.repeated, 0);
        assert_eq!(stats.repeated_fraction(), 0.0);
        assert_eq!(stats.same_data_set_fraction(), 0.0);
    }
}
