//! Attack-type tabulation (Tables 5 and 11) and §6.2 statistics.

use incite_corpus::Document;
use incite_stats::chisq::{chi_square_gof, ChiSquareResult};
use incite_stats::correction::benjamini_hochberg;
use incite_taxonomy::{AttackType, DataSet, Subcategory};

/// One data-set column of Tables 5/11.
#[derive(Debug, Clone)]
pub struct AttackColumn {
    pub data_set: DataSet,
    /// Total annotated calls to harassment in the column.
    pub size: usize,
    /// Count per subcategory (Table 11 rows), indexed by
    /// [`Subcategory::index`].
    pub subcategory_counts: Vec<usize>,
}

impl AttackColumn {
    /// Count for one subcategory.
    pub fn subcategory(&self, sub: Subcategory) -> usize {
        self.subcategory_counts[sub.index()]
    }

    /// Count for a parent attack type: documents carrying *any* label under
    /// the parent (matching the paper's per-document parent totals).
    pub fn parent(&self, parent: AttackType, docs: &[&Document]) -> usize {
        docs.iter()
            .filter(|d| d.platform.data_set() == self.data_set)
            .filter(|d| d.truth.labels.contains_parent(parent))
            .count()
    }

    /// Percentage of the column size.
    pub fn percent(&self, count: usize) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.size as f64
        }
    }
}

/// Tabulates Table 11 columns for the CTH data sets.
pub fn tabulate(docs: &[&Document]) -> Vec<AttackColumn> {
    [DataSet::Boards, DataSet::Chat, DataSet::Gab]
        .iter()
        .map(|&ds| {
            let in_ds: Vec<&&Document> = docs
                .iter()
                .filter(|d| d.platform.data_set() == ds)
                .collect();
            let mut counts = vec![0usize; Subcategory::COUNT];
            for d in &in_ds {
                for sub in d.truth.labels.iter() {
                    counts[sub.index()] += 1;
                }
            }
            AttackColumn {
                data_set: ds,
                size: in_ds.len(),
                subcategory_counts: counts,
            }
        })
        .collect()
}

/// §6.2 co-occurrence summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoOccurrence {
    pub total: usize,
    /// Documents with > 1 parent attack type.
    pub multi_label: usize,
    pub exactly_two: usize,
    pub exactly_three: usize,
    pub four_or_more: usize,
    /// Fraction of surveillance CTH that are also content leakage.
    pub surveillance_with_leakage: f64,
    /// Fraction of impersonation CTH that are also public-opinion
    /// manipulation.
    pub impersonation_with_pom: f64,
}

/// Computes the §6.2 co-occurrence summary over annotated CTH documents.
pub fn co_occurrence(docs: &[&Document]) -> CoOccurrence {
    let mut multi = 0;
    let mut two = 0;
    let mut three = 0;
    let mut four = 0;
    let mut surveillance = 0;
    let mut surveillance_leak = 0;
    let mut impersonation = 0;
    let mut impersonation_pom = 0;
    for d in docs {
        let parents = d.truth.labels.parent_count();
        if parents > 1 {
            multi += 1;
            match parents {
                2 => two += 1,
                3 => three += 1,
                _ => four += 1,
            }
        }
        if d.truth.labels.contains_parent(AttackType::Surveillance) {
            surveillance += 1;
            if d.truth.labels.contains_parent(AttackType::ContentLeakage) {
                surveillance_leak += 1;
            }
        }
        if d.truth.labels.contains_parent(AttackType::Impersonation) {
            impersonation += 1;
            if d.truth
                .labels
                .contains_parent(AttackType::PublicOpinionManipulation)
            {
                impersonation_pom += 1;
            }
        }
    }
    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    CoOccurrence {
        total: docs.len(),
        multi_label: multi,
        exactly_two: two,
        exactly_three: three,
        four_or_more: four,
        surveillance_with_leakage: frac(surveillance_leak, surveillance),
        impersonation_with_pom: frac(impersonation_pom, impersonation),
    }
}

/// One §6.2 comparison: a reporting subcategory's counts across data sets,
/// chi-square tested against a uniform-rate null.
#[derive(Debug, Clone)]
pub struct SubcategoryComparison {
    pub subcategory: Subcategory,
    /// (data set, count, column size) triples.
    pub cells: Vec<(DataSet, usize, usize)>,
    pub test: Option<ChiSquareResult>,
    /// Significant after Benjamini–Hochberg at the given rate.
    pub significant: bool,
}

/// Runs the §6.2 one-way chi-square tests over the reporting subcategories
/// across data sets, BH-corrected.
pub fn reporting_comparisons(columns: &[AttackColumn], fdr: f64) -> Vec<SubcategoryComparison> {
    let subs = [
        Subcategory::FalseReportingToAuthorities,
        Subcategory::MassFlagging,
        Subcategory::ReportingMisc,
    ];
    let mut comparisons: Vec<SubcategoryComparison> = subs
        .iter()
        .map(|&sub| {
            let cells: Vec<(DataSet, usize, usize)> = columns
                .iter()
                .map(|c| (c.data_set, c.subcategory(sub), c.size))
                .collect();
            // Observed counts vs expectation proportional to column sizes.
            let observed: Vec<f64> = cells.iter().map(|(_, n, _)| *n as f64).collect();
            let total_obs: f64 = observed.iter().sum();
            let total_size: f64 = cells.iter().map(|(_, _, s)| *s as f64).sum();
            let expected: Vec<f64> = cells
                .iter()
                .map(|(_, _, s)| total_obs * (*s as f64) / total_size.max(1.0))
                .collect();
            let test = chi_square_gof(&observed, Some(&expected));
            SubcategoryComparison {
                subcategory: sub,
                cells,
                test,
                significant: false,
            }
        })
        .collect();
    let pvals: Vec<f64> = comparisons
        .iter()
        .map(|c| c.test.map(|t| t.p_value).unwrap_or(1.0))
        .collect();
    for (c, rej) in comparisons.iter_mut().zip(benjamini_hochberg(&pvals, fdr)) {
        c.significant = rej;
    }
    comparisons
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(21))
    }

    fn cth_docs(corpus: &Corpus) -> Vec<&Document> {
        corpus.documents.iter().filter(|d| d.truth.is_cth).collect()
    }

    #[test]
    fn columns_cover_three_data_sets() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate(&docs);
        assert_eq!(cols.len(), 3);
        for c in &cols {
            assert!(c.size > 0, "{:?} empty", c.data_set);
            let total: usize = c.subcategory_counts.iter().sum();
            assert!(total >= c.size, "labels should cover every doc");
        }
    }

    #[test]
    fn reporting_dominates_all_columns() {
        // Table 5's headline: reporting is the largest parent everywhere.
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate(&docs);
        for c in &cols {
            let reporting = c.parent(AttackType::Reporting, &docs);
            for parent in AttackType::ALL {
                if parent != AttackType::Reporting {
                    assert!(
                        reporting >= c.parent(parent, &docs),
                        "{parent} beats reporting on {:?}",
                        c.data_set
                    );
                }
            }
            // And it's > 40 % of the column, as in Table 5.
            assert!(c.percent(reporting) > 35.0);
        }
    }

    #[test]
    fn overloading_skews_away_from_boards() {
        // Table 5: boards 6.06 % overloading vs chat 14.47 % / Gab 19.85 %.
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate(&docs);
        let pct = |ds: DataSet| {
            let c = cols.iter().find(|c| c.data_set == ds).unwrap();
            c.percent(c.parent(AttackType::Overloading, &docs))
        };
        assert!(pct(DataSet::Boards) < pct(DataSet::Chat));
        assert!(pct(DataSet::Boards) < pct(DataSet::Gab));
    }

    #[test]
    fn co_occurrence_matches_planted_structure() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let co = co_occurrence(&docs);
        assert_eq!(co.total, docs.len());
        let multi_frac = co.multi_label as f64 / co.total as f64;
        // §6.2: 13 % multi-label (some slack at this scale). Blog-planted
        // CTH are all dual-label, nudging the rate up slightly.
        assert!(
            (0.06..0.25).contains(&multi_frac),
            "multi fraction {multi_frac}"
        );
        // Two-label dominates among multi.
        assert!(co.exactly_two > co.exactly_three);
        assert_eq!(
            co.multi_label,
            co.exactly_two + co.exactly_three + co.four_or_more
        );
    }

    #[test]
    fn reporting_comparisons_produce_tests() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate(&docs);
        let comps = reporting_comparisons(&cols, 0.1);
        assert_eq!(comps.len(), 3);
        for c in &comps {
            assert_eq!(c.cells.len(), 3);
            assert!(c.test.is_some());
        }
    }

    #[test]
    fn empty_input_is_safe() {
        let cols = tabulate(&[]);
        assert!(cols.iter().all(|c| c.size == 0));
        let co = co_occurrence(&[]);
        assert_eq!(co.multi_label, 0);
        assert_eq!(co.surveillance_with_leakage, 0.0);
    }
}
