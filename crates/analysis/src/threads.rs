//! Board-thread analyses (§6.3 for CTH, §7.4 for doxes; Figures 5 and 6).

use incite_corpus::{Corpus, DocId, Document};
use incite_stats::correction::benjamini_hochberg;
use incite_stats::descriptive::{log_transform, summarize, Summary};
use incite_stats::ecdf::Ecdf;
use incite_stats::mannwhitney::mann_whitney_u;
use incite_stats::ttest::{welch_t_test, TTestResult};
use incite_taxonomy::{AttackType, Platform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Position statistics for planted documents inside board threads.
#[derive(Debug, Clone)]
pub struct PositionStats {
    /// Number of documents analyzed.
    pub n: usize,
    /// Fraction appearing as the thread's first post.
    pub first_fraction: f64,
    /// Fraction appearing as the thread's last post.
    pub last_fraction: f64,
    /// Median / mean / std of the (1-based) thread position.
    pub position: Summary,
}

/// Computes §6.3/§7.4 position statistics over board documents.
pub fn position_stats(docs: &[&Document]) -> PositionStats {
    let threaded: Vec<_> = docs.iter().filter_map(|d| d.thread).collect();
    let n = threaded.len();
    let first = threaded.iter().filter(|t| t.is_first()).count();
    let last = threaded.iter().filter(|t| t.is_last()).count();
    let positions: Vec<f64> = threaded.iter().map(|t| (t.position + 1) as f64).collect();
    PositionStats {
        n,
        first_fraction: if n == 0 { 0.0 } else { first as f64 / n as f64 },
        last_fraction: if n == 0 { 0.0 } else { last as f64 / n as f64 },
        position: summarize(&positions),
    }
}

/// Samples the paper's random-post baseline: `n` board posts verified not
/// to be calls to harassment or doxes (§6.3 uses 5,000).
pub fn baseline_sample(corpus: &Corpus, n: usize, seed: u64) -> Vec<&Document> {
    let mut pool: Vec<&Document> = corpus
        .by_platform(Platform::Boards)
        .filter(|d| !d.truth.is_cth && !d.truth.is_dox)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

/// Response sizes (posts after the document in its thread), the §6.3
/// definition of a call's "responses".
pub fn response_sizes(docs: &[&Document]) -> Vec<f64> {
    docs.iter()
        .filter_map(|d| d.thread)
        .map(|t| t.responses() as f64 + 1.0)
        .collect()
}

/// One attack type's response-size comparison against the baseline.
#[derive(Debug, Clone)]
pub struct ResponseComparison {
    pub attack_type: AttackType,
    pub n: usize,
    pub test: Option<TTestResult>,
    /// Nonparametric robustness check: two-sided Mann–Whitney p-value on
    /// the raw (untransformed) response sizes.
    pub rank_p: Option<f64>,
    /// Significant after BH correction (the paper uses error rate 0.1).
    pub significant: bool,
}

/// Runs the §6.3 per-attack-type response-size tests: Welch t-tests on
/// log-transformed sizes vs the baseline, restricted to single-category
/// documents ("to ensure independence of samples"), skipping categories
/// with fewer than `min_n` observations (the paper excluded lockout and
/// surveillance with 2 each), BH-corrected at `fdr`.
pub fn response_size_tests(
    cth_docs: &[&Document],
    baseline: &[&Document],
    min_n: usize,
    fdr: f64,
) -> Vec<ResponseComparison> {
    let base_log = log_transform(&response_sizes(baseline));
    let mut comparisons: Vec<ResponseComparison> = AttackType::ALL
        .iter()
        .map(|&attack| {
            let single_label: Vec<&Document> = cth_docs
                .iter()
                .copied()
                .filter(|d| {
                    d.truth.labels.parent_count() == 1
                        && d.truth.labels.contains_parent(attack)
                        && d.thread.is_some()
                })
                .collect();
            let n = single_label.len();
            let (test, rank_p) = if n >= min_n {
                let raw = response_sizes(&single_label);
                let sizes = log_transform(&raw);
                let t = welch_t_test(&sizes, &base_log);
                let u = mann_whitney_u(&raw, &response_sizes(baseline)).map(|r| r.p_value);
                (t, u)
            } else {
                (None, None)
            };
            ResponseComparison {
                attack_type: attack,
                n,
                test,
                rank_p,
                significant: false,
            }
        })
        .collect();
    let tested: Vec<usize> = comparisons
        .iter()
        .enumerate()
        .filter(|(_, c)| c.test.is_some())
        .map(|(i, _)| i)
        .collect();
    let pvals: Vec<f64> = tested
        .iter()
        .map(|&i| comparisons[i].test.unwrap().p_value)
        .collect();
    for (&i, rej) in tested.iter().zip(benjamini_hochberg(&pvals, fdr)) {
        comparisons[i].significant = rej;
    }
    comparisons
}

/// Figure 5 data: thread-size ECDFs for CTH documents and the baseline,
/// evaluated on a log grid.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// (thread size, cumulative fraction) for the CTH series.
    pub cth_curve: Vec<(f64, f64)>,
    /// Same for the baseline series.
    pub baseline_curve: Vec<(f64, f64)>,
}

/// Computes Figure 5.
pub fn figure5(cth_docs: &[&Document], baseline: &[&Document], points: usize) -> Figure5 {
    let thread_sizes = |docs: &[&Document]| -> Vec<f64> {
        docs.iter()
            .filter_map(|d| d.thread)
            .map(|t| t.thread_len as f64)
            .collect()
    };
    let cth_sizes = thread_sizes(cth_docs);
    let base_sizes = thread_sizes(baseline);
    let max = cth_sizes
        .iter()
        .chain(&base_sizes)
        .fold(1.0f64, |a, &b| a.max(b));
    let grid = Ecdf::log_grid(max, points);
    Figure5 {
        cth_curve: Ecdf::new(&cth_sizes).curve(&grid),
        baseline_curve: Ecdf::new(&base_sizes).curve(&grid),
    }
}

/// Figure 6 data: thread-size quartiles per attack type plus the baseline.
#[derive(Debug, Clone)]
pub struct Figure6Row {
    /// `None` marks the baseline row.
    pub attack_type: Option<AttackType>,
    pub n: usize,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
}

/// Computes Figure 6 (box-plot quantiles of thread sizes per attack type).
pub fn figure6(cth_docs: &[&Document], baseline: &[&Document]) -> Vec<Figure6Row> {
    let quartiles = |docs: &[&Document]| -> (usize, f64, f64, f64) {
        let sizes: Vec<f64> = docs
            .iter()
            .filter_map(|d| d.thread)
            .map(|t| t.thread_len as f64)
            .collect();
        let e = Ecdf::new(&sizes);
        (
            sizes.len(),
            e.quantile(0.25),
            e.quantile(0.5),
            e.quantile(0.75),
        )
    };
    let mut rows = Vec::new();
    for attack in AttackType::ALL {
        let docs: Vec<&Document> = cth_docs
            .iter()
            .copied()
            .filter(|d| d.truth.labels.contains_parent(attack) && d.thread.is_some())
            .collect();
        if docs.is_empty() {
            continue;
        }
        let (n, q1, median, q3) = quartiles(&docs);
        rows.push(Figure6Row {
            attack_type: Some(attack),
            n,
            q1,
            median,
            q3,
        });
    }
    let (n, q1, median, q3) = quartiles(baseline);
    rows.push(Figure6Row {
        attack_type: None,
        n,
        q1,
        median,
        q3,
    });
    rows
}

/// Filters a resolved id set down to board documents.
pub fn board_docs<'c>(corpus: &'c Corpus, ids: &[DocId]) -> Vec<&'c Document> {
    let set: HashSet<DocId> = ids.iter().copied().collect();
    corpus
        .by_platform(Platform::Boards)
        .filter(|d| set.contains(&d.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(44))
    }

    fn board_cth(corpus: &Corpus) -> Vec<&Document> {
        corpus
            .by_platform(Platform::Boards)
            .filter(|d| d.truth.is_cth)
            .collect()
    }

    #[test]
    fn cth_rarely_first_or_last() {
        let corpus = corpus();
        let docs = board_cth(&corpus);
        let stats = position_stats(&docs);
        assert!(stats.n > 100);
        // Paper: 3.7 % first, 2.7 % last.
        assert!(
            stats.first_fraction < 0.10,
            "first {}",
            stats.first_fraction
        );
        assert!(stats.last_fraction < 0.10, "last {}", stats.last_fraction);
        // Positions are spread through threads, not clustered at the start.
        assert!(stats.position.mean > 2.0);
    }

    #[test]
    fn dox_first_fraction_exceeds_cth() {
        // Paper: doxes open threads more often (9.7 % vs 3.7 %).
        let corpus = corpus();
        let cth = position_stats(&board_cth(&corpus));
        let doxes: Vec<&Document> = corpus
            .by_platform(Platform::Boards)
            .filter(|d| d.truth.is_dox && !d.truth.is_cth)
            .collect();
        let dox = position_stats(&doxes);
        assert!(
            dox.first_fraction > cth.first_fraction,
            "dox {} vs cth {}",
            dox.first_fraction,
            cth.first_fraction
        );
    }

    #[test]
    fn baseline_is_clean_and_sized() {
        let corpus = corpus();
        let base = baseline_sample(&corpus, 1_000, 5);
        assert_eq!(base.len(), 1_000);
        assert!(base.iter().all(|d| !d.truth.is_cth && !d.truth.is_dox));
        // Seeded: same sample both times.
        let again = baseline_sample(&corpus, 1_000, 5);
        assert_eq!(
            base.iter().map(|d| d.id).collect::<Vec<_>>(),
            again.iter().map(|d| d.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn toxic_content_gets_larger_responses() {
        let corpus = corpus();
        let docs = board_cth(&corpus);
        let base = baseline_sample(&corpus, 2_000, 5);
        let comps = response_size_tests(&docs, &base, 5, 0.1);
        let toxic = comps
            .iter()
            .find(|c| c.attack_type == AttackType::ToxicContent)
            .unwrap();
        // The generator plants toxic-content calls in longer threads; the
        // t statistic should be positive (larger responses) as in §6.3.
        if let Some(t) = toxic.test {
            assert!(t.t > 0.0, "toxic t = {}", t.t);
        } else {
            panic!("toxic content had too few samples: {}", toxic.n);
        }
    }

    #[test]
    fn small_categories_are_excluded() {
        let corpus = corpus();
        let docs = board_cth(&corpus);
        let base = baseline_sample(&corpus, 500, 5);
        let comps = response_size_tests(&docs, &base, 10_000, 0.1);
        assert!(comps.iter().all(|c| c.test.is_none()));
        assert!(comps.iter().all(|c| !c.significant));
    }

    #[test]
    fn figure5_curves_are_monotone_cdf() {
        let corpus = corpus();
        let docs = board_cth(&corpus);
        let base = baseline_sample(&corpus, 2_000, 5);
        let fig = figure5(&docs, &base, 30);
        assert_eq!(fig.cth_curve.len(), 30);
        for curve in [&fig.cth_curve, &fig.baseline_curve] {
            for w in curve.windows(2) {
                assert!(w[0].1 <= w[1].1 + 1e-12);
                assert!(w[0].0 <= w[1].0);
            }
            assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn figure6_has_baseline_row() {
        let corpus = corpus();
        let docs = board_cth(&corpus);
        let base = baseline_sample(&corpus, 2_000, 5);
        let rows = figure6(&docs, &base);
        assert!(rows.iter().any(|r| r.attack_type.is_none()));
        for r in &rows {
            assert!(r.q1 <= r.median && r.median <= r.q3, "{r:?}");
        }
    }

    #[test]
    fn empty_inputs_are_safe() {
        let stats = position_stats(&[]);
        assert_eq!(stats.n, 0);
        assert_eq!(stats.first_fraction, 0.0);
        let fig = figure5(&[], &[], 10);
        assert!(fig.cth_curve.iter().all(|(_, y)| y.is_nan()));
    }
}
