//! CTH ∩ dox thread overlap (§6.3).
//!
//! "We used all calls to harassment and doxes above the threshold of our
//! classifier … We identified overlap by measuring the number of call to
//! harassment documents above the threshold that shared a thread with a dox
//! document above its respective threshold."

use incite_corpus::{Corpus, DocId};
use incite_taxonomy::Platform;
use std::collections::{HashMap, HashSet};

/// The §6.3 overlap measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadOverlap {
    /// Above-threshold CTH documents on the boards.
    pub cth_total: usize,
    /// Of those, documents sharing a thread with an above-threshold dox.
    pub cth_with_dox: usize,
    /// Above-threshold dox documents on the boards.
    pub dox_total: usize,
    /// Of those, documents sharing a thread with an above-threshold CTH.
    pub dox_with_cth: usize,
    /// Fraction of all board threads containing an above-threshold CTH
    /// (the paper's 0.20 % chance rate).
    pub cth_thread_base_rate: f64,
    /// Same for doxes (0.10 %).
    pub dox_thread_base_rate: f64,
    /// Documents in both above-threshold sets (the paper's 95 posts).
    pub both_documents: usize,
}

impl ThreadOverlap {
    /// Fraction of CTH sharing a thread with a dox (paper: 8.53 %).
    pub fn cth_with_dox_fraction(&self) -> f64 {
        if self.cth_total == 0 {
            0.0
        } else {
            self.cth_with_dox as f64 / self.cth_total as f64
        }
    }

    /// Fraction of dox threads containing a CTH (paper: 17.85 %).
    pub fn dox_with_cth_fraction(&self) -> f64 {
        if self.dox_total == 0 {
            0.0
        } else {
            self.dox_with_cth as f64 / self.dox_total as f64
        }
    }
}

/// Computes the thread overlap between two above-threshold id sets.
pub fn thread_overlap(corpus: &Corpus, cth_ids: &[DocId], dox_ids: &[DocId]) -> ThreadOverlap {
    let cth_set: HashSet<DocId> = cth_ids.iter().copied().collect();
    let dox_set: HashSet<DocId> = dox_ids.iter().copied().collect();

    // thread id → (has CTH, has dox) over board documents.
    let mut thread_flags: HashMap<u64, (bool, bool)> = HashMap::new();
    let mut cth_docs: Vec<(DocId, u64)> = Vec::new();
    let mut dox_docs: Vec<(DocId, u64)> = Vec::new();
    let mut total_threads: HashSet<u64> = HashSet::new();
    for d in corpus.by_platform(Platform::Boards) {
        let Some(t) = d.thread else { continue };
        total_threads.insert(t.thread_id);
        let flags = thread_flags.entry(t.thread_id).or_default();
        if cth_set.contains(&d.id) {
            flags.0 = true;
            cth_docs.push((d.id, t.thread_id));
        }
        if dox_set.contains(&d.id) {
            flags.1 = true;
            dox_docs.push((d.id, t.thread_id));
        }
    }

    let cth_with_dox = cth_docs
        .iter()
        .filter(|(_, tid)| thread_flags.get(tid).is_some_and(|f| f.1))
        .count();
    let dox_with_cth = dox_docs
        .iter()
        .filter(|(_, tid)| thread_flags.get(tid).is_some_and(|f| f.0))
        .count();
    let both_documents = cth_docs
        .iter()
        .filter(|(id, _)| dox_set.contains(id))
        .count();

    let n_threads = total_threads.len().max(1) as f64;
    let cth_threads = thread_flags.values().filter(|f| f.0).count() as f64;
    let dox_threads = thread_flags.values().filter(|f| f.1).count() as f64;

    ThreadOverlap {
        cth_total: cth_docs.len(),
        cth_with_dox,
        dox_total: dox_docs.len(),
        dox_with_cth,
        cth_thread_base_rate: cth_threads / n_threads,
        dox_thread_base_rate: dox_threads / n_threads,
        both_documents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    #[test]
    fn overlap_on_ground_truth_sets() {
        let corpus = generate(&CorpusConfig::small(66));
        let cth_ids: Vec<DocId> = corpus
            .by_platform(Platform::Boards)
            .filter(|d| d.truth.is_cth)
            .map(|d| d.id)
            .collect();
        let dox_ids: Vec<DocId> = corpus
            .by_platform(Platform::Boards)
            .filter(|d| d.truth.is_dox)
            .map(|d| d.id)
            .collect();
        let ov = thread_overlap(&corpus, &cth_ids, &dox_ids);
        assert_eq!(ov.cth_total, cth_ids.len());
        assert_eq!(ov.dox_total, dox_ids.len());
        // The generator plants ~8.5 % overlap from the CTH side.
        let frac = ov.cth_with_dox_fraction();
        assert!((0.03..0.25).contains(&frac), "cth-with-dox {frac}");
        // Dox-side fraction is in the same band (set sizes are comparable
        // in the synthetic corpus; the paper's 17.85 % reflects its CTH set
        // being twice the dox set).
        assert!(ov.dox_with_cth_fraction() >= frac * 0.4);
        // NOTE: the paper's 0.1–0.2 % chance base rates require the full
        // 405 M-post corpus; at test scale positives are dense relative to
        // thread count, so base rates are structurally higher and are not
        // asserted here (EXPERIMENTS.md discusses this).
        assert!(ov.dox_thread_base_rate > 0.0);
        // The planted "both pipelines" posts are visible.
        assert!(ov.both_documents > 0);
    }

    #[test]
    fn disjoint_sets_have_zero_overlap() {
        let corpus = generate(&CorpusConfig::tiny(9));
        let ov = thread_overlap(&corpus, &[], &[]);
        assert_eq!(ov.cth_total, 0);
        assert_eq!(ov.cth_with_dox_fraction(), 0.0);
        assert_eq!(ov.both_documents, 0);
    }

    #[test]
    fn non_board_ids_are_ignored() {
        let corpus = generate(&CorpusConfig::tiny(9));
        let gab_ids: Vec<DocId> = corpus.by_platform(Platform::Gab).map(|d| d.id).collect();
        let ov = thread_overlap(&corpus, &gab_ids, &gab_ids);
        assert_eq!(ov.cth_total, 0);
        assert_eq!(ov.dox_total, 0);
    }
}
