//! Gender analysis (Table 10 and the §6.2 gender statistics), using the
//! real pronoun-inference method over the document text.

use incite_corpus::Document;
use incite_pii::infer_gender;
use incite_stats::chisq::{chi_square_2x2, ChiSquareResult};
use incite_taxonomy::{Gender, Subcategory};

/// One gender column of Table 10.
#[derive(Debug, Clone)]
pub struct GenderColumn {
    pub gender: Gender,
    pub size: usize,
    /// Counts per subcategory, indexed by [`Subcategory::index`].
    pub subcategory_counts: Vec<usize>,
}

impl GenderColumn {
    /// Count for one subcategory.
    pub fn subcategory(&self, sub: Subcategory) -> usize {
        self.subcategory_counts[sub.index()]
    }

    /// Percentage of the column.
    pub fn percent(&self, count: usize) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.size as f64
        }
    }
}

/// Infers gender for each document via pronouns (§5.6) and tabulates
/// Table 10.
pub fn tabulate_by_gender(docs: &[&Document]) -> Vec<GenderColumn> {
    Gender::ALL
        .iter()
        .map(|&g| {
            let in_col: Vec<&&Document> =
                docs.iter().filter(|d| infer_gender(&d.text) == g).collect();
            let mut counts = vec![0usize; Subcategory::COUNT];
            for d in &in_col {
                for sub in d.truth.labels.iter() {
                    counts[sub.index()] += 1;
                }
            }
            GenderColumn {
                gender: g,
                size: in_col.len(),
                subcategory_counts: counts,
            }
        })
        .collect()
}

/// Accuracy of pronoun inference against the planted gender, over documents
/// whose planted gender is known — the §5.6 94.3 % evaluation.
pub fn inference_accuracy(docs: &[&Document]) -> (usize, usize) {
    let known: Vec<&&Document> = docs
        .iter()
        .filter(|d| d.truth.gender != Gender::Unknown)
        .collect();
    let correct = known
        .iter()
        .filter(|d| infer_gender(&d.text) == d.truth.gender)
        .count();
    (correct, known.len())
}

/// The §6.2 headline gender test: private reputational harm is more common
/// against female-labeled targets (7.5 % vs 2.98 %). Returns the 2×2
/// chi-square over (gender × has-private-reputational-harm).
pub fn private_reputation_gender_test(columns: &[GenderColumn]) -> Option<ChiSquareResult> {
    let get = |g: Gender| columns.iter().find(|c| c.gender == g);
    let female = get(Gender::Female)?;
    let male = get(Gender::Male)?;
    let f_with = female.subcategory(Subcategory::ReputationalHarmPrivate);
    let m_with = male.subcategory(Subcategory::ReputationalHarmPrivate);
    chi_square_2x2(
        f_with as f64,
        (female.size - f_with) as f64,
        m_with as f64,
        (male.size - m_with) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(33))
    }

    fn cth_docs(corpus: &Corpus) -> Vec<&Document> {
        corpus.documents.iter().filter(|d| d.truth.is_cth).collect()
    }

    #[test]
    fn columns_partition_documents() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate_by_gender(&docs);
        assert_eq!(cols.len(), 3);
        let total: usize = cols.iter().map(|c| c.size).sum();
        assert_eq!(total, docs.len());
    }

    #[test]
    fn inference_accuracy_meets_paper_bar() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let (correct, total) = inference_accuracy(&docs);
        assert!(total > 100, "need a meaningful sample");
        let acc = correct as f64 / total as f64;
        // Paper: 94.3 %. The planted texts always use target pronouns, so
        // we should be at least in that band.
        assert!(acc > 0.85, "gender inference accuracy {acc}");
    }

    #[test]
    fn male_and_female_columns_are_nonempty() {
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate_by_gender(&docs);
        for g in [Gender::Male, Gender::Female] {
            let c = cols.iter().find(|c| c.gender == g).unwrap();
            assert!(c.size > 0, "{g} column empty");
        }
    }

    #[test]
    fn private_reputation_skews_female() {
        // Table 10: 7.5 % female vs 2.98 % male.
        let corpus = corpus();
        let docs = cth_docs(&corpus);
        let cols = tabulate_by_gender(&docs);
        let female = cols.iter().find(|c| c.gender == Gender::Female).unwrap();
        let male = cols.iter().find(|c| c.gender == Gender::Male).unwrap();
        let f_pct = female.percent(female.subcategory(Subcategory::ReputationalHarmPrivate));
        let m_pct = male.percent(male.subcategory(Subcategory::ReputationalHarmPrivate));
        assert!(f_pct > m_pct, "female {f_pct}% vs male {m_pct}%");
        let test = private_reputation_gender_test(&cols).unwrap();
        assert!(test.statistic > 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let cols = tabulate_by_gender(&[]);
        assert!(cols.iter().all(|c| c.size == 0));
        assert_eq!(inference_accuracy(&[]), (0, 0));
    }
}
