//! Harm-risk assignment and overlap (§7.2, Table 7, Figure 2).

use incite_corpus::Document;
use incite_pii::PiiExtractor;
use incite_taxonomy::harm::{HarmRisk, RiskSet};
use incite_taxonomy::Platform;

/// Figure 2 data: dox counts per risk combination.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// Count per combination, indexed by [`RiskSet::bits`] (0–15; index 0
    /// is the "no risk indicator" bucket the paper mentions for Discord).
    pub combination_counts: [usize; 16],
    /// Total doxes carrying each individual risk (Figure 2's right column).
    pub risk_totals: [usize; 4],
    /// Total doxes analyzed.
    pub total: usize,
}

impl Figure2 {
    /// Count for a specific combination.
    pub fn combination(&self, set: RiskSet) -> usize {
        self.combination_counts[set.bits() as usize]
    }

    /// Total for one risk category.
    pub fn risk_total(&self, risk: HarmRisk) -> usize {
        self.risk_totals[HarmRisk::ALL.iter().position(|r| *r == risk).unwrap()]
    }

    /// Doxes with all four risks (the paper reports 970, 11.5 %).
    pub fn all_four(&self) -> usize {
        self.combination_counts[15]
    }

    /// Doxes with no risk indicator.
    pub fn none(&self) -> usize {
        self.combination_counts[0]
    }
}

/// Assigns risks to every dox (real extraction + the planted reputation
/// annotation) and tabulates Figure 2. Returns the figure plus each
/// document's risk set (aligned with the input).
pub fn figure2(extractor: &PiiExtractor, docs: &[&Document]) -> (Figure2, Vec<RiskSet>) {
    let per_doc: Vec<RiskSet> = docs
        .iter()
        .map(|d| {
            let pii = extractor.pii_set(&d.text);
            RiskSet::from_pii(pii, d.truth.reputation_flag)
        })
        .collect();
    let mut combination_counts = [0usize; 16];
    let mut risk_totals = [0usize; 4];
    for set in &per_doc {
        combination_counts[set.bits() as usize] += 1;
        for (i, risk) in HarmRisk::ALL.iter().enumerate() {
            if set.contains(*risk) {
                risk_totals[i] += 1;
            }
        }
    }
    (
        Figure2 {
            combination_counts,
            risk_totals,
            total: per_doc.len(),
        },
        per_doc,
    )
}

/// §7.2 side observations worth reproducing.
#[derive(Debug, Clone, Copy)]
pub struct RiskObservations {
    /// Fraction of Discord doxes with no risk indicator (paper: > 50 %).
    pub discord_no_indicator: f64,
    /// Fraction of all-four-risk doxes that come from pastes (paper: 73 %).
    pub all_four_from_pastes: f64,
}

/// Computes the side observations.
pub fn observations(docs: &[&Document], per_doc: &[RiskSet]) -> RiskObservations {
    let discord: Vec<usize> = docs
        .iter()
        .enumerate()
        .filter(|(_, d)| d.platform == Platform::Discord)
        .map(|(i, _)| i)
        .collect();
    let discord_none = discord.iter().filter(|&&i| per_doc[i].is_empty()).count();
    let discord_no_indicator = if discord.is_empty() {
        0.0
    } else {
        discord_none as f64 / discord.len() as f64
    };

    let all_four: Vec<usize> = per_doc
        .iter()
        .enumerate()
        .filter(|(_, s)| s.len() == 4)
        .map(|(i, _)| i)
        .collect();
    let from_pastes = all_four
        .iter()
        .filter(|&&i| docs[i].platform == Platform::Pastes)
        .count();
    let all_four_from_pastes = if all_four.is_empty() {
        0.0
    } else {
        from_pastes as f64 / all_four.len() as f64
    };

    RiskObservations {
        discord_no_indicator,
        all_four_from_pastes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(77))
    }

    fn dox_docs(corpus: &Corpus) -> Vec<&Document> {
        corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_dox && d.platform != Platform::Blogs)
            .collect()
    }

    #[test]
    fn combination_counts_sum_to_total() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (fig, per_doc) = figure2(&ex, &docs);
        assert_eq!(fig.total, docs.len());
        assert_eq!(per_doc.len(), docs.len());
        let sum: usize = fig.combination_counts.iter().sum();
        assert_eq!(sum, fig.total);
    }

    #[test]
    fn risk_totals_are_consistent_with_combinations() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (fig, _) = figure2(&ex, &docs);
        for risk in HarmRisk::ALL {
            let from_combos: usize = (0u8..16)
                .filter(|&bits| RiskSet::from_bits(bits).contains(risk))
                .map(|bits| fig.combination_counts[bits as usize])
                .sum();
            assert_eq!(from_combos, fig.risk_total(risk), "{risk}");
        }
    }

    #[test]
    fn online_risk_is_common_and_multi_risk_exists() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (fig, _) = figure2(&ex, &docs);
        // Online is the largest single total in the paper (3,959 / 8,425).
        assert!(fig.risk_total(HarmRisk::Online) as f64 > 0.3 * fig.total as f64);
        // Some doxes hit all four categories.
        assert!(fig.all_four() > 0);
    }

    #[test]
    fn pastes_dominate_all_four_risk_doxes() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (_, per_doc) = figure2(&ex, &docs);
        let obs = observations(&docs, &per_doc);
        // Paper: 73 % of all-four doxes are from pastes.
        assert!(
            obs.all_four_from_pastes > 0.35,
            "pastes share {}",
            obs.all_four_from_pastes
        );
    }

    #[test]
    fn empty_input_is_safe() {
        let ex = PiiExtractor::new();
        let (fig, per_doc) = figure2(&ex, &[]);
        assert_eq!(fig.total, 0);
        let obs = observations(&[], &per_doc);
        assert_eq!(obs.discord_no_indicator, 0.0);
    }
}
