//! Plain-text table and figure rendering.
//!
//! Shared by the `repro` binary and the examples: aligned ASCII tables and
//! a small horizontal-bar / CDF sketcher so every paper artifact can be
//! inspected in a terminal or diffed in CI.

/// Renders an aligned ASCII table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            // Right-align numeric-looking cells, left-align text.
            let numeric = cell.chars().next().is_some_and(|c| c.is_ascii_digit())
                || cell.starts_with('-') && cell.len() > 1;
            if numeric && i > 0 {
                out.extend(std::iter::repeat_n(' ', pad));
                out.push_str(cell);
            } else {
                out.push_str(cell);
                if i + 1 < row.len() {
                    out.extend(std::iter::repeat_n(' ', pad));
                }
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Formats `count (pct%)` the way the paper's tables do.
pub fn count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        format!("{count} (-)")
    } else {
        format!("{:.2}% ({})", 100.0 * count as f64 / total as f64, count)
    }
}

/// Sketches an ASCII CDF from `(x, F(x))` series. Each series is drawn as a
/// row of bucketed glyphs; good enough to eyeball who dominates whom.
pub fn cdf_sketch(series: &[(&str, &[(f64, f64)])], width: usize) -> String {
    let mut out = String::new();
    for (name, curve) in series {
        let mut line = format!("{name:>10} |");
        for i in 0..width {
            let idx = if curve.is_empty() {
                continue;
            } else {
                i * curve.len() / width
            };
            let y = curve[idx.min(curve.len() - 1)].1;
            let glyph = match (y * 8.0) as usize {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '-',
                4 => '=',
                5 => '+',
                6 => '*',
                7 => '#',
                _ => '█',
            };
            line.push(glyph);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// A labeled horizontal bar chart (used for Figure 2 combination counts).
pub fn bar_chart(rows: &[(String, usize)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(1).max(1);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = value * width / max;
        out.push_str(&format!(
            "{label:<label_w$} | {} {value}\n",
            "█".repeat(bar_len),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let rows = vec![
            vec!["Name".to_string(), "Count".to_string()],
            vec!["boards".to_string(), "405943".to_string()],
            vec!["gab".to_string(), "50".to_string()],
        ];
        let out = table(&rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[1].starts_with('-'));
        // Numbers right-aligned: both data lines end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn count_pct_formats_like_the_paper() {
        assert_eq!(count_pct(1152, 2045), "56.33% (1152)");
        assert_eq!(count_pct(3, 0), "3 (-)");
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(table(&[]).is_empty());
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 10), ("b".to_string(), 5)];
        let out = bar_chart(&rows, 10);
        let lines: Vec<&str> = out.lines().collect();
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|c| *c == '█').count())
            .collect();
        assert_eq!(bars, vec![10, 5]);
    }

    #[test]
    fn cdf_sketch_renders_rows() {
        let curve = [(1.0, 0.1), (10.0, 0.5), (100.0, 1.0)];
        let out = cdf_sketch(&[("cth", &curve), ("base", &curve)], 20);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("cth"));
    }
}
