//! # incite-analysis
//!
//! The paper's empirical characterization (§6–§8), computed over a corpus
//! and the filtering pipeline's annotated output sets:
//!
//! * [`attack_types`] — Tables 5 and 11 (attack types per data set), the
//!   §6.2 chi-square comparisons and label co-occurrence.
//! * [`gender`] — Table 10 (attack types per inferred gender), using the
//!   real pronoun-inference method of §5.6.
//! * [`threads`] — §6.3/§7.4 board-thread analyses: position
//!   distributions, response-size significance tests with
//!   Benjamini–Hochberg correction, Figure 5 CDFs and Figure 6 quantiles.
//! * [`overlap`] — CTH ∩ dox thread overlap on the above-threshold sets.
//! * [`pii_tables`] — Table 6 and the §7.1 PII co-occurrence matrix, using
//!   the real extractors.
//! * [`harm_risk`] — §7.2 risk assignment and the Figure 2 overlap counts.
//! * [`repeats`] — §7.3 repeated-dox linking via extracted OSN handles.
//! * [`blogs`] — §8 qualitative blog study (Tables 8 and 9).
//! * [`render`] — plain-text table/figure renderers shared by the `repro`
//!   binary and the examples.
//!
//! Division of labor mirrors the paper: *automatic* methods (PII
//! extraction, gender inference, handle linking, statistics) genuinely run
//! over the text; *human judgments* (attack-type coding, reputation flags)
//! come from the planted ground truth, standing in for the domain-expert
//! annotators whose agreement the paper measured at κ 0.845–0.893.

pub mod attack_types;
pub mod blogs;
pub mod gender;
pub mod harm_risk;
pub mod longitudinal;
pub mod overlap;
pub mod pii_tables;
pub mod render;
pub mod repeats;
pub mod threads;

use incite_corpus::{Corpus, DocId, Document};
use std::collections::HashSet;

/// Resolves a set of document ids against a corpus, in corpus order.
pub fn resolve<'c>(corpus: &'c Corpus, ids: &[DocId]) -> Vec<&'c Document> {
    let set: HashSet<DocId> = ids.iter().copied().collect();
    corpus
        .documents
        .iter()
        .filter(|d| set.contains(&d.id))
        .collect()
}
