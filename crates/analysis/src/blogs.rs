//! The qualitative blog study (§8; Tables 8 and 9).
//!
//! The classifiers do not run on blogs (long-form posts blow the max-length
//! budget, §8.1), so the paper falls back to keyword queries ("phone",
//! "email", "dox", "dob:") plus manual annotation. We reproduce exactly
//! that: the keyword query runs over blog text; "annotation" reads the
//! planted truth (the expert stand-in); the per-blog Table 8 and the
//! qualitative Table 9 features are computed from the results.

use incite_core::Query;
use incite_corpus::{Corpus, Document};
use incite_taxonomy::{AttackType, Platform};

/// The §8.1 keyword query.
pub fn blog_keyword_query() -> Query {
    Query::any_of(["phone", "email", "dox", "dob:"])
}

/// One Table 8 row.
#[derive(Debug, Clone)]
pub struct BlogRow {
    /// Channel slug ("daily_stormer", "noblogs", "the_torch").
    pub blog: String,
    pub total_posts: usize,
    /// Posts matching the keyword query.
    pub relevant: usize,
    /// Actual doxes among the relevant posts (expert-annotated).
    pub actual_doxes: usize,
    /// Planted doxes the keyword query missed (the paper measured 10/33 on
    /// The Torch).
    pub missed_doxes: usize,
}

impl BlogRow {
    /// Dox yield among relevant posts.
    pub fn dox_yield(&self) -> f64 {
        if self.relevant == 0 {
            0.0
        } else {
            self.actual_doxes as f64 / self.relevant as f64
        }
    }

    /// Keyword-query recall on planted doxes.
    pub fn query_recall(&self) -> f64 {
        let total = self.actual_doxes + self.missed_doxes;
        if total == 0 {
            1.0
        } else {
            self.actual_doxes as f64 / total as f64
        }
    }
}

/// Computes Table 8 over the blogs platform.
pub fn table8(corpus: &Corpus) -> Vec<BlogRow> {
    let query = blog_keyword_query();
    let mut blogs: Vec<String> = corpus
        .by_platform(Platform::Blogs)
        .map(|d| d.channel.clone())
        .collect();
    blogs.sort();
    blogs.dedup();
    blogs
        .into_iter()
        .map(|blog| {
            let posts: Vec<&Document> = corpus
                .by_platform(Platform::Blogs)
                .filter(|d| d.channel == blog)
                .collect();
            let relevant: Vec<&&Document> =
                posts.iter().filter(|d| query.matches(&d.text)).collect();
            let actual_doxes = relevant.iter().filter(|d| d.truth.is_dox).count();
            let missed_doxes = posts
                .iter()
                .filter(|d| d.truth.is_dox && !query.matches(&d.text))
                .count();
            BlogRow {
                blog,
                total_posts: posts.len(),
                relevant: relevant.len(),
                actual_doxes,
                missed_doxes,
            }
        })
        .collect()
}

/// Table 9's quantifiable features: how the two blog registers differ.
#[derive(Debug, Clone, Copy)]
pub struct BlogRegisterStats {
    /// Daily Stormer doxes that co-occur with a call to overload
    /// (paper: 60 %).
    pub stormer_doxes: usize,
    pub stormer_with_overload: usize,
    /// Average PII kinds per dox in the far-left blogs vs Stormer —
    /// "these entries often contained less PII relative to the far-left
    /// blogs" (§8.3).
    pub antifascist_mean_pii: f64,
    pub stormer_mean_pii: f64,
}

/// Computes the Table 9 register comparison.
pub fn register_stats(corpus: &Corpus) -> BlogRegisterStats {
    let extractor = incite_pii::PiiExtractor::new();
    let mut stormer_doxes = 0;
    let mut stormer_with_overload = 0;
    let mut stormer_pii = Vec::new();
    let mut anti_pii = Vec::new();
    for d in corpus
        .by_platform(Platform::Blogs)
        .filter(|d| d.truth.is_dox)
    {
        let kinds = extractor.pii_set(&d.text).len() as f64;
        if d.channel == "daily_stormer" {
            stormer_doxes += 1;
            if d.truth.labels.contains_parent(AttackType::Overloading) {
                stormer_with_overload += 1;
            }
            stormer_pii.push(kinds);
        } else {
            anti_pii.push(kinds);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    BlogRegisterStats {
        stormer_doxes,
        stormer_with_overload,
        antifascist_mean_pii: mean(&anti_pii),
        stormer_mean_pii: mean(&stormer_pii),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        // Positive scale 1.0 so all three blogs carry their Table 8 doxes;
        // blog_scale 0.1 keeps the Table 8 post:dox ratios meaningful.
        generate(&CorpusConfig {
            positive_scale: 1.0,
            blog_scale: 0.1,
            ..CorpusConfig::small(14)
        })
    }

    #[test]
    fn table8_covers_three_blogs() {
        let corpus = corpus();
        let rows = table8(&corpus);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.total_posts > 0, "{}", r.blog);
            assert!(r.actual_doxes > 0, "{} has no doxes", r.blog);
            assert!(r.relevant >= r.actual_doxes || r.missed_doxes > 0);
        }
    }

    #[test]
    fn torch_is_small_but_dox_dense() {
        // Table 8: The Torch has 93 posts but a 60 % dox yield among
        // relevant posts — far denser than Daily Stormer's 2.9 %.
        let corpus = corpus();
        let rows = table8(&corpus);
        let get = |slug: &str| rows.iter().find(|r| r.blog == slug).unwrap();
        let torch = get("the_torch");
        let stormer = get("daily_stormer");
        assert!(torch.total_posts < stormer.total_posts);
        assert!(torch.dox_yield() > stormer.dox_yield());
    }

    #[test]
    fn keyword_query_recall_is_high_but_imperfect_shape() {
        // The paper's query missed 10/33 Torch doxes; ours should find most
        // doxes (they mention PII terms) without requiring perfection.
        let corpus = corpus();
        for r in table8(&corpus) {
            assert!(
                r.query_recall() > 0.5,
                "{} recall {}",
                r.blog,
                r.query_recall()
            );
        }
    }

    #[test]
    fn stormer_overload_rate_matches_section_8_3() {
        let corpus = corpus();
        let stats = register_stats(&corpus);
        assert!(stats.stormer_doxes > 10);
        let rate = stats.stormer_with_overload as f64 / stats.stormer_doxes as f64;
        assert!((rate - 0.60).abs() < 0.2, "overload rate {rate}");
    }

    #[test]
    fn stormer_doxes_carry_less_pii() {
        let corpus = corpus();
        let stats = register_stats(&corpus);
        assert!(
            stats.stormer_mean_pii < stats.antifascist_mean_pii,
            "stormer {} vs antifascist {}",
            stats.stormer_mean_pii,
            stats.antifascist_mean_pii
        );
    }
}
