//! PII prevalence (Table 6) and co-occurrence (§7.1), computed with the
//! real extractors over the annotated dox sets.

use incite_corpus::Document;
use incite_pii::PiiExtractor;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{DataSet, PiiKind};

/// One data-set column of Table 6.
#[derive(Debug, Clone)]
pub struct PiiColumn {
    pub data_set: DataSet,
    pub size: usize,
    /// Count of doxes containing each kind, indexed like [`PiiKind::ALL`].
    pub counts: [usize; 9],
}

impl PiiColumn {
    /// Count for one kind.
    pub fn count(&self, kind: PiiKind) -> usize {
        self.counts[PiiKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }

    /// Percentage of the column.
    pub fn percent(&self, kind: PiiKind) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            100.0 * self.count(kind) as f64 / self.size as f64
        }
    }

    /// Mean number of distinct PII kinds per dox.
    pub fn mean_kinds(&self, per_doc: &[PiiSet]) -> f64 {
        if per_doc.is_empty() {
            0.0
        } else {
            per_doc.iter().map(|s| s.len()).sum::<usize>() as f64 / per_doc.len() as f64
        }
    }
}

/// Extracts PII for every document and tabulates Table 6 columns for the
/// four dox data sets. Also returns each document's extracted [`PiiSet`]
/// (aligned with the input) for downstream analyses.
pub fn tabulate_pii(extractor: &PiiExtractor, docs: &[&Document]) -> (Vec<PiiColumn>, Vec<PiiSet>) {
    let per_doc: Vec<PiiSet> = docs.iter().map(|d| extractor.pii_set(&d.text)).collect();
    let columns = [
        DataSet::Boards,
        DataSet::Chat,
        DataSet::Gab,
        DataSet::Pastes,
    ]
    .iter()
    .map(|&ds| {
        let mut counts = [0usize; 9];
        let mut size = 0;
        for (d, pii) in docs.iter().zip(&per_doc) {
            if d.platform.data_set() != ds {
                continue;
            }
            size += 1;
            for (i, kind) in PiiKind::ALL.iter().enumerate() {
                if pii.contains(*kind) {
                    counts[i] += 1;
                }
            }
        }
        PiiColumn {
            data_set: ds,
            size,
            counts,
        }
    })
    .collect();
    (columns, per_doc)
}

/// §7.1 co-occurrence: `matrix[i][j]` = P(kind j present | kind i present).
pub fn co_occurrence_matrix(per_doc: &[PiiSet]) -> [[f64; 9]; 9] {
    let mut with_i = [0usize; 9];
    let mut with_both = [[0usize; 9]; 9];
    for pii in per_doc {
        for (i, ki) in PiiKind::ALL.iter().enumerate() {
            if !pii.contains(*ki) {
                continue;
            }
            with_i[i] += 1;
            for (j, kj) in PiiKind::ALL.iter().enumerate() {
                if pii.contains(*kj) {
                    with_both[i][j] += 1;
                }
            }
        }
    }
    let mut matrix = [[0.0; 9]; 9];
    for i in 0..9 {
        for j in 0..9 {
            matrix[i][j] = if with_i[i] == 0 {
                0.0
            } else {
                with_both[i][j] as f64 / with_i[i] as f64
            };
        }
    }
    matrix
}

fn idx(kind: PiiKind) -> usize {
    PiiKind::ALL.iter().position(|k| *k == kind).unwrap()
}

/// Convenience accessor for the co-occurrence matrix.
pub fn co_rate(matrix: &[[f64; 9]; 9], given: PiiKind, other: PiiKind) -> f64 {
    matrix[idx(given)][idx(other)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(55))
    }

    fn dox_docs(corpus: &Corpus) -> Vec<&Document> {
        corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_dox && d.platform != incite_taxonomy::Platform::Blogs)
            .collect()
    }

    #[test]
    fn table6_shape_holds() {
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (cols, per_doc) = tabulate_pii(&ex, &docs);
        assert_eq!(per_doc.len(), docs.len());
        let get = |ds: DataSet| cols.iter().find(|c| c.data_set == ds).unwrap();
        // Pastes doxes carry the richest PII (Table 6 headline).
        let pastes = get(DataSet::Pastes);
        let boards = get(DataSet::Boards);
        assert!(pastes.size > 0 && boards.size > 0);
        assert!(
            pastes.percent(PiiKind::Address) > boards.percent(PiiKind::Address),
            "pastes {} vs boards {}",
            pastes.percent(PiiKind::Address),
            boards.percent(PiiKind::Address)
        );
        // Gab never has cards (Table 6: 0).
        assert_eq!(get(DataSet::Gab).count(PiiKind::CreditCard), 0);
        // Phones are prevalent everywhere (> 15 %).
        for c in &cols {
            if c.size > 20 {
                assert!(c.percent(PiiKind::Phone) > 15.0, "{:?}", c.data_set);
            }
        }
    }

    #[test]
    fn contact_pii_co_occurs_heavily() {
        // §7.1: addresses, phones, emails co-occur with everything > 35 %.
        let corpus = corpus();
        let docs = dox_docs(&corpus);
        let ex = PiiExtractor::new();
        let (_, per_doc) = tabulate_pii(&ex, &docs);
        let m = co_occurrence_matrix(&per_doc);
        // Given a Facebook profile, an email is likely (Table 6 paste rates
        // + the generator's enrichment).
        let fb_email = co_rate(&m, PiiKind::Facebook, PiiKind::Email);
        assert!(fb_email > 0.25, "fb→email {fb_email}");
        // And it exceeds the base email rate boost expected from chance on
        // the lowest-rate data set (boards ≈ 15 %).
        assert!(fb_email > 0.15);
        // Diagonal is 1 wherever the kind occurs.
        for (i, kind) in PiiKind::ALL.iter().enumerate() {
            let diag = m[i][i];
            assert!(
                diag == 0.0 || (diag - 1.0).abs() < 1e-12,
                "diagonal for {kind} = {diag}"
            );
        }
    }

    #[test]
    fn empty_input_is_safe() {
        let ex = PiiExtractor::new();
        let (cols, per_doc) = tabulate_pii(&ex, &[]);
        assert!(per_doc.is_empty());
        assert!(cols.iter().all(|c| c.size == 0));
        let m = co_occurrence_matrix(&per_doc);
        assert!(m.iter().flatten().all(|&v| v == 0.0));
    }
}
