//! Longitudinal analysis — the §9.2 research extension.
//!
//! "Longitudinal analysis of calls to harassment could provide insights
//! into new attack types, and whether these online fringe communities are
//! influenced by offline trends and events." This module provides the
//! machinery: yearly incidence series for any document subset, positive
//! *rate* per year (normalized by platform volume), and a growth test
//! comparing the first and second halves of the observation window.

use incite_corpus::Document;
use incite_stats::chisq::{chi_square_2x2, ChiSquareResult};
use std::collections::BTreeMap;

const SECONDS_PER_YEAR: u64 = 31_557_600;

/// The UTC-ish year of a unix timestamp (sufficient for yearly bucketing).
pub fn year_of(timestamp: u64) -> u32 {
    1970 + (timestamp / SECONDS_PER_YEAR) as u32
}

/// Documents per year, sorted ascending by year.
pub fn yearly_counts(docs: &[&Document]) -> Vec<(u32, usize)> {
    let mut map: BTreeMap<u32, usize> = BTreeMap::new();
    for d in docs {
        *map.entry(year_of(d.timestamp)).or_default() += 1;
    }
    map.into_iter().collect()
}

/// Positive incidence per year: `(year, positives, total, rate)`.
pub fn yearly_rates(
    all: &[&Document],
    is_positive: impl Fn(&Document) -> bool,
) -> Vec<(u32, usize, usize, f64)> {
    let mut map: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for d in all {
        let entry = map.entry(year_of(d.timestamp)).or_default();
        entry.1 += 1;
        if is_positive(d) {
            entry.0 += 1;
        }
    }
    map.into_iter()
        .map(|(year, (pos, total))| (year, pos, total, pos as f64 / total.max(1) as f64))
        .collect()
}

/// Growth comparison: positive rate in the earlier half of the observed
/// years vs the later half, with a 2×2 chi-square test.
#[derive(Debug, Clone)]
pub struct GrowthTest {
    pub early_positives: usize,
    pub early_total: usize,
    pub late_positives: usize,
    pub late_total: usize,
    pub test: Option<ChiSquareResult>,
}

impl GrowthTest {
    /// Late-to-early rate ratio (> 1 means growth).
    pub fn rate_ratio(&self) -> f64 {
        let early = self.early_positives as f64 / self.early_total.max(1) as f64;
        let late = self.late_positives as f64 / self.late_total.max(1) as f64;
        if early == 0.0 {
            f64::INFINITY
        } else {
            late / early
        }
    }
}

/// Runs the growth test, splitting the window at the median observed year.
pub fn growth_test(all: &[&Document], is_positive: impl Fn(&Document) -> bool) -> GrowthTest {
    let mut years: Vec<u32> = all.iter().map(|d| year_of(d.timestamp)).collect();
    years.sort_unstable();
    let split = years.get(years.len() / 2).copied().unwrap_or(2010);
    let mut g = GrowthTest {
        early_positives: 0,
        early_total: 0,
        late_positives: 0,
        late_total: 0,
        test: None,
    };
    for d in all {
        let pos = is_positive(d);
        if year_of(d.timestamp) < split {
            g.early_total += 1;
            g.early_positives += pos as usize;
        } else {
            g.late_total += 1;
            g.late_positives += pos as usize;
        }
    }
    g.test = chi_square_2x2(
        g.early_positives as f64,
        (g.early_total - g.early_positives) as f64,
        g.late_positives as f64,
        (g.late_total - g.late_positives) as f64,
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, Corpus, CorpusConfig};
    use incite_taxonomy::Platform;

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(0x1046))
    }

    #[test]
    fn year_of_reference_points() {
        assert_eq!(year_of(0), 1970);
        assert_eq!(year_of(1_600_000_000), 2020);
        assert_eq!(year_of(992_476_800), 2001);
    }

    #[test]
    fn yearly_counts_cover_the_observation_window() {
        let corpus = corpus();
        let boards: Vec<&Document> = corpus.by_platform(Platform::Boards).collect();
        let counts = yearly_counts(&boards);
        assert!(counts.len() > 10, "expected a multi-year window");
        assert!(counts.first().unwrap().0 >= 2001);
        assert!(counts.last().unwrap().0 <= 2020);
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, boards.len());
    }

    #[test]
    fn cth_rate_grows_over_time() {
        let corpus = corpus();
        let boards: Vec<&Document> = corpus.by_platform(Platform::Boards).collect();
        let g = growth_test(&boards, |d| d.truth.is_cth);
        assert!(
            g.rate_ratio() > 1.3,
            "expected growth, ratio {} ({}+/{} early vs {}+/{} late)",
            g.rate_ratio(),
            g.early_positives,
            g.early_total,
            g.late_positives,
            g.late_total
        );
        let test = g.test.expect("test computable");
        assert!(
            test.p_value < 0.05,
            "growth not significant: p={}",
            test.p_value
        );
    }

    #[test]
    fn yearly_rates_are_bounded() {
        let corpus = corpus();
        let gab: Vec<&Document> = corpus.by_platform(Platform::Gab).collect();
        for (_, pos, total, rate) in yearly_rates(&gab, |d| d.truth.is_dox) {
            assert!(pos <= total);
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn empty_input_is_safe() {
        assert!(yearly_counts(&[]).is_empty());
        let g = growth_test(&[], |_| true);
        assert!(g.test.is_none());
        assert_eq!(g.early_total + g.late_total, 0);
    }
}
