//! Property tests on the ML substrate.

use incite_ml::logreg::{LogisticRegression, TrainConfig};
use incite_ml::naive_bayes::NaiveBayes;
use incite_ml::sparse::{axpy, dot, merge, norm, SparseVec};
use incite_ml::Dataset;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_sparse(dim: u32, max_nnz: usize) -> impl Strategy<Value = SparseVec> {
    prop::collection::btree_map(0..dim, -10.0f32..10.0, 0..max_nnz)
        .prop_map(|m| m.into_iter().filter(|(_, v)| *v != 0.0).collect())
}

proptest! {
    #[test]
    fn merge_matches_map_model(a in arb_sparse(64, 20), b in arb_sparse(64, 20)) {
        let merged = merge(&a, &b);
        let mut model: BTreeMap<u32, f32> = BTreeMap::new();
        for &(i, v) in a.iter().chain(b.iter()) {
            *model.entry(i).or_default() += v;
        }
        model.retain(|_, v| *v != 0.0);
        let expected: SparseVec = model.into_iter().collect();
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn dot_is_linear_in_axpy(a in arb_sparse(32, 10), scale in -5.0f32..5.0) {
        let mut dense = vec![0.0f32; 32];
        axpy(&mut dense, &a, scale);
        // dense now equals scale * a; dot(a, dense) == scale * |a|^2.
        let expected = scale * norm(&a) * norm(&a);
        let got = dot(&a, &dense);
        prop_assert!((got - expected).abs() <= 1e-3 * (1.0 + expected.abs()),
            "got {got}, expected {expected}");
    }

    #[test]
    fn merge_is_commutative(a in arb_sparse(64, 16), b in arb_sparse(64, 16)) {
        prop_assert_eq!(merge(&a, &b), merge(&b, &a));
    }

    #[test]
    fn logreg_probabilities_bounded(
        examples in prop::collection::vec((arb_sparse(16, 6), any::<bool>()), 4..40),
        probe in arb_sparse(16, 6),
    ) {
        let mut data = Dataset::new();
        for (f, l) in examples {
            data.push(f, l);
        }
        let model = LogisticRegression::train(
            &data,
            16,
            TrainConfig { epochs: 3, ..Default::default() },
        );
        let p = model.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn naive_bayes_probabilities_bounded(
        examples in prop::collection::vec((arb_sparse(16, 6), any::<bool>()), 1..40),
        probe in arb_sparse(16, 6),
    ) {
        let mut data = Dataset::new();
        for (f, l) in examples {
            data.push(f, l);
        }
        let nb = NaiveBayes::train(&data, 16, 1.0);
        let p = nb.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn training_is_reproducible(
        examples in prop::collection::vec((arb_sparse(16, 6), any::<bool>()), 4..30),
    ) {
        let mut data = Dataset::new();
        for (f, l) in examples {
            data.push(f, l);
        }
        let config = TrainConfig { epochs: 2, ..Default::default() };
        let m1 = LogisticRegression::train(&data, 16, config);
        let m2 = LogisticRegression::train(&data, 16, config);
        let probe: SparseVec = vec![(0, 1.0), (7, -2.0)];
        prop_assert_eq!(m1.predict_proba(&probe), m2.predict_proba(&probe));
    }
}
