//! Multinomial naive Bayes baseline.
//!
//! The paper compares only transformer variants, but an open-source release
//! needs a cheap baseline; naive Bayes over the same hashed features is the
//! classic text-classification floor, and the `classifier_ablation` bench
//! reports how much the discriminative model buys.

use crate::data::Dataset;
use crate::sparse::SparseVec;

/// A trained multinomial naive Bayes model over hashed features.
///
/// Feature values are treated as (possibly fractional) counts; negative
/// hashed values contribute their magnitude.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    log_prior_pos: f64,
    log_prior_neg: f64,
    log_like_pos: Vec<f64>,
    log_like_neg: Vec<f64>,
}

impl NaiveBayes {
    /// Trains with Laplace smoothing `alpha`.
    pub fn train(data: &Dataset, dimensions: usize, alpha: f64) -> Self {
        let alpha = if alpha > 0.0 { alpha } else { 1.0 };
        let mut count_pos = vec![0.0f64; dimensions];
        let mut count_neg = vec![0.0f64; dimensions];
        let mut n_pos = 0usize;
        let mut n_neg = 0usize;
        for ex in &data.examples {
            let target = if ex.label {
                n_pos += 1;
                &mut count_pos
            } else {
                n_neg += 1;
                &mut count_neg
            };
            for &(i, v) in &ex.features {
                if let Some(c) = target.get_mut(i as usize) {
                    *c += v.abs() as f64;
                }
            }
        }
        let total = (n_pos + n_neg).max(1) as f64;
        let log_prior_pos = ((n_pos.max(1)) as f64 / total).ln();
        let log_prior_neg = ((n_neg.max(1)) as f64 / total).ln();
        let sum_pos: f64 = count_pos.iter().sum::<f64>() + alpha * dimensions as f64;
        let sum_neg: f64 = count_neg.iter().sum::<f64>() + alpha * dimensions as f64;
        let log_like_pos = count_pos
            .iter()
            .map(|c| ((c + alpha) / sum_pos).ln())
            .collect();
        let log_like_neg = count_neg
            .iter()
            .map(|c| ((c + alpha) / sum_neg).ln())
            .collect();
        NaiveBayes {
            log_prior_pos,
            log_prior_neg,
            log_like_pos,
            log_like_neg,
        }
    }

    /// Positive-class posterior probability.
    pub fn predict_proba(&self, features: &SparseVec) -> f32 {
        let mut lp = self.log_prior_pos;
        let mut ln = self.log_prior_neg;
        for &(i, v) in features {
            let w = v.abs() as f64;
            if let (Some(p), Some(n)) = (
                self.log_like_pos.get(i as usize),
                self.log_like_neg.get(i as usize),
            ) {
                lp += w * p;
                ln += w * n;
            }
        }
        // Softmax over the two log-joints.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        (ep / (ep + en)) as f32
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &SparseVec) -> bool {
        self.predict_proba(features) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new();
        for _ in 0..50 {
            d.push(vec![(0, 2.0), (2, 1.0)], true);
            d.push(vec![(1, 2.0), (2, 1.0)], false);
        }
        d
    }

    #[test]
    fn separates_signature_features() {
        let nb = NaiveBayes::train(&toy(), 8, 1.0);
        assert!(nb.predict_proba(&vec![(0, 1.0)]) > 0.5);
        assert!(nb.predict_proba(&vec![(1, 1.0)]) < 0.5);
        assert!(nb.predict(&vec![(0, 3.0)]));
    }

    #[test]
    fn shared_feature_is_neutral() {
        let nb = NaiveBayes::train(&toy(), 8, 1.0);
        let p = nb.predict_proba(&vec![(2, 1.0)]);
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn empty_features_fall_back_to_prior() {
        let mut d = toy();
        // Skew prior: 3:1 positive.
        for _ in 0..100 {
            d.push(vec![(0, 1.0)], true);
        }
        let nb = NaiveBayes::train(&d, 8, 1.0);
        assert!(nb.predict_proba(&vec![]) > 0.5);
    }

    #[test]
    fn probabilities_bounded() {
        let nb = NaiveBayes::train(&toy(), 8, 1.0);
        for f in [vec![(0, 100.0)], vec![(1, 100.0)], vec![(7, 1.0)]] {
            let p = nb.predict_proba(&f);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        let nb = NaiveBayes::train(&toy(), 8, 1.0);
        // Feature 7 never appeared; prediction must stay finite and neutral-ish.
        let p = nb.predict_proba(&vec![(7, 5.0)]);
        assert!(p.is_finite());
        assert!((p - 0.5).abs() < 0.2, "p = {p}");
    }

    #[test]
    fn single_class_training_is_stable() {
        let mut d = Dataset::new();
        for _ in 0..10 {
            d.push(vec![(0, 1.0)], true);
        }
        let nb = NaiveBayes::train(&d, 4, 1.0);
        let p = nb.predict_proba(&vec![(0, 1.0)]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }
}
