//! Featurize-once batch scoring: CSR feature storage and feature caching.
//!
//! The pipeline applies the classifier to the *entire* corpus once per
//! active-learning round and again for final prediction (Figure 1). The
//! featurizer is fitted once and never changes across retrains, so
//! re-tokenizing every document on every pass is pure waste: featurize the
//! corpus exactly once into a compact CSR arena ([`FeatureMatrix`]) and
//! serve every subsequent pass as sparse dot products against the current
//! weight vector.
//!
//! Two building blocks live here:
//!
//! * [`FeatureMatrix`] — a CSR-style arena: one flat `indices` buffer, one
//!   flat `values` buffer, and row offsets. No per-row allocation, cache
//!   friendly row iteration, and rows score bit-identically to
//!   [`LogisticRegression::predict_proba`](crate::LogisticRegression::predict_proba)
//!   on the equivalent [`SparseVec`].
//! * [`FeatureCache`] — a keyed memo of featurized documents, used to
//!   featurize the growing training set once across the eval/final
//!   retrains instead of re-running WordPiece tokenization per retrain.

use crate::data::Dataset;
use crate::featurize::Featurizer;
use crate::logreg::LogisticRegression;
use crate::sparse::SparseVec;
use std::collections::HashMap;

/// A compact CSR (compressed sparse row) matrix of featurized documents.
///
/// Row `i` occupies `indices[offsets[i]..offsets[i + 1]]` and the parallel
/// `values` range. Indices within a row are strictly increasing (inherited
/// from the [`SparseVec`] invariant).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    indices: Vec<u32>,
    values: Vec<f32>,
    /// `rows + 1` offsets into `indices` / `values`.
    offsets: Vec<usize>,
    dimensions: usize,
}

impl FeatureMatrix {
    /// An empty matrix over a feature space of `dimensions` slots.
    pub fn new(dimensions: usize) -> Self {
        FeatureMatrix {
            indices: Vec::new(),
            values: Vec::new(),
            offsets: vec![0],
            dimensions,
        }
    }

    /// An empty matrix with room for `rows` rows of ~`nnz_per_row` entries.
    pub fn with_capacity(dimensions: usize, rows: usize, nnz_per_row: usize) -> Self {
        let mut m = FeatureMatrix::new(dimensions);
        m.offsets.reserve(rows);
        m.indices.reserve(rows * nnz_per_row);
        m.values.reserve(rows * nnz_per_row);
        m
    }

    /// Builds a matrix from featurized rows, preserving order.
    pub fn from_rows<'a, I>(dimensions: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVec>,
    {
        let mut m = FeatureMatrix::new(dimensions);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &SparseVec) {
        for &(i, v) in row {
            self.indices.push(i);
            self.values.push(v);
        }
        self.offsets.push(self.indices.len());
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Feature-space dimensionality.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Row `i` as parallel `(indices, values)` slices. Rows out of range
    /// are empty.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&start), Some(&end)) => (&self.indices[start..end], &self.values[start..end]),
            _ => (&[], &[]),
        }
    }

    /// Positive-class probability for row `i` under `model` — one sparse
    /// dot product, no featurization.
    pub fn score_row(&self, model: &LogisticRegression, i: usize) -> f32 {
        let (indices, values) = self.row(i);
        model.predict_proba_row(indices, values)
    }

    /// Scores the row tile `[start, start + out.len())` with the block-tiled
    /// spmv kernel, writing row `start + r`'s probability into `out[r]`.
    ///
    /// The kernel sweeps the tile's rows over ascending column blocks of
    /// [`COL_BLOCK`] weights (128 KiB of f32 — sized to stay resident in
    /// L2), so one hot slice of the weight vector serves every row of the
    /// tile before the sweep moves on, instead of each row walking the full
    /// weight vector cold. Each row keeps ONE running accumulator carried
    /// across blocks, so its products are summed in exactly the ascending-
    /// index order of [`LogisticRegression::predict_proba_row`] — tiling
    /// changes the memory schedule, never the float summation order, and
    /// the output is bit-identical to `score_row` per row.
    pub fn score_rows(&self, model: &LogisticRegression, start: usize, out: &mut [f32]) {
        let rows = out.len();
        assert!(
            start + rows <= self.len(),
            "row tile [{start}, {}) out of range (rows: {})",
            start + rows,
            self.len()
        );
        let weights = model.weights();
        // Per-row cursor into the CSR arena and per-row running margin.
        let mut cursors: Vec<usize> = (0..rows).map(|r| self.offsets[start + r]).collect();
        let mut margins = vec![0.0f32; rows];
        let mut block_end: u64 = COL_BLOCK as u64;
        loop {
            let mut remaining = false;
            for r in 0..rows {
                let end = self.offsets[start + r + 1];
                let mut cur = cursors[r];
                let mut sum = margins[r];
                // Unrolled in-order accumulation: indices are sorted, so if
                // the 4th entry is still inside the block, all four are.
                while cur + 4 <= end && (self.indices[cur + 3] as u64) < block_end {
                    sum = accumulate(sum, weights, self.indices[cur], self.values[cur]);
                    sum = accumulate(sum, weights, self.indices[cur + 1], self.values[cur + 1]);
                    sum = accumulate(sum, weights, self.indices[cur + 2], self.values[cur + 2]);
                    sum = accumulate(sum, weights, self.indices[cur + 3], self.values[cur + 3]);
                    cur += 4;
                }
                while cur < end && (self.indices[cur] as u64) < block_end {
                    sum = accumulate(sum, weights, self.indices[cur], self.values[cur]);
                    cur += 1;
                }
                margins[r] = sum;
                cursors[r] = cur;
                remaining |= cur < end;
            }
            if !remaining {
                break;
            }
            block_end += COL_BLOCK as u64;
        }
        for r in 0..rows {
            out[r] = model.proba_from_margin(margins[r]);
        }
    }

    /// Scores every row in order with the tiled kernel.
    pub fn score_all(&self, model: &LogisticRegression) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        for tile_start in (0..self.len()).step_by(ROW_TILE) {
            let tile_len = ROW_TILE.min(self.len() - tile_start);
            self.score_rows(
                model,
                tile_start,
                &mut out[tile_start..tile_start + tile_len],
            );
        }
        out
    }
}

/// Column-block width of the tiled spmv: 2^15 f32 weights = 128 KiB.
pub const COL_BLOCK: usize = 1 << 15;

/// Row-tile height: how many rows share one sweep over the weight blocks.
/// Also the parallel work unit the scoring engine hands to `core::parallel`.
pub const ROW_TILE: usize = 256;

/// One guarded multiply-accumulate step, shared by the unrolled and tail
/// loops so both keep `predict_proba_row`'s exact skip semantics for
/// indices outside the weight vector.
#[inline(always)]
fn accumulate(sum: f32, weights: &[f32], index: u32, value: f32) -> f32 {
    match weights.get(index as usize) {
        Some(w) => sum + value * w,
        None => sum,
    }
}

/// A keyed cache of featurized documents.
///
/// The pipeline's training set only ever grows (bootstrap seeds, then
/// crowd-labeled documents per round), while the fitted featurizer never
/// changes — so each text needs featurizing exactly once even though the
/// model retrains after every round plus twice more for the Table 3
/// evaluation. Keys are caller-chosen (the pipeline uses document ids).
#[derive(Debug, Clone, Default)]
pub struct FeatureCache {
    map: HashMap<u64, SparseVec>,
    fresh: usize,
    hits: usize,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        FeatureCache::default()
    }

    /// The features for `(key, text)`, featurizing on first sight only.
    pub fn features(&mut self, featurizer: &Featurizer, key: u64, text: &str) -> &SparseVec {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.fresh += 1;
                e.insert(featurizer.features(text))
            }
        }
    }

    /// Assembles a labeled [`Dataset`] for the given `(key, text, label)`
    /// triples, featurizing only texts not yet cached.
    pub fn dataset<'a, I>(&mut self, featurizer: &Featurizer, items: I) -> Dataset
    where
        I: IntoIterator<Item = (u64, &'a str, bool)>,
    {
        let mut data = Dataset::new();
        for (key, text, label) in items {
            let features = self.features(featurizer, key, text).clone();
            data.push(features, label);
        }
        data
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How many texts were actually featurized (cache misses).
    pub fn fresh_featurizations(&self) -> usize {
        self.fresh
    }

    /// How many lookups were served from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{FeatureMode, FeaturizerConfig};
    use crate::logreg::TrainConfig;

    fn featurizer() -> Featurizer {
        Featurizer::fit(
            FeaturizerConfig {
                mode: FeatureMode::Word,
                hash_bits: 12,
                ..Default::default()
            },
            ["report him", "flag her account", "nice weather today"],
        )
    }

    fn model(dimensions: usize) -> LogisticRegression {
        let mut data = Dataset::new();
        for i in 0..50 {
            data.push(vec![(0, 1.0), ((i % 5 + 2) as u32, 0.5)], true);
            data.push(vec![(1, 1.0), ((i % 5 + 2) as u32, 0.5)], false);
        }
        LogisticRegression::train(&data, dimensions, TrainConfig::default())
    }

    #[test]
    fn matrix_round_trips_rows() {
        let rows: Vec<SparseVec> = vec![
            vec![(0, 1.0), (5, 2.0)],
            vec![],
            vec![(3, -1.0)],
            vec![(1, 0.25), (2, 0.5), (9, 4.0)],
        ];
        let m = FeatureMatrix::from_rows(16, rows.iter());
        assert_eq!(m.len(), 4);
        assert_eq!(m.nnz(), 6);
        for (i, row) in rows.iter().enumerate() {
            let (indices, values) = m.row(i);
            let rebuilt: SparseVec = indices
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect();
            assert_eq!(&rebuilt, row);
        }
    }

    #[test]
    fn out_of_range_row_is_empty() {
        let m = FeatureMatrix::new(8);
        assert_eq!(m.row(3), (&[][..], &[][..]));
        assert!(m.is_empty());
    }

    #[test]
    fn row_scores_match_sparse_scores() {
        let rows: Vec<SparseVec> = vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(0, 0.5), (1, 0.5), (3, 2.0)],
            vec![],
        ];
        let m = FeatureMatrix::from_rows(16, rows.iter());
        let model = model(16);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.score_row(&model, i), model.predict_proba(row), "row {i}");
        }
        assert_eq!(m.score_all(&model).len(), rows.len());
    }

    #[test]
    fn tiled_scores_are_bit_identical_to_row_scores() {
        // Deterministic pseudo-random rows spanning many column blocks,
        // plus empty rows and a row denser than the unroll width.
        let dims = COL_BLOCK * 4;
        let mut rows: Vec<SparseVec> = Vec::new();
        let mut state = 0x5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for r in 0..(ROW_TILE * 2 + 37) {
            if r % 11 == 0 {
                rows.push(Vec::new());
                continue;
            }
            let nnz = 1 + (next() % 23) as usize;
            let mut row: SparseVec = (0..nnz)
                .map(|_| {
                    let i = (next() % dims as u64) as u32;
                    let v = ((next() % 2001) as f32 - 1000.0) / 250.0;
                    (i, v)
                })
                .collect();
            row.sort_unstable_by_key(|(i, _)| *i);
            row.dedup_by_key(|(i, _)| *i);
            row.retain(|(_, v)| *v != 0.0);
            rows.push(row);
        }
        let m = FeatureMatrix::from_rows(dims, rows.iter());
        let model = model(dims);
        let tiled = m.score_all(&model);
        assert_eq!(tiled.len(), m.len());
        for (i, score) in tiled.iter().enumerate() {
            assert_eq!(score.to_bits(), m.score_row(&model, i).to_bits(), "row {i}");
        }
    }

    #[test]
    fn tiled_kernel_skips_indices_beyond_model() {
        // A model narrower than the feature space: out-of-range indices
        // must be skipped, not scored, exactly as predict_proba_row does.
        let rows: Vec<SparseVec> = vec![
            vec![(0, 1.0), (15, 2.0), (100_000, 5.0)],
            vec![(99_999, 3.0)],
        ];
        let m = FeatureMatrix::from_rows(1 << 17, rows.iter());
        let model = model(16);
        let tiled = m.score_all(&model);
        for (i, score) in tiled.iter().enumerate() {
            assert_eq!(score.to_bits(), m.score_row(&model, i).to_bits());
        }
    }

    #[test]
    fn partial_tile_scores_the_requested_rows() {
        let rows: Vec<SparseVec> = (0..10).map(|i| vec![(i as u32, 1.0)]).collect();
        let m = FeatureMatrix::from_rows(16, rows.iter());
        let model = model(16);
        let mut out = vec![0.0f32; 3];
        m.score_rows(&model, 4, &mut out);
        for (r, score) in out.iter().enumerate() {
            assert_eq!(score.to_bits(), m.score_row(&model, 4 + r).to_bits());
        }
    }

    #[test]
    fn cache_featurizes_each_key_once() {
        let f = featurizer();
        let mut cache = FeatureCache::new();
        let first = cache.features(&f, 1, "report him").clone();
        let second = cache.features(&f, 1, "report him").clone();
        assert_eq!(first, second);
        assert_eq!(cache.fresh_featurizations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_dataset_matches_direct_featurization() {
        let f = featurizer();
        let mut cache = FeatureCache::new();
        let items = [(1u64, "report him", true), (2u64, "nice weather", false)];
        let data = cache.dataset(&f, items.iter().map(|(k, t, l)| (*k, *t, *l)));
        assert_eq!(data.len(), 2);
        assert_eq!(data.examples[0].features, f.features("report him"));
        assert_eq!(data.examples[1].features, f.features("nice weather"));
        // A second assembly of a superset featurizes only the new text.
        let more = [
            (1u64, "report him", true),
            (2u64, "nice weather", false),
            (3u64, "flag her account", true),
        ];
        let data2 = cache.dataset(&f, more.iter().map(|(k, t, l)| (*k, *t, *l)));
        assert_eq!(data2.len(), 3);
        assert_eq!(cache.fresh_featurizations(), 3);
        assert_eq!(cache.hits(), 2);
    }
}
