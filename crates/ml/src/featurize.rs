//! Document → sparse-feature pipeline.
//!
//! Mirrors the paper's preprocessing (§5.2): normalize, reduce long
//! documents with a span-sampling strategy against the max-length
//! hyperparameter, tokenize with punctuation splitting, segment into
//! WordPiece subwords (or plain words / char n-grams for the feature-space
//! ablation), extract n-grams, and hash into a fixed-dimensional space.

use crate::sparse::{merge, SparseVec};
use incite_textkit::{
    char_ngrams, normalize, sample_spans, tokenize, EncodeScratch, FeatureHasher, SpanStrategy,
    SplitMix64, TokenKind, WordPieceEncoder, WordPieceTrainer,
};

/// Which token stream feeds the n-gram extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FeatureMode {
    /// Plain word unigrams + bigrams.
    Word,
    /// WordPiece subword unigrams + bigrams (the pipeline default,
    /// mirroring the paper's tokenization).
    Subword,
    /// Character 3–5-grams.
    Char,
}

/// Featurizer configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FeaturizerConfig {
    /// Max text length in characters — the Table 3 hyperparameter
    /// (128 for CTH, 512 for dox).
    pub max_len: usize,
    /// Maximum number of spans sampled per document.
    pub max_spans: usize,
    /// Long-document strategy (§5.2); random non-overlapping by default.
    pub strategy: SpanStrategy,
    /// Token stream choice.
    pub mode: FeatureMode,
    /// Feature-hash dimensionality in bits (2^bits slots).
    pub hash_bits: u32,
    /// WordPiece vocabulary size (only used in `Subword` mode).
    pub vocab_size: usize,
    /// Seed for span sampling.
    pub seed: u64,
}

impl Default for FeaturizerConfig {
    fn default() -> Self {
        FeaturizerConfig {
            max_len: 512,
            max_spans: 4,
            strategy: SpanStrategy::RandomNonOverlapping,
            mode: FeatureMode::Subword,
            hash_bits: 18,
            vocab_size: 4096,
            seed: 0x1ce_bee5,
        }
    }
}

/// The fitted token stream: the `Subword` variant *owns* its trained
/// WordPiece encoder, so "subword mode without an encoder" is
/// unrepresentable and the featurizer needs no runtime absence check.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum TokenStream {
    /// Plain word unigrams + bigrams.
    Word,
    /// WordPiece subwords with the vocabulary trained at fit time.
    Subword(WordPieceEncoder),
    /// Character 3–5-grams.
    Char,
}

/// A fitted featurizer. In `Subword` mode it owns a trained WordPiece
/// encoder; `Word`/`Char` modes are stateless.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Featurizer {
    config: FeaturizerConfig,
    hasher: FeatureHasher,
    stream: TokenStream,
}

impl Featurizer {
    /// Fits a featurizer. `corpus_sample` trains the WordPiece vocabulary in
    /// `Subword` mode and is ignored otherwise.
    pub fn fit<'a, I>(config: FeaturizerConfig, corpus_sample: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let hasher = FeatureHasher::new(config.hash_bits);
        let stream = match config.mode {
            FeatureMode::Word => TokenStream::Word,
            FeatureMode::Char => TokenStream::Char,
            FeatureMode::Subword => {
                let trainer = WordPieceTrainer::new(config.vocab_size);
                let mut words: Vec<String> = Vec::new();
                for doc in corpus_sample {
                    let norm = normalize(doc);
                    for tok in tokenize(&norm) {
                        if tok.kind != TokenKind::Punct {
                            words.push(tok.text.to_string());
                        }
                    }
                }
                TokenStream::Subword(WordPieceEncoder::new(
                    trainer.train(words.iter().map(|s| s.as_str())),
                ))
            }
        };
        Featurizer {
            config,
            hasher,
            stream,
        }
    }

    /// Configuration access.
    pub fn config(&self) -> &FeaturizerConfig {
        &self.config
    }

    /// Number of feature dimensions.
    pub fn dimensions(&self) -> usize {
        self.hasher.dimensions()
    }

    /// Featurizes one document. Deterministic: the span-sampling RNG is
    /// seeded from the config seed and a hash of the document.
    ///
    /// Runs the rolling-FNV n-gram path: grams are hashed straight from
    /// token byte slices, never materialized as `String`s. Byte-identical
    /// to [`Featurizer::features_legacy`] (enforced by tests).
    pub fn features(&self, text: &str) -> SparseVec {
        self.features_with(text, |span| self.span_features(span))
    }

    /// The original string-allocating featurize path, kept as the reference
    /// implementation for the rolling path's byte-identity tests and the
    /// `featurize_throughput` before/after measurement.
    pub fn features_legacy(&self, text: &str) -> SparseVec {
        self.features_with(text, |span| self.span_features_legacy(span))
    }

    /// Shared span-sampling + merge + L2 skeleton of both featurize paths.
    fn features_with(&self, text: &str, span_features: impl Fn(&str) -> SparseVec) -> SparseVec {
        let norm = normalize(text);
        let doc_hash = fnv(norm.as_bytes());
        let mut rng = SplitMix64::new(self.config.seed ^ doc_hash);
        let spans = sample_spans(
            &norm,
            self.config.max_len,
            self.config.max_spans,
            self.config.strategy,
            &mut rng,
        );
        let mut acc: SparseVec = Vec::new();
        for span in spans {
            let span_feats = span_features(span);
            // `merge(&[], &b)` copies `b` verbatim; taking it directly is
            // bit-identical and skips the copy for the common 1-span doc.
            acc = if acc.is_empty() {
                span_feats
            } else {
                merge(&acc, &span_feats)
            };
        }
        // L2 normalize the combined vector so documents of different span
        // counts are comparable.
        let n: f32 = acc.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
        if n > 0.0 {
            for (_, v) in &mut acc {
                *v /= n;
            }
        }
        acc
    }

    fn span_features(&self, span: &str) -> SparseVec {
        let mut pairs: Vec<(u32, f32)> = Vec::new();
        match &self.stream {
            TokenStream::Word => {
                let words: Vec<&[u8]> = tokenize(span)
                    .iter()
                    .filter(|t| t.kind != TokenKind::Punct)
                    .map(|t| t.text.as_bytes())
                    .collect();
                self.hasher.hash_ngrams_rolling(&words, &mut pairs);
            }
            TokenStream::Subword(encoder) => {
                // Piece units live as `"p{id}"` byte runs in one arena;
                // `bounds` holds the run boundaries. No per-piece String.
                let mut ids: Vec<u32> = Vec::new();
                let mut scratch = EncodeScratch::default();
                for tok in tokenize(span) {
                    if tok.kind == TokenKind::Punct {
                        continue;
                    }
                    encoder.encode_word_into(tok.text, &mut ids, &mut scratch);
                }
                let mut arena: Vec<u8> = Vec::with_capacity(ids.len() * 4);
                let mut bounds: Vec<usize> = Vec::with_capacity(ids.len() + 1);
                bounds.push(0);
                for &id in &ids {
                    arena.push(b'p');
                    push_decimal(&mut arena, id);
                    bounds.push(arena.len());
                }
                let units: Vec<&[u8]> = bounds.windows(2).map(|w| &arena[w[0]..w[1]]).collect();
                self.hasher.hash_ngrams_rolling(&units, &mut pairs);
            }
            TokenStream::Char => {
                self.hasher.hash_char_ngrams_rolling(span, 3, 5, &mut pairs);
            }
        }
        self.hasher.finalize_hashed(pairs, false)
    }

    fn span_features_legacy(&self, span: &str) -> SparseVec {
        let mut grams: Vec<String> = Vec::new();
        match &self.stream {
            TokenStream::Word => {
                let words: Vec<String> = tokenize(span)
                    .into_iter()
                    .filter(|t| t.kind != TokenKind::Punct)
                    .map(|t| t.text.to_string())
                    .collect();
                push_ngrams(&mut grams, &words);
            }
            TokenStream::Subword(encoder) => {
                let mut pieces: Vec<String> = Vec::new();
                for tok in tokenize(span) {
                    if tok.kind == TokenKind::Punct {
                        continue;
                    }
                    for id in encoder.encode_word(tok.text) {
                        pieces.push(format!("p{id}"));
                    }
                }
                push_ngrams(&mut grams, &pieces);
            }
            TokenStream::Char => {
                for n in 3..=5 {
                    for g in char_ngrams(span, n) {
                        grams.push(format!("c{n}|{g}"));
                    }
                }
            }
        }
        self.hasher
            .hash_features(grams.iter().map(|s| s.as_str()), false)
    }
}

fn push_ngrams(grams: &mut Vec<String>, units: &[String]) {
    for u in units {
        grams.push(format!("1|{u}"));
    }
    for w in units.windows(2) {
        grams.push(format!("2|{} {}", w[0], w[1]));
    }
}

/// Appends the decimal digits of `v`, matching `format!("{v}")`.
fn push_decimal(buf: &mut Vec<u8>, mut v: u32) {
    let mut digits = [0u8; 10];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&digits[i..]);
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<&'static str> {
        vec![
            "we need to report him to the platform",
            "lets mass flag her account",
            "post his address and phone number",
            "raid the stream tonight",
        ]
    }

    fn fit(mode: FeatureMode) -> Featurizer {
        let config = FeaturizerConfig {
            mode,
            hash_bits: 14,
            vocab_size: 512,
            ..Default::default()
        };
        Featurizer::fit(config, sample_corpus())
    }

    #[test]
    fn features_are_deterministic() {
        let f = fit(FeatureMode::Subword);
        let text = "we need to report him right now, spread the word";
        assert_eq!(f.features(text), f.features(text));
    }

    #[test]
    fn features_are_l2_normalized() {
        let f = fit(FeatureMode::Word);
        let v = f.features("report report report flag flag");
        let norm: f32 = v.iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn different_documents_differ() {
        let f = fit(FeatureMode::Word);
        assert_ne!(f.features("report him"), f.features("ignore her"));
    }

    #[test]
    fn empty_document_is_empty_vector() {
        for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
            let f = fit(mode);
            assert!(f.features("").is_empty(), "{mode:?}");
            assert!(f.features("   \n\t ").is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn indices_within_dimensions() {
        let f = fit(FeatureMode::Char);
        let v = f.features("mass flagging campaign against the account");
        assert!(!v.is_empty());
        for (i, _) in v {
            assert!((i as usize) < f.dimensions());
        }
    }

    #[test]
    fn long_documents_are_reduced_not_dropped() {
        let f = fit(FeatureMode::Word);
        let long = "we need to report him ".repeat(500);
        let v = f.features(&long);
        assert!(!v.is_empty());
    }

    #[test]
    fn case_is_normalized_away() {
        let f = fit(FeatureMode::Word);
        assert_eq!(f.features("REPORT Him"), f.features("report him"));
    }

    #[test]
    fn subword_mode_generalizes_to_unseen_forms() {
        let f = fit(FeatureMode::Subword);
        // "reporting" unseen; shares subword pieces with "report".
        let a = f.features("reporting");
        assert!(!a.is_empty());
    }

    #[test]
    fn rolling_path_is_byte_identical_to_legacy() {
        let docs = [
            "we need to report him to the platform",
            "lets mass flag her account right now, spread the word",
            "post his address and phone number: 555-0147 — dox incoming",
            "RAID the stream tonight!!! bring everyone",
            "报告 この アカウント héllo wörld",
            "",
            "   \n\t ",
            "a",
            "short",
        ];
        let long = "we need to report him right now ".repeat(300);
        for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
            let f = fit(mode);
            for doc in docs.iter().copied().chain(std::iter::once(long.as_str())) {
                let rolling = f.features(doc);
                let legacy = f.features_legacy(doc);
                assert_eq!(rolling.len(), legacy.len(), "{mode:?}: {doc:?}");
                for (r, l) in rolling.iter().zip(legacy.iter()) {
                    assert_eq!(r.0, l.0, "{mode:?}: {doc:?}");
                    assert_eq!(r.1.to_bits(), l.1.to_bits(), "{mode:?}: {doc:?}");
                }
            }
        }
    }
}
