//! Model persistence.
//!
//! §3 of the paper: "we will open-source the classifiers discussed in this
//! analysis to help online platforms better detect calls to harassment and
//! doxing. We will not provide PII or actual training data." This module is
//! that promise for the reproduction: a trained [`TextClassifier`]
//! serializes to a single JSON artifact — hashed-feature weights, WordPiece
//! vocabulary and featurizer configuration; **no training text** — and loads
//! back bit-identically.

use crate::model::TextClassifier;
use serde::{Deserialize as _, Serialize as _};
use std::io::{Read, Write};

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The artifact was not a valid model (wrong schema or corrupt).
    Format(String),
    /// The artifact declares an unsupported schema version.
    Version { found: u32, supported: u32 },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model i/o error: {e}"),
            PersistError::Format(m) => write!(f, "invalid model artifact: {m}"),
            PersistError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported model version {found} (supported: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Current artifact schema version.
pub const MODEL_VERSION: u32 = 1;

#[derive(serde::Serialize, serde::Deserialize)]
struct Artifact {
    /// Schema version for forward compatibility.
    version: u32,
    /// Human-readable provenance note.
    producer: String,
    /// The classifier itself.
    classifier: TextClassifier,
}

/// [`Artifact`] by reference: serializes to the identical JSON object
/// (same keys, `BTreeMap` order) without cloning the weight vector and
/// vocabulary. `save_model` is on the per-step checkpoint path, where the
/// clone was measurable.
struct ArtifactRef<'a> {
    version: u32,
    producer: String,
    classifier: &'a TextClassifier,
}

impl serde::Serialize for ArtifactRef<'_> {
    fn to_value(&self) -> serde::Value {
        let mut obj = serde::Map::new();
        obj.insert("version".to_string(), self.version.to_value());
        obj.insert("producer".to_string(), self.producer.to_value());
        obj.insert("classifier".to_string(), self.classifier.to_value());
        serde::Value::Object(obj)
    }
}

/// Saves a classifier as a JSON artifact.
pub fn save_model<W: Write>(writer: W, classifier: &TextClassifier) -> Result<(), PersistError> {
    let artifact = ArtifactRef {
        version: MODEL_VERSION,
        producer: format!("incite-ml {}", env!("CARGO_PKG_VERSION")),
        classifier,
    };
    serde_json::to_writer(writer, &artifact).map_err(|e| PersistError::Format(e.to_string()))
}

/// Loads a classifier from a JSON artifact.
pub fn load_model<R: Read>(reader: R) -> Result<TextClassifier, PersistError> {
    let artifact: Artifact =
        serde_json::from_reader(reader).map_err(|e| PersistError::Format(e.to_string()))?;
    if artifact.version != MODEL_VERSION {
        return Err(PersistError::Version {
            found: artifact.version,
            supported: MODEL_VERSION,
        });
    }
    Ok(artifact.classifier)
}

/// Magic + version header of the binary artifact frame.
const BIN_MAGIC: &[u8; 8] = b"IMODELB1";

/// Saves a classifier as a compact binary artifact — the same value tree
/// as [`save_model`], encoded without number formatting. This is the
/// hot-path format for per-step pipeline checkpoints, where serializing a
/// `2^18`-weight model as JSON costs milliseconds per boundary; the JSON
/// artifact remains the published, human-inspectable interchange format.
pub fn save_model_bin<W: Write>(
    mut writer: W,
    classifier: &TextClassifier,
) -> Result<(), PersistError> {
    let artifact = ArtifactRef {
        version: MODEL_VERSION,
        producer: format!("incite-ml {}", env!("CARGO_PKG_VERSION")),
        classifier,
    };
    let mut buf = Vec::with_capacity(1 << 16);
    buf.extend_from_slice(BIN_MAGIC);
    value_bin::encode(&artifact.to_value(), &mut buf);
    writer.write_all(&buf)?;
    Ok(())
}

/// Loads a classifier from a [`save_model_bin`] artifact.
pub fn load_model_bin<R: Read>(mut reader: R) -> Result<TextClassifier, PersistError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    if buf.len() < 8 || &buf[..8] != BIN_MAGIC {
        return Err(PersistError::Format(
            "not a binary model artifact (missing frame tag)".to_string(),
        ));
    }
    let value = value_bin::decode(&buf[8..]).map_err(PersistError::Format)?;
    let artifact = Artifact::from_value(&value).map_err(|e| PersistError::Format(e.to_string()))?;
    if artifact.version != MODEL_VERSION {
        return Err(PersistError::Version {
            found: artifact.version,
            supported: MODEL_VERSION,
        });
    }
    Ok(artifact.classifier)
}

/// A compact, exact binary encoding of the serde [`serde::Value`] tree.
/// Works for any `Serialize`/`Deserialize` type with no per-type codec to
/// maintain; numbers are little-endian bit patterns (floats round-trip
/// bit-exactly, with no formatting or parsing on the hot path). An
/// all-float array — the model's weight vector — packs as a raw `f64`
/// run behind its own tag.
mod value_bin {
    use serde::{Map, Value};

    const T_NULL: u8 = 0;
    const T_FALSE: u8 = 1;
    const T_TRUE: u8 = 2;
    const T_INT: u8 = 3;
    const T_UINT: u8 = 4;
    const T_FLOAT: u8 = 5;
    const T_STR: u8 = 6;
    const T_ARRAY: u8 = 7;
    const T_OBJECT: u8 = 8;
    const T_FLOAT_ARRAY: u8 = 9;

    pub fn encode(v: &Value, out: &mut Vec<u8>) {
        match v {
            Value::Null => out.push(T_NULL),
            Value::Bool(false) => out.push(T_FALSE),
            Value::Bool(true) => out.push(T_TRUE),
            Value::Int(i) => {
                out.push(T_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::UInt(u) => {
                out.push(T_UINT);
                out.extend_from_slice(&u.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(T_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(T_STR);
                out.extend_from_slice(&(s.len() as u64).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Array(items) => {
                if !items.is_empty() && items.iter().all(|i| matches!(i, Value::Float(_))) {
                    out.push(T_FLOAT_ARRAY);
                    out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                    for item in items {
                        if let Value::Float(f) = item {
                            out.extend_from_slice(&f.to_bits().to_le_bytes());
                        }
                    }
                } else {
                    out.push(T_ARRAY);
                    out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                    for item in items {
                        encode(item, out);
                    }
                }
            }
            Value::Object(map) => {
                out.push(T_OBJECT);
                out.extend_from_slice(&(map.len() as u64).to_le_bytes());
                for (k, item) in map {
                    out.extend_from_slice(&(k.len() as u64).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    encode(item, out);
                }
            }
        }
    }

    pub fn decode(bytes: &[u8]) -> Result<Value, String> {
        let mut pos = 0;
        let v = decode_at(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err("binary artifact has trailing bytes".to_string());
        }
        Ok(v)
    }

    fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
        let end = pos
            .checked_add(n)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| "binary artifact is truncated".to_string())?;
        let slice = &bytes[*pos..end];
        *pos = end;
        Ok(slice)
    }

    fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(take(bytes, pos, 8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn take_len(bytes: &[u8], pos: &mut usize) -> Result<usize, String> {
        let n = take_u64(bytes, pos)?;
        // A length can never exceed the remaining input; reject early so a
        // corrupt length cannot trigger a huge allocation.
        if n > (bytes.len() - *pos) as u64 {
            return Err("binary artifact declares an impossible length".to_string());
        }
        Ok(n as usize)
    }

    fn take_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        let len = take_len(bytes, pos)?;
        String::from_utf8(take(bytes, pos, len)?.to_vec())
            .map_err(|_| "binary artifact string is not UTF-8".to_string())
    }

    fn decode_at(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        match take(bytes, pos, 1)?[0] {
            T_NULL => Ok(Value::Null),
            T_FALSE => Ok(Value::Bool(false)),
            T_TRUE => Ok(Value::Bool(true)),
            T_INT => {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(take(bytes, pos, 8)?);
                Ok(Value::Int(i64::from_le_bytes(buf)))
            }
            T_UINT => Ok(Value::UInt(take_u64(bytes, pos)?)),
            T_FLOAT => Ok(Value::Float(f64::from_bits(take_u64(bytes, pos)?))),
            T_STR => Ok(Value::Str(take_string(bytes, pos)?)),
            T_ARRAY => {
                let count = take_len(bytes, pos)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(decode_at(bytes, pos)?);
                }
                Ok(Value::Array(items))
            }
            T_FLOAT_ARRAY => {
                let count = take_len(bytes, pos)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(Value::Float(f64::from_bits(take_u64(bytes, pos)?)));
                }
                Ok(Value::Array(items))
            }
            T_OBJECT => {
                let count = take_len(bytes, pos)?;
                let mut map = Map::new();
                for _ in 0..count {
                    let key = take_string(bytes, pos)?;
                    let value = decode_at(bytes, pos)?;
                    map.insert(key, value);
                }
                Ok(Value::Object(map))
            }
            tag => Err(format!("binary artifact has unknown tag {tag}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{FeatureMode, FeaturizerConfig};
    use crate::logreg::TrainConfig;

    fn trained(mode: FeatureMode) -> TextClassifier {
        let data = vec![
            ("we need to mass report him", true),
            ("lets raid her stream", true),
            ("dox him, post the address", true),
            ("nice weather for hiking", false),
            ("the new patch is great", false),
            ("help me fix my printer", false),
        ];
        TextClassifier::train(
            data,
            FeaturizerConfig {
                mode,
                hash_bits: 12,
                vocab_size: 256,
                ..Default::default()
            },
            TrainConfig {
                epochs: 6,
                ..Default::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
            let clf = trained(mode);
            let mut buf = Vec::new();
            save_model(&mut buf, &clf).unwrap();
            let loaded = load_model(buf.as_slice()).unwrap();
            for text in [
                "we need to report him",
                "report the pothole to the city",
                "raid her stream tonight",
                "",
            ] {
                assert_eq!(clf.score(text), loaded.score(text), "{mode:?}: {text}");
            }
        }
    }

    #[test]
    fn artifact_contains_no_training_text() {
        let clf = trained(FeatureMode::Word);
        let mut buf = Vec::new();
        save_model(&mut buf, &clf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        // The paper's commitment: models without training data.
        assert!(!json.contains("mass report him"));
        assert!(!json.contains("nice weather"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let clf = trained(FeatureMode::Word);
        let mut buf = Vec::new();
        save_model(&mut buf, &clf).unwrap();
        let json = String::from_utf8(buf)
            .unwrap()
            .replacen("\"version\":1", "\"version\":99", 1);
        match load_model(json.as_bytes()) {
            Err(PersistError::Version { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            load_model(&b"not json"[..]),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(
            load_model(&b"{}"[..]),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn binary_roundtrip_preserves_scores_exactly() {
        for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
            let clf = trained(mode);
            let mut buf = Vec::new();
            save_model_bin(&mut buf, &clf).unwrap();
            let loaded = load_model_bin(buf.as_slice()).unwrap();
            for text in [
                "we need to report him",
                "report the pothole to the city",
                "raid her stream tonight",
                "",
            ] {
                assert_eq!(clf.score(text), loaded.score(text), "{mode:?}: {text}");
            }
        }
    }

    #[test]
    fn binary_and_json_artifacts_agree() {
        let clf = trained(FeatureMode::Subword);
        let mut bin = Vec::new();
        save_model_bin(&mut bin, &clf).unwrap();
        let from_bin = load_model_bin(bin.as_slice()).unwrap();
        let mut json = Vec::new();
        save_model(&mut json, &clf).unwrap();
        let from_json = load_model(json.as_slice()).unwrap();
        for text in ["raid her stream tonight", "picnic weather", ""] {
            assert_eq!(from_bin.score(text), from_json.score(text), "{text}");
        }
    }

    #[test]
    fn binary_garbage_and_truncation_are_rejected() {
        assert!(matches!(
            load_model_bin(&b"not a frame"[..]),
            Err(PersistError::Format(_))
        ));
        let clf = trained(FeatureMode::Word);
        let mut buf = Vec::new();
        save_model_bin(&mut buf, &clf).unwrap();
        let cut = buf.len() / 2;
        assert!(matches!(
            load_model_bin(&buf[..cut]),
            Err(PersistError::Format(_))
        ));
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(matches!(
            load_model_bin(trailing.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn every_binary_truncation_point_is_a_typed_error() {
        // The serve boot path loads the binary artifact from a run
        // directory that may have been cut off at any byte (crash, partial
        // copy, bad disk). Every prefix must be a typed `PersistError` —
        // never a panic, never an `Ok` on less than the full frame.
        let clf = trained(FeatureMode::Subword);
        let mut buf = Vec::new();
        save_model_bin(&mut buf, &clf).unwrap();
        // Stride keeps the sweep fast while still crossing every section
        // of the frame; the hand-picked cuts hit the boundary cases.
        let step = (buf.len() / 97).max(1);
        let mut cuts: Vec<usize> = (0..buf.len()).step_by(step).collect();
        cuts.extend([0, 1, 7, 8, 9, buf.len() - 1]);
        for cut in cuts {
            match load_model_bin(&buf[..cut]) {
                Err(PersistError::Format(msg)) => {
                    assert!(!msg.is_empty(), "empty diagnostic at cut {cut}");
                }
                Err(other) => panic!("unexpected error kind at cut {cut}: {other:?}"),
                Ok(_) => panic!("truncated artifact ({cut} of {} bytes) loaded", buf.len()),
            }
        }
        // The full frame still loads — the sweep did not depend on a
        // corrupted source buffer.
        assert!(load_model_bin(buf.as_slice()).is_ok());
    }
}
