//! Model persistence.
//!
//! §3 of the paper: "we will open-source the classifiers discussed in this
//! analysis to help online platforms better detect calls to harassment and
//! doxing. We will not provide PII or actual training data." This module is
//! that promise for the reproduction: a trained [`TextClassifier`]
//! serializes to a single JSON artifact — hashed-feature weights, WordPiece
//! vocabulary and featurizer configuration; **no training text** — and loads
//! back bit-identically.

use crate::model::TextClassifier;
use std::io::{Read, Write};

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The artifact was not a valid model (wrong schema or corrupt).
    Format(String),
    /// The artifact declares an unsupported schema version.
    Version { found: u32, supported: u32 },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model i/o error: {e}"),
            PersistError::Format(m) => write!(f, "invalid model artifact: {m}"),
            PersistError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported model version {found} (supported: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Current artifact schema version.
pub const MODEL_VERSION: u32 = 1;

#[derive(serde::Serialize, serde::Deserialize)]
struct Artifact {
    /// Schema version for forward compatibility.
    version: u32,
    /// Human-readable provenance note.
    producer: String,
    /// The classifier itself.
    classifier: TextClassifier,
}

/// Saves a classifier as a JSON artifact.
pub fn save_model<W: Write>(writer: W, classifier: &TextClassifier) -> Result<(), PersistError> {
    let artifact = Artifact {
        version: MODEL_VERSION,
        producer: format!("incite-ml {}", env!("CARGO_PKG_VERSION")),
        classifier: classifier.clone(),
    };
    serde_json::to_writer(writer, &artifact).map_err(|e| PersistError::Format(e.to_string()))
}

/// Loads a classifier from a JSON artifact.
pub fn load_model<R: Read>(reader: R) -> Result<TextClassifier, PersistError> {
    let artifact: Artifact =
        serde_json::from_reader(reader).map_err(|e| PersistError::Format(e.to_string()))?;
    if artifact.version != MODEL_VERSION {
        return Err(PersistError::Version {
            found: artifact.version,
            supported: MODEL_VERSION,
        });
    }
    Ok(artifact.classifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{FeatureMode, FeaturizerConfig};
    use crate::logreg::TrainConfig;

    fn trained(mode: FeatureMode) -> TextClassifier {
        let data = vec![
            ("we need to mass report him", true),
            ("lets raid her stream", true),
            ("dox him, post the address", true),
            ("nice weather for hiking", false),
            ("the new patch is great", false),
            ("help me fix my printer", false),
        ];
        TextClassifier::train(
            data,
            FeaturizerConfig {
                mode,
                hash_bits: 12,
                vocab_size: 256,
                ..Default::default()
            },
            TrainConfig {
                epochs: 6,
                ..Default::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
            let clf = trained(mode);
            let mut buf = Vec::new();
            save_model(&mut buf, &clf).unwrap();
            let loaded = load_model(buf.as_slice()).unwrap();
            for text in [
                "we need to report him",
                "report the pothole to the city",
                "raid her stream tonight",
                "",
            ] {
                assert_eq!(clf.score(text), loaded.score(text), "{mode:?}: {text}");
            }
        }
    }

    #[test]
    fn artifact_contains_no_training_text() {
        let clf = trained(FeatureMode::Word);
        let mut buf = Vec::new();
        save_model(&mut buf, &clf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        // The paper's commitment: models without training data.
        assert!(!json.contains("mass report him"));
        assert!(!json.contains("nice weather"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let clf = trained(FeatureMode::Word);
        let mut buf = Vec::new();
        save_model(&mut buf, &clf).unwrap();
        let json = String::from_utf8(buf)
            .unwrap()
            .replacen("\"version\":1", "\"version\":99", 1);
        match load_model(json.as_bytes()) {
            Err(PersistError::Version { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            load_model(&b"not json"[..]),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(
            load_model(&b"{}"[..]),
            Err(PersistError::Format(_))
        ));
    }
}
