//! Hyperparameter grid search.
//!
//! §5.4: "We withheld evaluation sets of data annotations to use for
//! hyperparameter tuning and to optimize our classifiers' parameters for
//! better AUC-ROC scores … the length parameter is selected and fixed for
//! training/testing, thus we hyperparameter optimized it to determine the
//! best text length per task." This module sweeps (text length × learning
//! rate × positive weight) and scores each point on a held-out set.

use crate::featurize::{FeatureMode, FeaturizerConfig};
use crate::logreg::TrainConfig;
use crate::model::TextClassifier;
use incite_textkit::SpanStrategy;

/// One grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Max text length in characters (the Table 3 hyperparameter).
    pub text_length: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Positive-class gradient weight.
    pub positive_weight: f32,
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct GridResult {
    pub point: GridPoint,
    /// AUC-ROC on the held-out set (`None` if degenerate).
    pub auc: Option<f64>,
    /// Positive-class F1 at threshold 0.5.
    pub positive_f1: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
}

/// The default grid: text lengths the paper swept plus standard SGD knobs.
pub fn default_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for &text_length in &[128usize, 256, 512] {
        for &learning_rate in &[0.1f32, 0.3] {
            for &positive_weight in &[1.0f32, 2.0] {
                grid.push(GridPoint {
                    text_length,
                    learning_rate,
                    positive_weight,
                });
            }
        }
    }
    grid
}

/// Trains and evaluates each grid point, returning results sorted by AUC
/// (best first; `None` AUCs sort last).
pub fn grid_search(
    train: &[(String, bool)],
    dev: &[(String, bool)],
    grid: &[GridPoint],
    mode: FeatureMode,
    seed: u64,
) -> Vec<GridResult> {
    let mut results: Vec<GridResult> = grid
        .iter()
        .map(|&point| {
            let fc = FeaturizerConfig {
                max_len: point.text_length,
                mode,
                strategy: SpanStrategy::RandomNonOverlapping,
                seed,
                ..Default::default()
            };
            let tc = TrainConfig {
                learning_rate: point.learning_rate,
                positive_weight: point.positive_weight,
                seed,
                ..Default::default()
            };
            let clf = TextClassifier::train(train.iter().map(|(t, l)| (t.as_str(), *l)), fc, tc);
            let report = clf.evaluate(dev.iter().map(|(t, l)| (t.as_str(), *l)), 0.5);
            GridResult {
                point,
                auc: report.auc,
                positive_f1: report.metrics.positive.f1,
                macro_f1: report.metrics.macro_avg.f1,
            }
        })
        .collect();
    results.sort_by(|a, b| {
        let ka = a.auc.unwrap_or(-1.0);
        let kb = b.auc.unwrap_or(-1.0);
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        for i in 0..n {
            out.push((
                format!("we need to mass report account number {i} right now"),
                true,
            ));
            out.push((
                format!("had a great day at the park with friend {i}"),
                false,
            ));
        }
        out
    }

    #[test]
    fn default_grid_has_twelve_points() {
        assert_eq!(default_grid().len(), 12);
    }

    #[test]
    fn grid_search_orders_by_auc() {
        let train = corpus(20);
        let dev = corpus(8);
        let grid = vec![
            GridPoint {
                text_length: 128,
                learning_rate: 0.3,
                positive_weight: 2.0,
            },
            GridPoint {
                text_length: 512,
                learning_rate: 0.1,
                positive_weight: 1.0,
            },
        ];
        let results = grid_search(&train, &dev, &grid, FeatureMode::Word, 1);
        assert_eq!(results.len(), 2);
        assert!(results[0].auc.unwrap_or(0.0) >= results[1].auc.unwrap_or(0.0));
        // Separable toy data: best point should be excellent.
        assert!(results[0].auc.unwrap() > 0.95);
        assert!(results[0].positive_f1 > 0.8);
    }

    #[test]
    fn degenerate_dev_set_yields_none_auc() {
        let train = corpus(10);
        let dev: Vec<(String, bool)> = vec![("only one class here".to_string(), false)];
        let grid = vec![GridPoint {
            text_length: 128,
            learning_rate: 0.3,
            positive_weight: 1.0,
        }];
        let results = grid_search(&train, &dev, &grid, FeatureMode::Word, 1);
        assert!(results[0].auc.is_none());
    }
}
