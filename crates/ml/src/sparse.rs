//! Sparse feature vectors.
//!
//! A feature vector is a sorted list of `(index, value)` pairs produced by
//! the feature hasher. Indices are unique and strictly increasing, which
//! the dot/axpy kernels rely on.

/// A sparse vector: sorted, de-duplicated `(index, value)` pairs.
pub type SparseVec = Vec<(u32, f32)>;

/// Dot product of a sparse vector with dense weights. Out-of-range indices
/// contribute nothing (they cannot occur when the hasher dimension matches
/// the weight vector length).
pub fn dot(sparse: &SparseVec, dense: &[f32]) -> f32 {
    let mut sum = 0.0;
    for &(i, v) in sparse {
        if let Some(w) = dense.get(i as usize) {
            sum += v * w;
        }
    }
    sum
}

/// `dense[i] += scale * v` for each sparse component.
pub fn axpy(dense: &mut [f32], sparse: &SparseVec, scale: f32) {
    for &(i, v) in sparse {
        if let Some(w) = dense.get_mut(i as usize) {
            *w += scale * v;
        }
    }
}

/// L2 norm of a sparse vector.
pub fn norm(sparse: &SparseVec) -> f32 {
    sparse.iter().map(|(_, v)| v * v).sum::<f32>().sqrt()
}

/// Merges two sparse vectors by summing coincident indices.
pub fn merge(a: &SparseVec, b: &SparseVec) -> SparseVec {
    let mut out = SparseVec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let v = a[i].1 + b[j].1;
                // Sparse invariant: exactly-zero entries are not stored, so
                // an exact comparison is the intended filter here.
                // incite-lint: allow(INC003)
                if v != 0.0 {
                    out.push((a[i].0, v));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Scales a sparse vector in place.
pub fn scale(sparse: &mut SparseVec, factor: f32) {
    for (_, v) in sparse.iter_mut() {
        *v *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        let s: SparseVec = vec![(0, 1.0), (2, 2.0), (5, -1.0)];
        let d = vec![1.0, 10.0, 0.5, 0.0, 0.0, 4.0];
        assert_eq!(dot(&s, &d), 1.0 + 1.0 - 4.0);
    }

    #[test]
    fn dot_ignores_out_of_range() {
        let s: SparseVec = vec![(100, 5.0)];
        let d = vec![1.0; 3];
        assert_eq!(dot(&s, &d), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let s: SparseVec = vec![(1, 2.0)];
        let mut d = vec![0.0; 3];
        axpy(&mut d, &s, 0.5);
        assert_eq!(d, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn merge_sums_coincident() {
        let a: SparseVec = vec![(0, 1.0), (2, 1.0)];
        let b: SparseVec = vec![(2, 2.0), (3, 1.0)];
        assert_eq!(merge(&a, &b), vec![(0, 1.0), (2, 3.0), (3, 1.0)]);
    }

    #[test]
    fn merge_drops_cancellations() {
        let a: SparseVec = vec![(1, 1.0)];
        let b: SparseVec = vec![(1, -1.0)];
        assert!(merge(&a, &b).is_empty());
    }

    #[test]
    fn norm_and_scale() {
        let mut s: SparseVec = vec![(0, 3.0), (1, 4.0)];
        assert_eq!(norm(&s), 5.0);
        scale(&mut s, 2.0);
        assert_eq!(norm(&s), 10.0);
    }
}
