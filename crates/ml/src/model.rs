//! The end-to-end text classifier: featurizer + linear model.
//!
//! This is the unit the filtering pipeline trains, retrains during active
//! learning, and applies to the full corpus — the role the fine-tuned
//! distilBERT plays in Figure 1.

use crate::batch::{FeatureCache, FeatureMatrix};
use crate::data::Dataset;
use crate::featurize::{Featurizer, FeaturizerConfig};
use crate::logreg::{LogisticRegression, TrainConfig};
use incite_stats::classify::{auc_roc, BinaryConfusion, MultiMetrics};

/// A text-in, probability-out binary classifier.
///
/// ```
/// use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
///
/// let labeled = vec![
///     ("we need to mass report his account", true),
///     ("everyone flag her videos now", true),
///     ("lovely weather for a picnic", false),
///     ("the new patch notes look good", false),
/// ];
/// let clf = TextClassifier::train(
///     labeled,
///     FeaturizerConfig { mode: FeatureMode::Word, hash_bits: 12, ..Default::default() },
///     TrainConfig::default(),
/// );
/// assert!(clf.score("report his account to the platform") > clf.score("picnic weather"));
/// ```
/// A text-in, probability-out binary classifier.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TextClassifier {
    featurizer: Featurizer,
    model: LogisticRegression,
}

impl TextClassifier {
    /// Trains from labeled raw documents. The WordPiece vocabulary (in
    /// subword mode) is fitted on the training texts themselves, mirroring
    /// the paper's pre-training-on-corpus step.
    pub fn train<'a, I>(
        labeled: I,
        featurizer_config: FeaturizerConfig,
        train_config: TrainConfig,
    ) -> Self
    where
        I: IntoIterator<Item = (&'a str, bool)> + Clone,
    {
        let featurizer = Featurizer::fit(
            featurizer_config,
            labeled.clone().into_iter().map(|(text, _)| text),
        );
        let mut data = Dataset::new();
        for (text, label) in labeled {
            data.push(featurizer.features(text), label);
        }
        let model = LogisticRegression::train(&data, featurizer.dimensions(), train_config);
        TextClassifier { featurizer, model }
    }

    /// Trains like [`Self::train`], but produces every feature vector
    /// through `cache` (keyed by the caller's ids) so that later
    /// [`Self::retrain_features`] calls on a grown training set reuse them
    /// instead of re-tokenizing. Each text is featurized exactly once for
    /// the lifetime of the cache.
    pub fn train_with_cache<'a, I>(
        labeled: I,
        featurizer_config: FeaturizerConfig,
        train_config: TrainConfig,
        cache: &mut FeatureCache,
    ) -> Self
    where
        I: IntoIterator<Item = (u64, &'a str, bool)> + Clone,
    {
        let featurizer = Featurizer::fit(
            featurizer_config,
            labeled.clone().into_iter().map(|(_, text, _)| text),
        );
        let data = cache.dataset(&featurizer, labeled);
        let model = LogisticRegression::train(&data, featurizer.dimensions(), train_config);
        TextClassifier { featurizer, model }
    }

    /// Retrains the linear model on new labels while keeping the fitted
    /// featurizer — one active-learning iteration (§5.3).
    pub fn retrain<'a, I>(&mut self, labeled: I, train_config: TrainConfig)
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut data = Dataset::new();
        for (text, label) in labeled {
            data.push(self.featurizer.features(text), label);
        }
        self.retrain_features(&data, train_config);
    }

    /// Retrains from already-featurized examples — the featurize-once path:
    /// callers holding a [`crate::batch::FeatureCache`] featurize each text
    /// once across arbitrarily many retrains.
    pub fn retrain_features(&mut self, data: &Dataset, train_config: TrainConfig) {
        self.model = LogisticRegression::train(data, self.featurizer.dimensions(), train_config);
    }

    /// Positive-class probability for a document.
    pub fn score(&self, text: &str) -> f32 {
        self.model.predict_proba(&self.featurizer.features(text))
    }

    /// Scores a batch through the featurize-once path: each text is
    /// featurized exactly once into a CSR [`FeatureMatrix`], then scored as
    /// sparse dot products. Bit-identical to per-text [`Self::score`].
    pub fn score_batch<'a, I: IntoIterator<Item = &'a str>>(&self, texts: I) -> Vec<f32> {
        self.features_matrix(texts).score_all(&self.model)
    }

    /// Featurizes a batch of texts (once each) into a CSR matrix whose row
    /// order matches the input order.
    pub fn features_matrix<'a, I: IntoIterator<Item = &'a str>>(&self, texts: I) -> FeatureMatrix {
        let mut matrix = FeatureMatrix::new(self.featurizer.dimensions());
        for text in texts {
            matrix.push_row(&self.featurizer.features(text));
        }
        matrix
    }

    /// The fitted featurizer.
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }

    /// The trained linear model.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Evaluates on held-out labeled documents at a decision threshold,
    /// producing the Table 3 metric block plus AUC-ROC. Each text is
    /// featurized exactly once (batch path).
    pub fn evaluate<'a, I>(&self, labeled: I, threshold: f32) -> EvalReport
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut data = Dataset::new();
        for (text, label) in labeled {
            data.push(self.featurizer.features(text), label);
        }
        self.evaluate_features(&data, threshold)
    }

    /// Evaluates already-featurized examples — the cached counterpart of
    /// [`Self::evaluate`], used by the pipeline to reuse training-set
    /// features across the eval/final retrains.
    pub fn evaluate_features(&self, data: &Dataset, threshold: f32) -> EvalReport {
        let mut confusion = BinaryConfusion::default();
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for example in &data.examples {
            let score = self.model.predict_proba(&example.features);
            confusion.record(example.label, score > threshold);
            scores.push(score as f64);
            labels.push(example.label);
        }
        EvalReport {
            metrics: confusion.table_metrics(),
            confusion,
            auc: auc_roc(&scores, &labels),
        }
    }
}

/// Evaluation output: confusion counts, Table 3 metrics, AUC.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalReport {
    pub confusion: BinaryConfusion,
    pub metrics: MultiMetrics,
    /// `None` when the evaluation set is single-class.
    pub auc: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::FeatureMode;

    fn labeled_corpus() -> Vec<(&'static str, bool)> {
        vec![
            ("we need to mass report his account get him banned", true),
            ("lets all flag her videos until they remove them", true),
            ("everyone report this profile to the platform now", true),
            ("we should raid his stream and spam the chat", true),
            ("post her address so people can show up", true),
            ("dox him and spread it everywhere", true),
            ("report the bug tracker issue to the maintainers", false),
            ("i love this recipe for banana bread", false),
            ("the weather has been great this week", false),
            ("new episode drops tonight cant wait", false),
            ("can someone help me fix my printer", false),
            ("great game last night what a comeback", false),
        ]
    }

    fn quick_config() -> FeaturizerConfig {
        FeaturizerConfig {
            mode: FeatureMode::Word,
            hash_bits: 14,
            max_len: 128,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_separate_cth_from_benign() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        assert!(clf.score("we need to report him and get his account banned") > 0.5);
        assert!(clf.score("what a lovely sunset today") < 0.5);
    }

    #[test]
    fn scores_are_probabilities() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        for (text, _) in labeled_corpus() {
            let s = clf.score(text);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn evaluate_reports_consistent_counts() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let report = clf.evaluate(labeled_corpus(), 0.5);
        assert_eq!(report.confusion.total(), 12);
        assert!(report.auc.unwrap() > 0.8);
        assert!(report.metrics.positive.f1 > 0.6);
    }

    #[test]
    fn retrain_keeps_featurizer_but_updates_model() {
        let mut clf =
            TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let before = clf.score("report him to the platform");
        // Retrain with flipped labels; the score must move.
        let flipped: Vec<(&str, bool)> =
            labeled_corpus().into_iter().map(|(t, l)| (t, !l)).collect();
        clf.retrain(
            flipped.iter().map(|(t, l)| (*t, *l)),
            TrainConfig::default(),
        );
        let after = clf.score("report him to the platform");
        assert!(after < before);
    }

    #[test]
    fn batch_scoring_matches_single() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let texts = ["report him", "nice weather"];
        let batch = clf.score_batch(texts);
        assert_eq!(batch[0], clf.score("report him"));
        assert_eq!(batch[1], clf.score("nice weather"));
    }

    #[test]
    fn cached_feature_paths_match_text_paths() {
        let mut clf =
            TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let mut data = Dataset::new();
        for (text, label) in labeled_corpus() {
            data.push(clf.featurizer().features(text), label);
        }
        // evaluate == evaluate_features on the same examples.
        let by_text = clf.evaluate(labeled_corpus(), 0.5);
        let by_features = clf.evaluate_features(&data, 0.5);
        assert_eq!(by_text.confusion, by_features.confusion);
        assert_eq!(by_text.auc, by_features.auc);
        // retrain == retrain_features from the cached features.
        let mut twin = clf.clone();
        clf.retrain(labeled_corpus(), TrainConfig::default());
        twin.retrain_features(&data, TrainConfig::default());
        for (text, _) in labeled_corpus() {
            assert_eq!(clf.score(text), twin.score(text));
        }
    }
}
