//! The end-to-end text classifier: featurizer + linear model.
//!
//! This is the unit the filtering pipeline trains, retrains during active
//! learning, and applies to the full corpus — the role the fine-tuned
//! distilBERT plays in Figure 1.

use crate::data::Dataset;
use crate::featurize::{Featurizer, FeaturizerConfig};
use crate::logreg::{LogisticRegression, TrainConfig};
use incite_stats::classify::{auc_roc, BinaryConfusion, MultiMetrics};

/// A text-in, probability-out binary classifier.
///
/// ```
/// use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
///
/// let labeled = vec![
///     ("we need to mass report his account", true),
///     ("everyone flag her videos now", true),
///     ("lovely weather for a picnic", false),
///     ("the new patch notes look good", false),
/// ];
/// let clf = TextClassifier::train(
///     labeled,
///     FeaturizerConfig { mode: FeatureMode::Word, hash_bits: 12, ..Default::default() },
///     TrainConfig::default(),
/// );
/// assert!(clf.score("report his account to the platform") > clf.score("picnic weather"));
/// ```
/// A text-in, probability-out binary classifier.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TextClassifier {
    featurizer: Featurizer,
    model: LogisticRegression,
}

impl TextClassifier {
    /// Trains from labeled raw documents. The WordPiece vocabulary (in
    /// subword mode) is fitted on the training texts themselves, mirroring
    /// the paper's pre-training-on-corpus step.
    pub fn train<'a, I>(
        labeled: I,
        featurizer_config: FeaturizerConfig,
        train_config: TrainConfig,
    ) -> Self
    where
        I: IntoIterator<Item = (&'a str, bool)> + Clone,
    {
        let featurizer = Featurizer::fit(
            featurizer_config,
            labeled.clone().into_iter().map(|(text, _)| text),
        );
        let mut data = Dataset::new();
        for (text, label) in labeled {
            data.push(featurizer.features(text), label);
        }
        let model = LogisticRegression::train(&data, featurizer.dimensions(), train_config);
        TextClassifier { featurizer, model }
    }

    /// Retrains the linear model on new labels while keeping the fitted
    /// featurizer — one active-learning iteration (§5.3).
    pub fn retrain<'a, I>(&mut self, labeled: I, train_config: TrainConfig)
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut data = Dataset::new();
        for (text, label) in labeled {
            data.push(self.featurizer.features(text), label);
        }
        self.model = LogisticRegression::train(&data, self.featurizer.dimensions(), train_config);
    }

    /// Positive-class probability for a document.
    pub fn score(&self, text: &str) -> f32 {
        self.model.predict_proba(&self.featurizer.features(text))
    }

    /// Scores a batch.
    pub fn score_batch<'a, I: IntoIterator<Item = &'a str>>(&self, texts: I) -> Vec<f32> {
        texts.into_iter().map(|t| self.score(t)).collect()
    }

    /// The fitted featurizer.
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }

    /// Evaluates on held-out labeled documents at a decision threshold,
    /// producing the Table 3 metric block plus AUC-ROC.
    pub fn evaluate<'a, I>(&self, labeled: I, threshold: f32) -> EvalReport
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut confusion = BinaryConfusion::default();
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (text, label) in labeled {
            let score = self.score(text);
            confusion.record(label, score > threshold);
            scores.push(score as f64);
            labels.push(label);
        }
        EvalReport {
            metrics: confusion.table_metrics(),
            confusion,
            auc: auc_roc(&scores, &labels),
        }
    }
}

/// Evaluation output: confusion counts, Table 3 metrics, AUC.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub confusion: BinaryConfusion,
    pub metrics: MultiMetrics,
    /// `None` when the evaluation set is single-class.
    pub auc: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::FeatureMode;

    fn labeled_corpus() -> Vec<(&'static str, bool)> {
        vec![
            ("we need to mass report his account get him banned", true),
            ("lets all flag her videos until they remove them", true),
            ("everyone report this profile to the platform now", true),
            ("we should raid his stream and spam the chat", true),
            ("post her address so people can show up", true),
            ("dox him and spread it everywhere", true),
            ("report the bug tracker issue to the maintainers", false),
            ("i love this recipe for banana bread", false),
            ("the weather has been great this week", false),
            ("new episode drops tonight cant wait", false),
            ("can someone help me fix my printer", false),
            ("great game last night what a comeback", false),
        ]
    }

    fn quick_config() -> FeaturizerConfig {
        FeaturizerConfig {
            mode: FeatureMode::Word,
            hash_bits: 14,
            max_len: 128,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_separate_cth_from_benign() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        assert!(clf.score("we need to report him and get his account banned") > 0.5);
        assert!(clf.score("what a lovely sunset today") < 0.5);
    }

    #[test]
    fn scores_are_probabilities() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        for (text, _) in labeled_corpus() {
            let s = clf.score(text);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn evaluate_reports_consistent_counts() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let report = clf.evaluate(labeled_corpus(), 0.5);
        assert_eq!(report.confusion.total(), 12);
        assert!(report.auc.unwrap() > 0.8);
        assert!(report.metrics.positive.f1 > 0.6);
    }

    #[test]
    fn retrain_keeps_featurizer_but_updates_model() {
        let mut clf =
            TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let before = clf.score("report him to the platform");
        // Retrain with flipped labels; the score must move.
        let flipped: Vec<(&str, bool)> =
            labeled_corpus().into_iter().map(|(t, l)| (t, !l)).collect();
        clf.retrain(
            flipped.iter().map(|(t, l)| (*t, *l)),
            TrainConfig::default(),
        );
        let after = clf.score("report him to the platform");
        assert!(after < before);
    }

    #[test]
    fn batch_scoring_matches_single() {
        let clf = TextClassifier::train(labeled_corpus(), quick_config(), TrainConfig::default());
        let texts = ["report him", "nice weather"];
        let batch = clf.score_batch(texts);
        assert_eq!(batch[0], clf.score("report him"));
        assert_eq!(batch[1], clf.score("nice weather"));
    }
}
