//! Fixed-width topic fingerprints over hashed n-gram features.
//!
//! The streaming threat ranker needs a *topic-overlap* axis next to
//! toxicity: Ex Machina-style toxicity alone flags noise, but an amplified
//! call-to-harassment only becomes a threat signal for an audience member
//! whose own posting history covers the same topic (they can recognize —
//! and act on — the target). Full sparse feature vectors are too wide to
//! keep per actor for an unbounded stream, so each document's hashed
//! n-gram features ([`crate::Featurizer::features`]) are folded into a
//! fixed `FINGERPRINT_DIM`-wide signed profile, and overlap is the cosine
//! of two profiles.
//!
//! The fold is a second-level feature hash: feature index `i` lands in
//! slot `i % FINGERPRINT_DIM` with a deterministic ±1 sign drawn from an
//! independent bit of `i` (the same sign-hash trick the first-level
//! [`incite_textkit::FeatureHasher`] uses, so collisions cancel in
//! expectation instead of accumulating). Everything is pure float
//! arithmetic over already-sorted sparse vectors: fingerprints are
//! byte-identical for identical inputs regardless of thread count.

use crate::sparse::SparseVec;
use incite_textkit::fnv1a;

/// Fingerprint width. 64 slots keeps an actor's whole topical history in
/// one cache line pair while leaving cosine enough resolution to separate
/// topics at the corpus' vocabulary size.
pub const FINGERPRINT_DIM: usize = 64;

/// Seed for the fold's sign hash, independent of the feature hasher's.
const FOLD_SIGN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fixed-width topical profile of one document or one actor's history.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicFingerprint {
    slots: [f32; FINGERPRINT_DIM],
}

impl Default for TopicFingerprint {
    fn default() -> Self {
        TopicFingerprint {
            slots: [0.0; FINGERPRINT_DIM],
        }
    }
}

impl TopicFingerprint {
    /// The empty profile (no history yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one document's sparse features into a fresh fingerprint.
    pub fn from_features(features: &SparseVec) -> Self {
        let mut fp = Self::new();
        fp.fold(features);
        fp
    }

    /// Folds one more document's features into this profile. The fold is
    /// order-independent (a sum), so an actor's history fingerprint does
    /// not depend on within-epoch processing order.
    pub fn fold(&mut self, features: &SparseVec) {
        for &(index, weight) in features {
            let slot = index as usize % FINGERPRINT_DIM;
            let sign = if fnv1a(&index.to_le_bytes(), FOLD_SIGN_SEED) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            self.slots[slot] += sign * weight;
        }
    }

    /// Adds another fingerprint slot-wise: an actor's history profile is
    /// the sum of their documents' fingerprints. Commutative up to float
    /// rounding; callers that need byte-identical profiles must merge in
    /// a deterministic order (the stream ranker merges in event order).
    pub fn merge(&mut self, other: &TopicFingerprint) {
        for (slot, value) in self.slots.iter_mut().zip(other.slots.iter()) {
            *slot += value;
        }
    }

    /// Whether anything has been folded in (bit-exact zero test: slots
    /// only ever accumulate, so an all-zero profile means no history).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&s| s.to_bits() == 0)
    }

    /// L2 norm of the profile.
    pub fn norm(&self) -> f32 {
        self.slots.iter().map(|s| s * s).sum::<f32>().sqrt()
    }

    /// Cosine similarity in `[0, 1]`: negative cosines (anti-correlated
    /// topic profiles) clamp to zero since "opposite topic" carries no
    /// more threat than "no topic overlap". Empty profiles score zero.
    pub fn overlap(&self, other: &TopicFingerprint) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= 0.0 {
            return 0.0;
        }
        let dot: f32 = self
            .slots
            .iter()
            .zip(other.slots.iter())
            .map(|(a, b)| a * b)
            .sum();
        (dot / denom).clamp(0.0, 1.0)
    }

    /// The raw slots, for serialization.
    pub fn slots(&self) -> &[f32; FINGERPRINT_DIM] {
        &self.slots
    }

    /// Rebuilds a fingerprint from serialized slots. Slices of the wrong
    /// width yield `None` (a corrupt checkpoint is a typed refusal at the
    /// caller).
    pub fn from_slots(slots: &[f32]) -> Option<Self> {
        if slots.len() != FINGERPRINT_DIM {
            return None;
        }
        let mut fp = Self::new();
        fp.slots.copy_from_slice(slots);
        Some(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{Featurizer, FeaturizerConfig};

    fn featurizer() -> Featurizer {
        Featurizer::fit(
            FeaturizerConfig::default(),
            ["post the address", "raid the stream", "lovely weather"]
                .iter()
                .copied(),
        )
    }

    #[test]
    fn identical_documents_overlap_fully() {
        let f = featurizer();
        let a = TopicFingerprint::from_features(&f.features("post her address and workplace"));
        let b = TopicFingerprint::from_features(&f.features("post her address and workplace"));
        assert!((a.overlap(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_topics_overlap_less_than_same_topic() {
        let f = featurizer();
        let doxing = TopicFingerprint::from_features(&f.features("post the address and phone"));
        let doxing2 = TopicFingerprint::from_features(&f.features("address and phone leaked"));
        let weather = TopicFingerprint::from_features(&f.features("lovely weather for a picnic"));
        assert!(doxing.overlap(&doxing2) > doxing.overlap(&weather));
    }

    #[test]
    fn empty_profiles_score_zero() {
        let f = featurizer();
        let a = TopicFingerprint::new();
        let b = TopicFingerprint::from_features(&f.features("anything at all"));
        assert_eq!(a.overlap(&b), 0.0);
        assert_eq!(a.overlap(&a), 0.0);
        assert!(a.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn fold_is_order_independent() {
        let f = featurizer();
        let x = f.features("first document about raids");
        let y = f.features("second document about weather");
        let mut ab = TopicFingerprint::new();
        ab.fold(&x);
        ab.fold(&y);
        let mut ba = TopicFingerprint::new();
        ba.fold(&y);
        ba.fold(&x);
        assert_eq!(ab, ba);
    }

    #[test]
    fn slots_roundtrip() {
        let f = featurizer();
        let fp = TopicFingerprint::from_features(&f.features("post the dox"));
        let back = TopicFingerprint::from_slots(fp.slots().as_slice());
        assert_eq!(back, Some(fp));
        assert_eq!(TopicFingerprint::from_slots(&[1.0, 2.0]), None);
    }

    #[test]
    fn overlap_is_clamped_to_unit_interval() {
        let f = featurizer();
        let texts = [
            "post her address",
            "raid the stream tonight",
            "report the account",
            "lovely weather",
        ];
        for a in &texts {
            for b in &texts {
                let fa = TopicFingerprint::from_features(&f.features(a));
                let fb = TopicFingerprint::from_features(&f.features(b));
                let o = fa.overlap(&fb);
                assert!((0.0..=1.0).contains(&o), "overlap {o} out of range");
            }
        }
    }
}
