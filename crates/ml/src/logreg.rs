//! L2-regularized logistic regression with AdaGrad SGD.
//!
//! Plays the role of distilBERT's fine-tuned classification head: a scored
//! binary classifier whose probability output drives the active-learning
//! decile sampling (§5.3) and threshold selection (§5.5).

use crate::data::Dataset;
use crate::sparse::{dot, SparseVec};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Passes over the training data.
    pub epochs: usize,
    /// Base learning rate (per-coordinate scaled by AdaGrad).
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Weight applied to positive-class gradients, compensating the heavy
    /// class imbalance of the harassment data (Table 2 is ~1:20).
    pub positive_weight: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            learning_rate: 0.3,
            l2: 1e-6,
            positive_weight: 2.0,
            seed: 0xda7a,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains on a dataset whose feature indices live in `[0, dimensions)`.
    pub fn train(data: &Dataset, dimensions: usize, config: TrainConfig) -> Self {
        let mut weights = vec![0.0f32; dimensions];
        let mut bias = 0.0f32;
        let mut grad_sq = vec![1e-8f32; dimensions];
        let mut bias_grad_sq = 1e-8f32;
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let ex = &data.examples[idx];
                let z = dot(&ex.features, &weights) + bias;
                let p = sigmoid(z);
                let y = if ex.label { 1.0 } else { 0.0 };
                let class_weight = if ex.label {
                    config.positive_weight
                } else {
                    1.0
                };
                let err = (p - y) * class_weight;
                for &(i, v) in &ex.features {
                    let g = err * v + config.l2 * weights[i as usize];
                    grad_sq[i as usize] += g * g;
                    weights[i as usize] -= config.learning_rate * g / grad_sq[i as usize].sqrt();
                }
                let g = err;
                bias_grad_sq += g * g;
                bias -= config.learning_rate * g / bias_grad_sq.sqrt();
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Positive-class probability.
    pub fn predict_proba(&self, features: &SparseVec) -> f32 {
        sigmoid(dot(features, &self.weights) + self.bias)
    }

    /// Positive-class probability for one CSR row (parallel `indices` /
    /// `values` slices). Accumulates in exactly the order [`dot`] does, so
    /// the result is bit-identical to
    /// `predict_proba(&zip(indices, values).collect())`.
    pub fn predict_proba_row(&self, indices: &[u32], values: &[f32]) -> f32 {
        let mut sum = 0.0;
        for (&i, &v) in indices.iter().zip(values) {
            if let Some(w) = self.weights.get(i as usize) {
                sum += v * w;
            }
        }
        self.proba_from_margin(sum)
    }

    /// Finishes a dot product into a probability: `sigmoid(margin + bias)`.
    ///
    /// Public so external spmv kernels (the tiled scorer in
    /// `batch::FeatureMatrix`) can accumulate margins themselves and still
    /// produce bit-identical probabilities to [`Self::predict_proba_row`].
    #[inline]
    pub fn proba_from_margin(&self, margin: f32) -> f32 {
        sigmoid(margin + self.bias)
    }

    /// The fitted weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &SparseVec) -> bool {
        self.predict_proba(features) > 0.5
    }

    /// Raw decision value (logit).
    pub fn decision(&self, features: &SparseVec) -> f32 {
        dot(features, &self.weights) + self.bias
    }

    /// Model dimensionality.
    pub fn dimensions(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positives fire feature 0, negatives
    /// feature 1, with shared noise features.
    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let noise = (i % 7) as u32 + 2;
            d.push(vec![(0, 1.0), (noise, 0.5)], true);
            d.push(vec![(1, 1.0), (noise, 0.5)], false);
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let data = separable(100);
        let model = LogisticRegression::train(&data, 16, TrainConfig::default());
        assert!(model.predict_proba(&vec![(0, 1.0)]) > 0.9);
        assert!(model.predict_proba(&vec![(1, 1.0)]) < 0.1);
        assert!(model.predict(&vec![(0, 1.0)]));
        assert!(!model.predict(&vec![(1, 1.0)]));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let data = separable(20);
        let model = LogisticRegression::train(&data, 16, TrainConfig::default());
        for f in [vec![(0, 100.0)], vec![(1, 100.0)], vec![], vec![(5, -3.0)]] {
            let p = model.predict_proba(&f);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable(50);
        let m1 = LogisticRegression::train(&data, 16, TrainConfig::default());
        let m2 = LogisticRegression::train(&data, 16, TrainConfig::default());
        let probe = vec![(0, 1.0), (3, 0.5)];
        assert_eq!(m1.predict_proba(&probe), m2.predict_proba(&probe));
    }

    #[test]
    fn positive_weight_shifts_recall() {
        // Imbalanced data: few positives. Higher positive_weight should give
        // the rare class a higher score on its signature feature.
        let mut data = Dataset::new();
        for i in 0..200 {
            data.push(vec![(1, 1.0), ((i % 5 + 2) as u32, 1.0)], false);
        }
        for _ in 0..10 {
            data.push(vec![(0, 1.0)], true);
        }
        let low = LogisticRegression::train(
            &data,
            16,
            TrainConfig {
                positive_weight: 1.0,
                ..Default::default()
            },
        );
        let high = LogisticRegression::train(
            &data,
            16,
            TrainConfig {
                positive_weight: 8.0,
                ..Default::default()
            },
        );
        let probe = vec![(0, 1.0)];
        assert!(high.predict_proba(&probe) > low.predict_proba(&probe));
    }

    #[test]
    fn row_prediction_matches_sparse_prediction() {
        let data = separable(40);
        let model = LogisticRegression::train(&data, 16, TrainConfig::default());
        let sparse: SparseVec = vec![(0, 1.0), (3, 0.5), (100, 2.0)];
        let indices: Vec<u32> = sparse.iter().map(|(i, _)| *i).collect();
        let values: Vec<f32> = sparse.iter().map(|(_, v)| *v).collect();
        assert_eq!(
            model.predict_proba(&sparse),
            model.predict_proba_row(&indices, &values)
        );
    }

    #[test]
    fn decision_is_monotone_in_probability() {
        let data = separable(30);
        let model = LogisticRegression::train(&data, 16, TrainConfig::default());
        let a = vec![(0, 1.0)];
        let b = vec![(1, 1.0)];
        assert_eq!(
            model.decision(&a) > model.decision(&b),
            model.predict_proba(&a) > model.predict_proba(&b)
        );
    }

    #[test]
    fn empty_model_predicts_near_prior() {
        let mut data = Dataset::new();
        for _ in 0..50 {
            data.push(vec![(2, 1.0)], true);
            data.push(vec![(2, 1.0)], false);
        }
        let model = LogisticRegression::train(&data, 8, TrainConfig::default());
        // Feature 2 carries no signal; the probability should hover near the
        // (weighted) prior, away from the extremes.
        let p = model.predict_proba(&vec![(2, 1.0)]);
        assert!(p > 0.2 && p < 0.9, "p = {p}");
    }
}
