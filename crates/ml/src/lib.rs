//! # incite-ml
//!
//! Machine-learning substrate: the linear text-classification stack that
//! stands in for the paper's distilBERT fine-tuning (see DESIGN.md §2 for
//! the substitution argument). It provides:
//!
//! * [`sparse`] — sparse feature vectors and dense-weight operations.
//! * [`batch`] — featurize-once batch scoring: the CSR [`batch::FeatureMatrix`]
//!   arena and the keyed [`batch::FeatureCache`] that let the pipeline
//!   tokenize each document exactly once across all scoring passes and
//!   retrains.
//! * [`featurize`] — the document → features pipeline: normalization, span
//!   sampling (§5.2), tokenization, optional WordPiece subwords, n-grams and
//!   feature hashing.
//! * [`fingerprint`] — fixed-width topic fingerprints folded from hashed
//!   n-gram features; the topic-overlap axis of the streaming threat
//!   ranker.
//! * [`logreg`] — L2-regularized logistic regression trained with AdaGrad
//!   SGD; outputs calibrated probabilities in `[0, 1]`, which is what the
//!   threshold-selection procedure of §5.5 consumes.
//! * [`naive_bayes`] — a multinomial naive Bayes baseline.
//! * [`data`] — labeled datasets, stratified train/test splits, k-fold CV.
//! * [`model`] — [`model::TextClassifier`], the end-to-end text-in,
//!   probability-out API the pipeline uses.
//! * [`grid`] — hyperparameter grid search (the Table 3 text-length sweep).

pub mod batch;
pub mod data;
pub mod featurize;
pub mod fingerprint;
pub mod grid;
pub mod logreg;
pub mod model;
pub mod naive_bayes;
pub mod persist;
pub mod sparse;

pub use batch::{FeatureCache, FeatureMatrix};
pub use data::{kfold, train_test_split, Dataset, Example};
pub use featurize::{FeatureMode, Featurizer, FeaturizerConfig};
pub use fingerprint::{TopicFingerprint, FINGERPRINT_DIM};
pub use grid::{grid_search, GridPoint, GridResult};
pub use logreg::{LogisticRegression, TrainConfig};
pub use model::TextClassifier;
pub use naive_bayes::NaiveBayes;
pub use persist::{load_model, load_model_bin, save_model, save_model_bin, PersistError};
pub use sparse::SparseVec;
