//! Labeled datasets and resampling utilities.

use crate::sparse::SparseVec;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labeled example.
#[derive(Debug, Clone)]
pub struct Example {
    pub features: SparseVec,
    pub label: bool,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds an example.
    pub fn push(&mut self, features: SparseVec, label: bool) {
        self.examples.push(Example { features, label });
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of positive examples.
    pub fn positives(&self) -> usize {
        self.examples.iter().filter(|e| e.label).count()
    }
}

/// Stratified train/test split: the positive rate is preserved on both
/// sides. `test_fraction` is clamped to `(0, 1)`; splitting is seeded.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    let test_fraction = test_fraction.clamp(0.01, 0.99);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pos: Vec<&Example> = data.examples.iter().filter(|e| e.label).collect();
    let mut neg: Vec<&Example> = data.examples.iter().filter(|e| !e.label).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for group in [pos, neg] {
        let n_test = ((group.len() as f64) * test_fraction).round() as usize;
        for (i, ex) in group.into_iter().enumerate() {
            if i < n_test {
                test.examples.push(ex.clone());
            } else {
                train.examples.push(ex.clone());
            }
        }
    }
    (train, test)
}

/// K-fold cross-validation splits: returns `k` (train, validation) pairs.
/// Folds are contiguous over a seeded shuffle, so every example appears in
/// exactly one validation fold.
pub fn kfold(data: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    let k = k.max(2).min(data.len().max(2));
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train = Dataset::new();
        let mut val = Dataset::new();
        for (i, &idx) in order.iter().enumerate() {
            if i % k == fold {
                val.examples.push(data.examples[idx].clone());
            } else {
                train.examples.push(data.examples[idx].clone());
            }
        }
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n_pos {
            d.push(vec![(i as u32, 1.0)], true);
        }
        for i in 0..n_neg {
            d.push(vec![(i as u32, -1.0)], false);
        }
        d
    }

    #[test]
    fn split_is_stratified() {
        let d = toy(20, 80);
        let (train, test) = train_test_split(&d, 0.25, 7);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.positives(), 5);
        assert_eq!(train.positives(), 15);
    }

    #[test]
    fn split_is_seeded() {
        let d = toy(10, 10);
        let (t1, _) = train_test_split(&d, 0.5, 42);
        let (t2, _) = train_test_split(&d, 0.5, 42);
        let f1: Vec<_> = t1.examples.iter().map(|e| e.features.clone()).collect();
        let f2: Vec<_> = t2.examples.iter().map(|e| e.features.clone()).collect();
        assert_eq!(f1, f2);
    }

    #[test]
    fn split_fraction_is_clamped() {
        let d = toy(4, 4);
        let (train, test) = train_test_split(&d, 5.0, 1);
        assert!(!train.is_empty() || !test.is_empty());
        assert_eq!(train.len() + test.len(), 8);
    }

    #[test]
    fn kfold_partitions_validation() {
        let d = toy(6, 14);
        let folds = kfold(&d, 4, 3);
        assert_eq!(folds.len(), 4);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, 20);
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 20);
        }
    }

    #[test]
    fn kfold_minimum_k() {
        let d = toy(2, 2);
        let folds = kfold(&d, 1, 0);
        assert_eq!(folds.len(), 2);
    }
}
