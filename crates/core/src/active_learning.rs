//! The active-learning loop (§5.3).
//!
//! "This cyclical process involved training fine-tuned classifiers with a
//! subset of very precise data, using these fine-tuned classifiers to
//! predict the entire data set, and then sampling from the fully classified
//! data set across the distribution of the predicted scores. … We segmented
//! the predicted data into 10 ranges between 0.0 and 1.0 and sampled evenly
//! from each range."

use crate::failpoint::{FailpointRegistry, InjectedFault};
use crate::task::Task;
use incite_annotate::{annotate_batch, Annotator};
use incite_corpus::{Corpus, DocId, Document};
use incite_ml::{FeatureCache, TextClassifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::BTreeSet;

/// Statistics from one active-learning round.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoundStats {
    /// Documents sampled and crowd-annotated this round.
    pub sampled: usize,
    /// Crowd disagreement rate on the round's batch.
    pub disagreement_rate: f64,
    /// Cohen's kappa between the two primary crowd annotators.
    pub kappa: Option<f64>,
    /// Positive labels added to the training set.
    pub positives_added: usize,
}

/// Samples `per_decile` document indices from each of the ten score
/// deciles, skipping already-labeled documents.
pub fn decile_sample(
    scores: &[(DocId, f32)],
    per_decile: usize,
    already_labeled: &BTreeSet<DocId>,
    rng: &mut StdRng,
) -> Vec<DocId> {
    let mut buckets: Vec<Vec<DocId>> = vec![Vec::new(); 10];
    for &(id, score) in scores {
        if already_labeled.contains(&id) {
            continue;
        }
        let bucket = ((score.clamp(0.0, 1.0) * 10.0) as usize).min(9);
        buckets[bucket].push(id);
    }
    let mut sampled = Vec::new();
    for bucket in &mut buckets {
        bucket.shuffle(rng);
        sampled.extend(bucket.iter().take(per_decile).copied());
    }
    sampled
}

/// Runs one active-learning round: score → decile-sample → crowd-annotate →
/// extend training set → retrain.
///
/// Retraining goes through `cache`: only the documents added this round
/// are featurized; everything already in the round set is reused.
///
/// The `mid-annotation-batch` failpoint sits between crowd annotation and
/// the training-set mutation — the worst possible crash position, with a
/// full paid batch in flight. An injected fault here discards the batch;
/// the crash-recovery sweep proves a resume replays the round identically
/// from the previous boundary.
#[allow(clippy::too_many_arguments)]
pub fn active_learning_round(
    corpus: &Corpus,
    task: Task,
    classifier: &mut TextClassifier,
    cache: &mut FeatureCache,
    training: &mut Vec<(DocId, String, bool)>,
    scores: &[(DocId, f32)],
    per_decile: usize,
    crowd: (&Annotator, &Annotator, &Annotator),
    train_config: incite_ml::TrainConfig,
    failpoints: &FailpointRegistry,
    rng: &mut StdRng,
) -> Result<RoundStats, InjectedFault> {
    let labeled: BTreeSet<DocId> = training.iter().map(|(id, _, _)| *id).collect();
    let sampled_ids = decile_sample(scores, per_decile, &labeled, rng);

    // Look up the sampled documents.
    let by_id: std::collections::BTreeMap<DocId, &Document> =
        corpus.documents.iter().map(|d| (d.id, d)).collect();
    let sampled_docs: Vec<&Document> = sampled_ids
        .iter()
        .filter_map(|id| by_id.get(id).copied())
        .collect();

    // Crowd annotation with the two + tie-break protocol.
    let truths: Vec<bool> = sampled_docs.iter().map(|d| task.truth(d)).collect();
    let outcome = annotate_batch(&truths, crowd.0, crowd.1, crowd.2, rng);
    failpoints.check("mid-annotation-batch")?;

    let mut positives_added = 0;
    for (doc, &label) in sampled_docs.iter().zip(&outcome.labels) {
        if label {
            positives_added += 1;
        }
        training.push((doc.id, doc.text.clone(), label));
    }

    let data = cache.dataset(
        classifier.featurizer(),
        training
            .iter()
            .map(|(id, text, label)| (id.0, text.as_str(), *label)),
    );
    classifier.retrain_features(&data, train_config);

    Ok(RoundStats {
        sampled: sampled_docs.len(),
        disagreement_rate: outcome.disagreement_rate(),
        kappa: outcome.kappa,
        positives_added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn scores(n: usize) -> Vec<(DocId, f32)> {
        (0..n)
            .map(|i| (DocId(i as u64), i as f32 / n as f32))
            .collect()
    }

    #[test]
    fn decile_sampling_covers_all_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = scores(1000);
        let sampled = decile_sample(&s, 5, &BTreeSet::new(), &mut rng);
        assert_eq!(sampled.len(), 50);
        // Every decile contributes: ids 0..100 → decile 0, 900..1000 → 9.
        let mut deciles: BTreeSet<usize> = sampled.iter().map(|id| (id.0 / 100) as usize).collect();
        deciles.remove(&10); // score exactly 1.0 edge
        assert_eq!(deciles.len(), 10, "{deciles:?}");
    }

    #[test]
    fn decile_sampling_skips_labeled() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = scores(100);
        let labeled: BTreeSet<DocId> = (0..50).map(DocId).collect();
        let sampled = decile_sample(&s, 10, &labeled, &mut rng);
        assert!(sampled.iter().all(|id| id.0 >= 50));
    }

    #[test]
    fn sparse_deciles_yield_fewer_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        // All scores near zero: only decile 0 is populated.
        let s: Vec<(DocId, f32)> = (0..100).map(|i| (DocId(i), 0.01)).collect();
        let sampled = decile_sample(&s, 5, &BTreeSet::new(), &mut rng);
        assert_eq!(sampled.len(), 5);
    }

    #[test]
    fn scores_above_one_clamp_to_top_decile() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = vec![(DocId(0), 1.0), (DocId(1), 0.999)];
        let sampled = decile_sample(&s, 5, &BTreeSet::new(), &mut rng);
        assert_eq!(sampled.len(), 2);
    }
}
