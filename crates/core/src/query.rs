//! The bootstrap query DSL.
//!
//! Figure 4 shows the paper's seed query: a disjunction of mobilizing
//! phrases ANDed with a disjunction of in-group/target terms, evaluated
//! over `LOWER(body)`. This module provides the same clause algebra as a
//! small composable tree plus [`figure4_query`], a faithful transcription.

use incite_corpus::Document;

/// A boolean query over lowercased document bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Case-insensitive substring containment (the paper's
    /// `REGEXP_CONTAINS(LOWER(body), r'\Q …literal… \E')`).
    Contains(String),
    /// All sub-queries must match.
    And(Vec<Query>),
    /// Any sub-query must match.
    Or(Vec<Query>),
    /// Negation.
    Not(Box<Query>),
}

impl Query {
    /// Convenience constructor.
    pub fn contains(s: impl Into<String>) -> Query {
        Query::Contains(s.into().to_lowercase())
    }

    /// OR over many substrings.
    pub fn any_of<I: IntoIterator<Item = &'static str>>(items: I) -> Query {
        Query::Or(items.into_iter().map(Query::contains).collect())
    }

    /// Evaluates against raw text. The body is lowercased and padded with a
    /// single space on each edge so that the Figure 4 literals (which carry
    /// leading spaces, e.g. `" we need to"`) also match at the start of a
    /// post.
    pub fn matches(&self, text: &str) -> bool {
        let lower = format!(" {} ", text.to_lowercase());
        self.matches_lower(&lower)
    }

    fn matches_lower(&self, lower: &str) -> bool {
        match self {
            Query::Contains(s) => lower.contains(s.as_str()),
            Query::And(qs) => qs.iter().all(|q| q.matches_lower(lower)),
            Query::Or(qs) => qs.iter().any(|q| q.matches_lower(lower)),
            Query::Not(q) => !q.matches_lower(lower),
        }
    }

    /// Runs the query over documents, yielding matching references.
    pub fn filter<'a, I>(&self, docs: I) -> Vec<&'a Document>
    where
        I: IntoIterator<Item = &'a Document>,
    {
        docs.into_iter().filter(|d| self.matches(&d.text)).collect()
    }
}

/// The Figure 4 bootstrap query: mobilizing language AND in-group/target
/// language. (The figure's SQL lists the mobilizing phrases with
/// surrounding spaces; we reproduce the same literals.)
pub fn figure4_query() -> Query {
    Query::And(vec![
        // First clause: contains mobilizing language.
        Query::any_of([
            " we need to",
            " we should",
            " lets",
            " we have",
            " we will",
            " we ",
        ]),
        // Subclause: in-group mobilizing language vs target.
        Query::any_of([" them", " him", " her", " all", " entire"]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_case_insensitive() {
        let q = Query::contains("Mass Report");
        assert!(q.matches("we will MASS REPORT him"));
        assert!(q.matches("mass reporting ok")); // substring semantics
        assert!(!q.matches("mass flagging ok"));
    }

    #[test]
    fn and_or_not_compose() {
        let q = Query::And(vec![
            Query::contains("report"),
            Query::Not(Box::new(Query::contains("bug"))),
        ]);
        assert!(q.matches("report him"));
        assert!(!q.matches("report the bug"));
        let o = Query::Or(vec![Query::contains("raid"), Query::contains("spam")]);
        assert!(o.matches("lets raid"));
        assert!(o.matches("spam it"));
        assert!(!o.matches("nothing"));
    }

    #[test]
    fn figure4_matches_mobilizing_cth() {
        let q = figure4_query();
        assert!(q.matches("i think we need to report him to the platform"));
        assert!(q.matches("folks, we should mass flag her account"));
        // Mobilizing language without a target reference: no match.
        assert!(!q.matches("yesterday we went hiking"));
        // Target reference without mobilizing language: no match.
        assert!(!q.matches("i saw him at the game"));
    }

    #[test]
    fn figure4_also_matches_civic_hard_negatives() {
        // The query is deliberately high-recall: civic mobilization matches
        // too, which is why the seeds get expert-annotated.
        let q = figure4_query();
        assert!(q.matches("now we need to contact our representative, all of us"));
    }

    #[test]
    fn empty_junctions() {
        assert!(Query::And(vec![]).matches("anything")); // vacuous truth
        assert!(!Query::Or(vec![]).matches("anything"));
    }
}
