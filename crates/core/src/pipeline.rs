//! End-to-end pipeline orchestration (Figure 1).
//!
//! The scoring hot path is *featurize-once*: every applicable document is
//! tokenized exactly one time into the [`ScoringEngine`]'s CSR arena, and
//! each of the `al_rounds + 1` full-corpus passes is a parallel spmv
//! against the current weight vector (see [`crate::engine`]). Training-set
//! features are likewise cached across every retrain.
//!
//! The pipeline is structured as a linear sequence of *steps* — bootstrap,
//! featurize, one step per active-learning round, eval, score, one step per
//! platform threshold. [`run_pipeline`] executes them in memory;
//! [`run_pipeline_resumable`] additionally persists a
//! [`PipelineSnapshot`] at every step
//! boundary into a run directory, so a run killed at any boundary resumes
//! to a **byte-identical** [`PipelineOutcome`] (DESIGN.md §12). Both entry
//! points share one driver, so the checkpointed path cannot drift from the
//! plain one.

use crate::accounting::StageCounts;
use crate::active_learning::{active_learning_round, RoundStats};
use crate::bootstrap::bootstrap;
use crate::checkpoint::atomic_io::{fnv64, fnv64_hex};
use crate::checkpoint::{CheckpointError, Checkpointer, PipelineSnapshot, Resume};
use crate::engine::{EngineStats, ScoringEngine};
use crate::failpoint::{FailpointRegistry, InjectedFault};
use crate::parallel::ScoreError;
use crate::task::Task;
use crate::threshold::{select_threshold, PlatformThreshold, ThresholdConfig};
use incite_annotate::Annotator;
use incite_corpus::{Corpus, DocId, Document};
use incite_ml::model::EvalReport;
use incite_ml::{FeatureCache, FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

pub use crate::engine::score_corpus;

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Master seed.
    pub seed: u64,
    /// Active-learning rounds (the paper ran two per task).
    pub al_rounds: usize,
    /// Crowd samples per score decile per round.
    pub per_decile: usize,
    /// Expert budget for seed annotation.
    pub max_seeds: usize,
    /// Expert budget for the final per-platform annotation pass (the paper
    /// annotated up to ~3.3 K documents per platform).
    pub annotation_budget: usize,
    /// Threshold-search parameters.
    pub threshold: ThresholdConfig,
    /// Feature hashing bits.
    pub hash_bits: u32,
    /// Feature mode (subword by default).
    pub feature_mode: FeatureMode,
    /// SGD parameters.
    pub train: TrainConfig,
    /// Scoring threads.
    pub threads: usize,
    /// Fraction of labeled data held out for the Table 3 evaluation.
    pub eval_fraction: f64,
    /// Deterministic fault injection for crash-recovery testing. Empty by
    /// default; zero-sized and free unless the `failpoints` cargo feature
    /// is enabled.
    pub failpoints: FailpointRegistry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0xf117e5,
            al_rounds: 2,
            per_decile: 40,
            max_seeds: 1_200,
            annotation_budget: 3_300,
            threshold: ThresholdConfig::default(),
            hash_bits: 18,
            feature_mode: FeatureMode::Subword,
            train: TrainConfig::default(),
            threads: 4,
            eval_fraction: 0.2,
            failpoints: FailpointRegistry::new(),
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        PipelineConfig {
            seed,
            al_rounds: 1,
            per_decile: 10,
            max_seeds: 300,
            annotation_budget: 500,
            hash_bits: 15,
            feature_mode: FeatureMode::Word,
            threads: 2,
            ..Default::default()
        }
    }

    /// Rejects configurations that would silently produce degenerate runs
    /// (empty seed sets, no-op annotation rounds, NaN precision probes).
    /// Called at the top of every pipeline entry point.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_seeds == 0 {
            return Err(ConfigError::EmptySeedQuery);
        }
        if self.al_rounds > 0 && self.per_decile == 0 {
            return Err(ConfigError::ZeroPerDecile);
        }
        if self.al_rounds > 0 && self.annotation_budget == 0 {
            return Err(ConfigError::ZeroAnnotationBudget);
        }
        if self.threshold.probe_sample == 0 {
            return Err(ConfigError::ZeroProbeSample);
        }
        if !(0.0..1.0).contains(&self.eval_fraction) {
            return Err(ConfigError::BadEvalFraction(self.eval_fraction));
        }
        Ok(())
    }

    /// Stable fingerprint of every parameter that shapes the deterministic
    /// outcome. `threads` is excluded (scoring is byte-identical across
    /// thread counts) and so is the failpoint registry (an armed run and
    /// its disarmed resume share one run directory). A resumed run whose
    /// fingerprint differs from the checkpointed one is refused as
    /// [`CheckpointError::Incompatible`].
    pub fn fingerprint(&self) -> String {
        let mut repr = String::new();
        let _ = write!(
            repr,
            "v1;seed={};al_rounds={};per_decile={};max_seeds={};annotation_budget={};",
            self.seed, self.al_rounds, self.per_decile, self.max_seeds, self.annotation_budget
        );
        let _ = write!(
            repr,
            "threshold={:?};hash_bits={};feature_mode={:?};train={:?};eval_fraction={}",
            self.threshold, self.hash_bits, self.feature_mode, self.train, self.eval_fraction
        );
        fnv64_hex(repr.as_bytes())
    }
}

/// A degenerate [`PipelineConfig`] rejected by
/// [`PipelineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `max_seeds == 0`: the bootstrap query would label nothing and every
    /// downstream classifier would train on an empty set.
    EmptySeedQuery,
    /// `per_decile == 0` with `al_rounds > 0`: each round would sample
    /// zero documents and the decile stratification degenerates.
    ZeroPerDecile,
    /// `annotation_budget == 0` with `al_rounds > 0`: the final expert
    /// pass could annotate nothing the rounds worked to surface.
    ZeroAnnotationBudget,
    /// `threshold.probe_sample == 0`: every precision probe would divide
    /// zero positives by an empty pool.
    ZeroProbeSample,
    /// `eval_fraction` outside `[0, 1)`: the held-out split would swallow
    /// the whole training set (or a negative share of it).
    BadEvalFraction(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptySeedQuery => {
                write!(f, "invalid config: max_seeds is 0 (empty seed query)")
            }
            ConfigError::ZeroPerDecile => write!(
                f,
                "invalid config: per_decile is 0 with al_rounds > 0 (rounds would sample nothing)"
            ),
            ConfigError::ZeroAnnotationBudget => write!(
                f,
                "invalid config: annotation_budget is 0 with al_rounds > 0"
            ),
            ConfigError::ZeroProbeSample => {
                write!(f, "invalid config: threshold.probe_sample is 0")
            }
            ConfigError::BadEvalFraction(x) => {
                write!(f, "invalid config: eval_fraction {x} outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any failure of a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// The configuration is degenerate (see [`ConfigError`]).
    Config(ConfigError),
    /// A scoring worker panicked.
    Score(ScoreError),
    /// The checkpoint subsystem refused a read or write.
    Checkpoint(CheckpointError),
    /// A deterministic failpoint fired (test builds only).
    Fault(InjectedFault),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Config(e) => e.fmt(f),
            PipelineError::Score(e) => e.fmt(f),
            PipelineError::Checkpoint(e) => e.fmt(f),
            PipelineError::Fault(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Config(e) => Some(e),
            PipelineError::Score(e) => Some(e),
            PipelineError::Checkpoint(e) => Some(e),
            PipelineError::Fault(e) => Some(e),
        }
    }
}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::Config(e)
    }
}

impl From<ScoreError> for PipelineError {
    fn from(e: ScoreError) -> Self {
        PipelineError::Score(e)
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

impl From<InjectedFault> for PipelineError {
    fn from(e: InjectedFault) -> Self {
        PipelineError::Fault(e)
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    pub task: Task,
    /// Figure 1 stage counts.
    pub counts: StageCounts,
    /// Per-round active-learning statistics (§5.3 diagnostics).
    pub rounds: Vec<RoundStats>,
    /// Per-platform Table 4 rows.
    pub thresholds: Vec<PlatformThreshold>,
    /// Held-out evaluation (Table 3 metric block).
    pub eval: EvalReport,
    /// Final training-set composition per platform: (positives, negatives)
    /// — the Table 2 reproduction.
    pub training_by_platform: BTreeMap<Platform, (usize, usize)>,
    /// Full classifier scores for every applicable document (consumed by
    /// the thread-overlap analysis, §6.3).
    pub scores: Vec<(DocId, f32)>,
    /// Scoring-engine instrumentation: the featurize-once invariant
    /// (`engine.featurize_passes == 1`) and the number of spmv passes
    /// served from the arena (`al_rounds + 1`).
    pub engine: EngineStats,
}

impl PipelineOutcome {
    /// All above-threshold document ids.
    pub fn above_threshold_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .thresholds
            .iter()
            .flat_map(|t| t.above_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// All expert-confirmed true-positive ids (the "annotated" data set).
    pub fn annotated_positive_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .thresholds
            .iter()
            .flat_map(|t| t.positive_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Canonical FNV-1a digest of the full outcome, including every score's
    /// raw `f32` bits. Two outcomes compare equal iff their digests match;
    /// the kill-point sweep and the checkpoint-overhead BENCH experiment
    /// use this as the byte-identity witness.
    pub fn digest(&self) -> u64 {
        let mut repr = String::new();
        let _ = write!(repr, "task={};counts={:?};", self.task.slug(), self.counts);
        for r in &self.rounds {
            let _ = write!(repr, "round={:?};", r);
        }
        for t in &self.thresholds {
            let _ = write!(
                repr,
                "thr={} {} {} {} {} {} {:?} {:?};",
                t.platform.slug(),
                t.threshold,
                t.above_threshold,
                t.annotated,
                t.true_positives,
                t.exhaustive,
                t.above_ids,
                t.positive_ids
            );
        }
        let _ = write!(repr, "eval={:?};", self.eval);
        let mut by_platform: Vec<_> = self.training_by_platform.iter().collect();
        by_platform.sort_by_key(|(p, _)| **p);
        for (p, (pos, neg)) in by_platform {
            let _ = write!(repr, "train={} {pos} {neg};", p.slug());
        }
        for (id, score) in &self.scores {
            let _ = write!(repr, "s{}={:08x};", id.0, score.to_bits());
        }
        let _ = write!(repr, "engine={:?}", self.engine);
        fnv64(repr.as_bytes())
    }
}

/// Runs one task's full pipeline over a corpus, in memory.
pub fn run_pipeline(
    corpus: &Corpus,
    task: Task,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, PipelineError> {
    config.validate()?;
    drive(corpus, task, config, None, None)
}

/// Runs the pipeline with a checkpoint written at every step boundary into
/// `run_dir`, resuming from the last completed step when the directory
/// already holds a verified run.
///
/// The contract: kill the process at any boundary, call this again with
/// the same corpus, task, config, and directory, and the returned
/// [`PipelineOutcome`] is byte-identical to an uninterrupted run
/// (`PartialEq`-equal, equal [`PipelineOutcome::digest`]). A directory
/// checkpointed by a different task or config is refused with
/// [`CheckpointError::Incompatible`]; any corrupted checkpoint file is
/// refused with [`CheckpointError::HashMismatch`]. Use
/// [`crate::checkpoint::clear_run_dir`] to discard an old run first.
pub fn run_pipeline_resumable(
    corpus: &Corpus,
    task: Task,
    config: &PipelineConfig,
    run_dir: &Path,
) -> Result<PipelineOutcome, PipelineError> {
    config.validate()?;
    let (mut ckpt, resume) = Checkpointer::open(run_dir, task.slug(), &config.fingerprint())?;
    let restored = match resume {
        Resume::Fresh => None,
        Resume::FromStep { .. } => ckpt.load_latest()?,
    };
    drive(corpus, task, config, Some(&mut ckpt), restored)
}

/// Builds the boundary snapshot from the live run state.
#[allow(clippy::too_many_arguments)]
fn make_snapshot(
    rng: &StdRng,
    counts: &StageCounts,
    training: &[(DocId, String, bool)],
    rounds: &[RoundStats],
    thresholds: &[PlatformThreshold],
    scores: Option<&Vec<(DocId, f32)>>,
    eval: Option<&EvalReport>,
    engine: Option<EngineStats>,
) -> PipelineSnapshot {
    PipelineSnapshot {
        rng: rng.state().to_vec(),
        counts: counts.clone(),
        training: training.to_vec(),
        rounds: rounds.to_vec(),
        thresholds: thresholds.to_vec(),
        // f32 scores travel as raw bits: JSON-proof byte identity.
        scores: scores.map(|s| s.iter().map(|&(id, v)| (id, v.to_bits())).collect()),
        eval: eval.cloned(),
        engine,
    }
}

fn record(
    ckpt: &mut Option<&mut Checkpointer>,
    step: &str,
    snapshot: &PipelineSnapshot,
    classifier: Option<&TextClassifier>,
    model_dirty: bool,
) -> Result<(), PipelineError> {
    if let Some(ck) = ckpt.as_deref_mut() {
        ck.record_step(step, snapshot, classifier, model_dirty)?;
    }
    Ok(())
}

fn missing_state(what: &str) -> PipelineError {
    PipelineError::Checkpoint(CheckpointError::Incompatible {
        detail: format!("checkpoint resume reached a step requiring {what}, but none was restored"),
    })
}

/// Rebuilds the featurize-once arena on demand. The CSR buffers are
/// derivable state and are never persisted; on resume the arena is rebuilt
/// (an rng-free pure function of corpus + featurizer) and the checkpointed
/// pass counters are restored — a `documents`/`nnz` mismatch means the
/// corpus or featurizer differs from the checkpointed run and is refused.
fn ensure_engine<'a>(
    engine: &'a mut Option<ScoringEngine>,
    classifier: &TextClassifier,
    docs: &[&Document],
    threads: usize,
    restored_stats: Option<EngineStats>,
) -> Result<&'a mut ScoringEngine, PipelineError> {
    if engine.is_none() {
        let mut built = ScoringEngine::build(classifier.featurizer(), docs, threads)?;
        if let Some(saved) = restored_stats {
            built.restore_stats(saved).map_err(|actual| {
                PipelineError::Checkpoint(CheckpointError::Incompatible {
                    detail: format!(
                        "checkpointed arena shape (documents={}, nnz={}) does not match the \
                         rebuilt arena (documents={}, nnz={}): corpus or featurizer drifted \
                         since the checkpoint was written",
                        saved.documents, saved.nnz, actual.documents, actual.nnz
                    ),
                })
            })?;
        }
        *engine = Some(built);
    }
    engine
        .as_mut()
        .ok_or_else(|| missing_state("a scoring engine"))
}

/// The single pipeline driver behind both entry points. Steps already
/// recorded in `ckpt` are skipped; the run state is seeded from `restored`
/// (the last boundary snapshot) and execution continues with the identical
/// RNG stream position, so resumed and uninterrupted runs are
/// byte-identical.
fn drive(
    corpus: &Corpus,
    task: Task,
    config: &PipelineConfig,
    mut ckpt: Option<&mut Checkpointer>,
    restored: Option<(PipelineSnapshot, Option<TextClassifier>)>,
) -> Result<PipelineOutcome, PipelineError> {
    let fp = &config.failpoints;
    let completed = ckpt.as_deref().map_or(0, Checkpointer::completed_steps);

    let expert = Annotator::expert("expert");
    let crowd_a = match task {
        Task::Cth => Annotator::crowd_cth("crowd-a"),
        Task::Dox => Annotator::crowd_dox("crowd-a"),
    };
    let crowd_b = match task {
        Task::Cth => Annotator::crowd_cth("crowd-b"),
        Task::Dox => Annotator::crowd_dox("crowd-b"),
    };
    let crowd_c = crowd_a.clone();

    // Applicable documents (recomputed every run: derivable, rng-free).
    let applicable: Vec<&Document> = corpus
        .documents
        .iter()
        .filter(|d| task.applies_to(d.platform))
        .collect();

    // Run state: fresh, or the last checkpointed boundary.
    let (mut rng, mut counts, mut training, mut rounds, mut thresholds, mut scores, mut eval);
    let mut classifier: Option<TextClassifier>;
    let restored_engine: Option<EngineStats>;
    match restored {
        Some((snap, clf)) => {
            rng = StdRng::from_state(snap.rng_state()?);
            counts = snap.counts;
            training = snap.training;
            rounds = snap.rounds;
            thresholds = snap.thresholds;
            scores = snap.scores.map(|s| {
                s.into_iter()
                    .map(|(id, bits)| (id, f32::from_bits(bits)))
                    .collect::<Vec<(DocId, f32)>>()
            });
            eval = snap.eval;
            classifier = clf;
            restored_engine = snap.engine;
        }
        None => {
            rng = StdRng::seed_from_u64(config.seed ^ task.slug().len() as u64);
            counts = StageCounts::default();
            training = Vec::new();
            rounds = Vec::new();
            thresholds = Vec::new();
            scores = None;
            eval = None;
            classifier = None;
            restored_engine = None;
        }
    }

    let featurizer_config = FeaturizerConfig {
        max_len: task.text_length(),
        mode: config.feature_mode,
        hash_bits: config.hash_bits,
        seed: config.seed,
        ..Default::default()
    };
    // The training-feature cache is a pure memo: rebuilt empty on resume,
    // repopulated deterministically by the dataset calls below.
    let mut cache = FeatureCache::new();
    let mut engine: Option<ScoringEngine> = None;
    let mut step_idx = 0usize;

    // Step: bootstrap seeds.
    if step_idx >= completed {
        counts.raw_documents = applicable.len() as u64;
        let boot = bootstrap(corpus, task, config.max_seeds, &expert, &mut rng);
        counts.bootstrap_candidates = boot.candidates as u64;
        counts.seed_annotations = boot.seeds.len() as u64;
        training = boot
            .seeds
            .iter()
            .map(|s| (s.id, s.text.clone(), s.label))
            .collect();
        let snap = make_snapshot(
            &rng,
            &counts,
            &training,
            &rounds,
            &thresholds,
            None,
            None,
            None,
        );
        record(&mut ckpt, "bootstrap", &snap, None, false)?;
        fp.check("after-bootstrap")?;
    }
    step_idx += 1;

    // Step: initial classifier + the featurize-once arena. Training is
    // rng-free; on resume the classifier comes back from the model file
    // instead and the arena is rebuilt lazily when a scoring step needs it.
    if step_idx >= completed {
        let clf = TextClassifier::train_with_cache(
            training.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
            featurizer_config,
            config.train,
            &mut cache,
        );
        classifier = Some(clf);
        let clf = classifier
            .as_ref()
            .ok_or_else(|| missing_state("a classifier"))?;
        let e = ensure_engine(
            &mut engine,
            clf,
            &applicable,
            config.threads,
            restored_engine,
        )?;
        let stats = e.stats();
        let snap = make_snapshot(
            &rng,
            &counts,
            &training,
            &rounds,
            &thresholds,
            None,
            None,
            Some(stats),
        );
        // Freshly trained weights — the model section must be rewritten.
        record(&mut ckpt, "featurize", &snap, classifier.as_ref(), true)?;
        fp.check("after-featurize")?;
    }
    step_idx += 1;

    // Steps: active-learning rounds.
    for round in 0..config.al_rounds {
        if step_idx >= completed {
            let clf = classifier
                .as_mut()
                .ok_or_else(|| missing_state("a classifier"))?;
            let e = ensure_engine(
                &mut engine,
                clf,
                &applicable,
                config.threads,
                restored_engine,
            )?;
            let round_scores = e.score_all(clf.model(), config.threads)?;
            let stats = active_learning_round(
                corpus,
                task,
                clf,
                &mut cache,
                &mut training,
                &round_scores,
                config.per_decile,
                (&crowd_a, &crowd_b, &crowd_c),
                config.train,
                fp,
                &mut rng,
            )?;
            counts.crowd_annotations += stats.sampled as u64;
            rounds.push(stats);
            let engine_stats = engine.as_ref().map(ScoringEngine::stats);
            let snap = make_snapshot(
                &rng,
                &counts,
                &training,
                &rounds,
                &thresholds,
                None,
                None,
                engine_stats,
            );
            // Each round retrains on the grown ledger — weights changed.
            record(
                &mut ckpt,
                &format!("round-{round}"),
                &snap,
                classifier.as_ref(),
                true,
            )?;
            fp.check(&format!("after-round-{round}"))?;
        }
        step_idx += 1;
    }
    counts.training_annotations = training.len() as u64;

    // Step: held-out evaluation (Table 3), then final full training. All
    // features come from the cache — no re-tokenization.
    if step_idx >= completed {
        let clf = classifier
            .as_mut()
            .ok_or_else(|| missing_state("a classifier"))?;
        let mut shuffled = training.clone();
        shuffled.shuffle(&mut rng);
        let eval_n = ((shuffled.len() as f64) * config.eval_fraction).round() as usize;
        let (eval_split, train_split) = shuffled.split_at(eval_n.min(shuffled.len()));
        let eval_train_data = cache.dataset(
            clf.featurizer(),
            train_split.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
        );
        let eval_data = cache.dataset(
            clf.featurizer(),
            eval_split.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
        );
        let mut eval_model = clf.clone();
        eval_model.retrain_features(&eval_train_data, config.train);
        eval = Some(eval_model.evaluate_features(&eval_data, 0.5));
        let full_data = cache.dataset(
            clf.featurizer(),
            training.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
        );
        clf.retrain_features(&full_data, config.train);
        let engine_stats = engine
            .as_ref()
            .map(ScoringEngine::stats)
            .or(restored_engine);
        let snap = make_snapshot(
            &rng,
            &counts,
            &training,
            &rounds,
            &thresholds,
            None,
            eval.as_ref(),
            engine_stats,
        );
        // Eval retrains on the full ledger before measuring — dirty.
        record(&mut ckpt, "eval", &snap, classifier.as_ref(), true)?;
        fp.check("after-eval")?;
    }
    step_idx += 1;

    // Step: full prediction — one more spmv pass over the arena.
    if step_idx >= completed {
        let clf = classifier
            .as_ref()
            .ok_or_else(|| missing_state("a classifier"))?;
        let e = ensure_engine(
            &mut engine,
            clf,
            &applicable,
            config.threads,
            restored_engine,
        )?;
        let final_scores = e.score_all(clf.model(), config.threads)?;
        counts.predicted_documents = final_scores.len() as u64;
        scores = Some(final_scores);
        let engine_stats = engine.as_ref().map(ScoringEngine::stats);
        let snap = make_snapshot(
            &rng,
            &counts,
            &training,
            &rounds,
            &thresholds,
            scores.as_ref(),
            eval.as_ref(),
            engine_stats,
        );
        // Scoring only reads the weights — reuse the eval-step model file.
        record(&mut ckpt, "score", &snap, classifier.as_ref(), false)?;
        fp.check("after-score")?;
    }
    step_idx += 1;

    // Steps: per-platform thresholds + final expert pass.
    let platforms: Vec<Platform> = Platform::ALL
        .into_iter()
        .filter(|p| task.applies_to(*p))
        .collect();
    for (i, platform) in platforms.iter().copied().enumerate() {
        if step_idx >= completed {
            if i == 1 {
                fp.check("mid-threshold-sweep")?;
            }
            let all_scores = scores
                .as_ref()
                .ok_or_else(|| missing_state("corpus scores"))?;
            let row = select_threshold(
                corpus,
                task,
                platform,
                all_scores,
                &expert,
                config.threshold,
                config.annotation_budget,
                &mut rng,
            );
            counts.above_threshold += row.above_threshold as u64;
            counts.final_annotated += row.annotated as u64;
            counts.true_positives += row.true_positives as u64;
            thresholds.push(row);
            let engine_stats = engine
                .as_ref()
                .map(ScoringEngine::stats)
                .or(restored_engine);
            let snap = make_snapshot(
                &rng,
                &counts,
                &training,
                &rounds,
                &thresholds,
                scores.as_ref(),
                eval.as_ref(),
                engine_stats,
            );
            record(
                &mut ckpt,
                &format!("threshold-{}", platform.slug()),
                &snap,
                classifier.as_ref(),
                false,
            )?;
            fp.check(&format!("after-threshold-{}", platform.slug()))?;
        }
        step_idx += 1;
    }

    // Table 2 accounting: training labels per platform.
    let platform_of: BTreeMap<DocId, Platform> = corpus
        .documents
        .iter()
        .map(|d| (d.id, d.platform))
        .collect();
    let mut training_by_platform: BTreeMap<Platform, (usize, usize)> = BTreeMap::new();
    for (id, _, label) in &training {
        if let Some(p) = platform_of.get(id) {
            let entry = training_by_platform.entry(*p).or_default();
            if *label {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }

    let engine_stats = engine
        .as_ref()
        .map(ScoringEngine::stats)
        .or(restored_engine)
        .ok_or_else(|| missing_state("engine statistics"))?;
    Ok(PipelineOutcome {
        task,
        counts,
        rounds,
        thresholds,
        eval: eval.ok_or_else(|| missing_state("an evaluation report"))?,
        training_by_platform,
        scores: scores.ok_or_else(|| missing_state("corpus scores"))?,
        engine: engine_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::tiny(404))
    }

    fn run(corpus: &Corpus, task: Task, config: &PipelineConfig) -> PipelineOutcome {
        run_pipeline(corpus, task, config).expect("pipeline scoring")
    }

    #[test]
    fn dox_pipeline_end_to_end() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(1));
        assert!(out.counts.raw_documents > 0);
        assert!(out.counts.seed_annotations > 0);
        assert!(out.counts.true_positives > 0, "pipeline found no doxes");
        // Pipeline precision at the final stage should be usable.
        assert!(
            out.counts.final_precision() > 0.3,
            "precision {}",
            out.counts.final_precision()
        );
        // Funnel must reduce the corpus substantially.
        assert!(out.counts.reduction_factor() > 2.0);
    }

    #[test]
    fn cth_pipeline_end_to_end() {
        let corpus = corpus();
        let out = run(&corpus, Task::Cth, &PipelineConfig::quick(2));
        assert!(out.counts.true_positives > 0, "pipeline found no CTH");
        // Pastes/blogs excluded.
        assert!(out
            .thresholds
            .iter()
            .all(|t| t.platform != Platform::Pastes));
        assert!(out.thresholds.iter().all(|t| t.platform != Platform::Blogs));
        // CTH is the harder task: held-out AUC still informative.
        if let Some(auc) = out.eval.auc {
            assert!(auc > 0.6, "auc {auc}");
        }
    }

    #[test]
    fn pipeline_recovers_most_planted_positives() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(3));
        let positive_ids = out.annotated_positive_ids();
        let truth_ids: std::collections::HashSet<DocId> = corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_dox && d.platform != Platform::Blogs)
            .map(|d| d.id)
            .collect();
        let recovered = positive_ids
            .iter()
            .filter(|id| truth_ids.contains(id))
            .count();
        let recall = recovered as f64 / truth_ids.len().max(1) as f64;
        assert!(recall > 0.4, "end-to-end recall {recall}");
    }

    #[test]
    fn outcome_id_sets_are_consistent() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(4));
        let above: std::collections::HashSet<DocId> =
            out.above_threshold_ids().into_iter().collect();
        for id in out.annotated_positive_ids() {
            assert!(above.contains(&id), "positive not above threshold");
        }
    }

    #[test]
    fn corpus_is_featurized_exactly_once() {
        let corpus = corpus();
        let config = PipelineConfig::quick(6);
        let out = run(&corpus, Task::Dox, &config);
        assert_eq!(out.engine.featurize_passes, 1);
        assert_eq!(out.engine.score_passes, config.al_rounds + 1);
        assert_eq!(out.engine.documents as u64, out.counts.raw_documents);
    }

    #[test]
    fn scoring_is_parallel_consistent() {
        let corpus = corpus();
        let docs: Vec<&Document> = corpus.documents.iter().take(600).collect();
        let labeled: Vec<(&str, bool)> = docs
            .iter()
            .map(|d| (d.text.as_str(), d.truth.is_dox))
            .collect();
        let clf = TextClassifier::train(
            labeled,
            FeaturizerConfig {
                mode: FeatureMode::Word,
                hash_bits: 14,
                ..Default::default()
            },
            TrainConfig::default(),
        );
        let serial = score_corpus(&clf, &docs, 1).expect("serial");
        let parallel = score_corpus(&clf, &docs, 4).expect("parallel");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = PipelineConfig::quick(1);
        assert_eq!(ok.validate(), Ok(()));

        let mut bad = PipelineConfig::quick(1);
        bad.max_seeds = 0;
        assert_eq!(bad.validate(), Err(ConfigError::EmptySeedQuery));

        let mut bad = PipelineConfig::quick(1);
        bad.per_decile = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroPerDecile));
        // ... unless no rounds run at all.
        bad.al_rounds = 0;
        assert_eq!(bad.validate(), Ok(()));

        let mut bad = PipelineConfig::quick(1);
        bad.annotation_budget = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroAnnotationBudget));

        let mut bad = PipelineConfig::quick(1);
        bad.threshold.probe_sample = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroProbeSample));

        let mut bad = PipelineConfig::quick(1);
        bad.eval_fraction = 1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::BadEvalFraction(_))
        ));
    }

    #[test]
    fn run_pipeline_refuses_degenerate_config() {
        let corpus = corpus();
        let mut config = PipelineConfig::quick(1);
        config.per_decile = 0;
        match run_pipeline(&corpus, Task::Dox, &config) {
            Err(PipelineError::Config(ConfigError::ZeroPerDecile)) => {}
            other => panic!("expected config rejection, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_tracks_outcome_shaping_fields_only() {
        let a = PipelineConfig::quick(1);
        let mut b = PipelineConfig::quick(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Threads never change the outcome; the fingerprint ignores them.
        b.threads = 16;
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = PipelineConfig::quick(1);
        c.hash_bits = 16;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn identical_seeds_give_identical_outcomes_and_digests() {
        let corpus = corpus();
        let a = run(&corpus, Task::Dox, &PipelineConfig::quick(5));
        let b = run(&corpus, Task::Dox, &PipelineConfig::quick(5));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = run(&corpus, Task::Dox, &PipelineConfig::quick(7));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn resumable_run_in_fresh_dir_matches_plain_run() {
        let corpus = corpus();
        let config = PipelineConfig::quick(8);
        let plain = run(&corpus, Task::Dox, &config);
        let dir =
            std::env::temp_dir().join(format!("incite-pipeline-resumable-{}", std::process::id()));
        crate::checkpoint::clear_run_dir(&dir).expect("clear");
        let resumable =
            run_pipeline_resumable(&corpus, Task::Dox, &config, &dir).expect("resumable");
        assert_eq!(plain, resumable);
        assert_eq!(plain.digest(), resumable.digest());
        // A second invocation resumes from the final checkpoint and must
        // reproduce the outcome without recomputing the run.
        let replayed = run_pipeline_resumable(&corpus, Task::Dox, &config, &dir).expect("replayed");
        assert_eq!(plain, replayed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
