//! End-to-end pipeline orchestration (Figure 1).
//!
//! The scoring hot path is *featurize-once*: every applicable document is
//! tokenized exactly one time into the [`ScoringEngine`]'s CSR arena, and
//! each of the `al_rounds + 1` full-corpus passes is a parallel spmv
//! against the current weight vector (see [`crate::engine`]). Training-set
//! features are likewise cached across every retrain.

use crate::accounting::StageCounts;
use crate::active_learning::{active_learning_round, RoundStats};
use crate::bootstrap::bootstrap;
use crate::engine::{EngineStats, ScoringEngine};
use crate::parallel::ScoreError;
use crate::task::Task;
use crate::threshold::{select_threshold, PlatformThreshold, ThresholdConfig};
use incite_annotate::Annotator;
use incite_corpus::{Corpus, DocId, Document};
use incite_ml::model::EvalReport;
use incite_ml::{FeatureCache, FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

pub use crate::engine::score_corpus;

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Master seed.
    pub seed: u64,
    /// Active-learning rounds (the paper ran two per task).
    pub al_rounds: usize,
    /// Crowd samples per score decile per round.
    pub per_decile: usize,
    /// Expert budget for seed annotation.
    pub max_seeds: usize,
    /// Expert budget for the final per-platform annotation pass (the paper
    /// annotated up to ~3.3 K documents per platform).
    pub annotation_budget: usize,
    /// Threshold-search parameters.
    pub threshold: ThresholdConfig,
    /// Feature hashing bits.
    pub hash_bits: u32,
    /// Feature mode (subword by default).
    pub feature_mode: FeatureMode,
    /// SGD parameters.
    pub train: TrainConfig,
    /// Scoring threads.
    pub threads: usize,
    /// Fraction of labeled data held out for the Table 3 evaluation.
    pub eval_fraction: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0xf117e5,
            al_rounds: 2,
            per_decile: 40,
            max_seeds: 1_200,
            annotation_budget: 3_300,
            threshold: ThresholdConfig::default(),
            hash_bits: 18,
            feature_mode: FeatureMode::Subword,
            train: TrainConfig::default(),
            threads: 4,
            eval_fraction: 0.2,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        PipelineConfig {
            seed,
            al_rounds: 1,
            per_decile: 10,
            max_seeds: 300,
            annotation_budget: 500,
            hash_bits: 15,
            feature_mode: FeatureMode::Word,
            threads: 2,
            ..Default::default()
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    pub task: Task,
    /// Figure 1 stage counts.
    pub counts: StageCounts,
    /// Per-round active-learning statistics (§5.3 diagnostics).
    pub rounds: Vec<RoundStats>,
    /// Per-platform Table 4 rows.
    pub thresholds: Vec<PlatformThreshold>,
    /// Held-out evaluation (Table 3 metric block).
    pub eval: EvalReport,
    /// Final training-set composition per platform: (positives, negatives)
    /// — the Table 2 reproduction.
    pub training_by_platform: HashMap<Platform, (usize, usize)>,
    /// Full classifier scores for every applicable document (consumed by
    /// the thread-overlap analysis, §6.3).
    pub scores: Vec<(DocId, f32)>,
    /// Scoring-engine instrumentation: the featurize-once invariant
    /// (`engine.featurize_passes == 1`) and the number of spmv passes
    /// served from the arena (`al_rounds + 1`).
    pub engine: EngineStats,
}

impl PipelineOutcome {
    /// All above-threshold document ids.
    pub fn above_threshold_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .thresholds
            .iter()
            .flat_map(|t| t.above_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// All expert-confirmed true-positive ids (the "annotated" data set).
    pub fn annotated_positive_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .thresholds
            .iter()
            .flat_map(|t| t.positive_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Runs one task's full pipeline over a corpus.
///
/// The only error source is a scoring-worker panic, surfaced as a typed
/// [`ScoreError`] instead of aborting the process.
pub fn run_pipeline(
    corpus: &Corpus,
    task: Task,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, ScoreError> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ task.slug().len() as u64);
    let expert = Annotator::expert("expert");
    let crowd_a = match task {
        Task::Cth => Annotator::crowd_cth("crowd-a"),
        Task::Dox => Annotator::crowd_dox("crowd-a"),
    };
    let crowd_b = match task {
        Task::Cth => Annotator::crowd_cth("crowd-b"),
        Task::Dox => Annotator::crowd_dox("crowd-b"),
    };
    let crowd_c = crowd_a.clone();

    let mut counts = StageCounts::default();

    // Applicable documents.
    let applicable: Vec<&Document> = corpus
        .documents
        .iter()
        .filter(|d| task.applies_to(d.platform))
        .collect();
    counts.raw_documents = applicable.len() as u64;

    // Stage 1: bootstrap seeds.
    let boot = bootstrap(corpus, task, config.max_seeds, &expert, &mut rng);
    counts.bootstrap_candidates = boot.candidates as u64;
    counts.seed_annotations = boot.seeds.len() as u64;

    let mut training: Vec<(DocId, String, bool)> = boot
        .seeds
        .iter()
        .map(|s| (s.id, s.text.clone(), s.label))
        .collect();

    // Stage 2: initial classifier. Every training text is featurized once,
    // into the cache, and reused by every retrain below.
    let featurizer_config = FeaturizerConfig {
        max_len: task.text_length(),
        mode: config.feature_mode,
        hash_bits: config.hash_bits,
        seed: config.seed,
        ..Default::default()
    };
    let mut cache = FeatureCache::new();
    let mut classifier = TextClassifier::train_with_cache(
        training.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
        featurizer_config,
        config.train,
        &mut cache,
    );

    // The featurize-once arena: the applicable corpus is tokenized exactly
    // one time here; all al_rounds + 1 scoring passes below are spmv.
    let mut engine = ScoringEngine::build(classifier.featurizer(), &applicable, config.threads)?;

    // Stage 3: active-learning rounds.
    let mut rounds = Vec::new();
    for _ in 0..config.al_rounds {
        let scores = engine.score_all(classifier.model(), config.threads)?;
        let stats = active_learning_round(
            corpus,
            task,
            &mut classifier,
            &mut cache,
            &mut training,
            &scores,
            config.per_decile,
            (&crowd_a, &crowd_b, &crowd_c),
            config.train,
            &mut rng,
        );
        counts.crowd_annotations += stats.sampled as u64;
        rounds.push(stats);
    }
    counts.training_annotations = training.len() as u64;

    // Stage 4: held-out evaluation (Table 3), then final full training.
    // All features come from the cache — no re-tokenization.
    let mut shuffled = training.clone();
    shuffled.shuffle(&mut rng);
    let eval_n = ((shuffled.len() as f64) * config.eval_fraction).round() as usize;
    let (eval_split, train_split) = shuffled.split_at(eval_n.min(shuffled.len()));
    let eval_train_data = cache.dataset(
        classifier.featurizer(),
        train_split.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
    );
    let eval_data = cache.dataset(
        classifier.featurizer(),
        eval_split.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
    );
    let mut eval_model = classifier.clone();
    eval_model.retrain_features(&eval_train_data, config.train);
    let eval = eval_model.evaluate_features(&eval_data, 0.5);
    let full_data = cache.dataset(
        classifier.featurizer(),
        training.iter().map(|(id, t, l)| (id.0, t.as_str(), *l)),
    );
    classifier.retrain_features(&full_data, config.train);

    // Stage 5: full prediction — one more spmv pass over the arena.
    let scores = engine.score_all(classifier.model(), config.threads)?;
    counts.predicted_documents = scores.len() as u64;

    // Stage 6: per-platform thresholds + final expert pass.
    let mut thresholds = Vec::new();
    for platform in Platform::ALL {
        if !task.applies_to(platform) {
            continue;
        }
        let row = select_threshold(
            corpus,
            task,
            platform,
            &scores,
            &expert,
            config.threshold,
            config.annotation_budget,
            &mut rng,
        );
        counts.above_threshold += row.above_threshold as u64;
        counts.final_annotated += row.annotated as u64;
        counts.true_positives += row.true_positives as u64;
        thresholds.push(row);
    }

    // Table 2 accounting: training labels per platform.
    let platform_of: HashMap<DocId, Platform> = corpus
        .documents
        .iter()
        .map(|d| (d.id, d.platform))
        .collect();
    let mut training_by_platform: HashMap<Platform, (usize, usize)> = HashMap::new();
    for (id, _, label) in &training {
        if let Some(p) = platform_of.get(id) {
            let entry = training_by_platform.entry(*p).or_default();
            if *label {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }

    Ok(PipelineOutcome {
        task,
        counts,
        rounds,
        thresholds,
        eval,
        training_by_platform,
        scores,
        engine: engine.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig::tiny(404))
    }

    fn run(corpus: &Corpus, task: Task, config: &PipelineConfig) -> PipelineOutcome {
        run_pipeline(corpus, task, config).expect("pipeline scoring")
    }

    #[test]
    fn dox_pipeline_end_to_end() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(1));
        assert!(out.counts.raw_documents > 0);
        assert!(out.counts.seed_annotations > 0);
        assert!(out.counts.true_positives > 0, "pipeline found no doxes");
        // Pipeline precision at the final stage should be usable.
        assert!(
            out.counts.final_precision() > 0.3,
            "precision {}",
            out.counts.final_precision()
        );
        // Funnel must reduce the corpus substantially.
        assert!(out.counts.reduction_factor() > 2.0);
    }

    #[test]
    fn cth_pipeline_end_to_end() {
        let corpus = corpus();
        let out = run(&corpus, Task::Cth, &PipelineConfig::quick(2));
        assert!(out.counts.true_positives > 0, "pipeline found no CTH");
        // Pastes/blogs excluded.
        assert!(out
            .thresholds
            .iter()
            .all(|t| t.platform != Platform::Pastes));
        assert!(out.thresholds.iter().all(|t| t.platform != Platform::Blogs));
        // CTH is the harder task: held-out AUC still informative.
        if let Some(auc) = out.eval.auc {
            assert!(auc > 0.6, "auc {auc}");
        }
    }

    #[test]
    fn pipeline_recovers_most_planted_positives() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(3));
        let positive_ids = out.annotated_positive_ids();
        let truth_ids: std::collections::HashSet<DocId> = corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_dox && d.platform != Platform::Blogs)
            .map(|d| d.id)
            .collect();
        let recovered = positive_ids
            .iter()
            .filter(|id| truth_ids.contains(id))
            .count();
        let recall = recovered as f64 / truth_ids.len().max(1) as f64;
        assert!(recall > 0.4, "end-to-end recall {recall}");
    }

    #[test]
    fn outcome_id_sets_are_consistent() {
        let corpus = corpus();
        let out = run(&corpus, Task::Dox, &PipelineConfig::quick(4));
        let above: std::collections::HashSet<DocId> =
            out.above_threshold_ids().into_iter().collect();
        for id in out.annotated_positive_ids() {
            assert!(above.contains(&id), "positive not above threshold");
        }
    }

    #[test]
    fn corpus_is_featurized_exactly_once() {
        let corpus = corpus();
        let config = PipelineConfig::quick(6);
        let out = run(&corpus, Task::Dox, &config);
        assert_eq!(out.engine.featurize_passes, 1);
        assert_eq!(out.engine.score_passes, config.al_rounds + 1);
        assert_eq!(out.engine.documents as u64, out.counts.raw_documents);
    }

    #[test]
    fn scoring_is_parallel_consistent() {
        let corpus = corpus();
        let docs: Vec<&Document> = corpus.documents.iter().take(600).collect();
        let labeled: Vec<(&str, bool)> = docs
            .iter()
            .map(|d| (d.text.as_str(), d.truth.is_dox))
            .collect();
        let clf = TextClassifier::train(
            labeled,
            FeaturizerConfig {
                mode: FeatureMode::Word,
                hash_bits: 14,
                ..Default::default()
            },
            TrainConfig::default(),
        );
        let serial = score_corpus(&clf, &docs, 1).expect("serial");
        let parallel = score_corpus(&clf, &docs, 4).expect("parallel");
        assert_eq!(serial, parallel);
    }
}
