//! Per-attack-type classification — the paper's suggested extension.
//!
//! §9.2: "Additional research could also extend our classifiers to detect
//! each type of attack separately, in order to provide more accurate
//! assessments of the call to harassment ecosystem." This module implements
//! that extension as a one-vs-rest bank of linear classifiers over the ten
//! parent attack types: given a detected call to harassment, it predicts
//! *which* attacks it incites.

use incite_ml::model::EvalReport;
use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_taxonomy::{AttackType, LabelSet};

/// Minimum positive examples required to train a head for an attack type;
/// rarer types (the paper's lockout/surveillance, 2 examples each in §6.3)
/// are skipped rather than fit to noise.
pub const MIN_POSITIVES: usize = 10;

/// One trained head: the attack type, its binary classifier, and the
/// F1-optimal decision threshold calibrated on training data (a fixed 0.5
/// mis-serves heads whose positive rate is far from 50 %).
struct Head {
    attack: AttackType,
    classifier: TextClassifier,
    threshold: f32,
}

/// A one-vs-rest multi-label attack-type classifier.
pub struct AttackTypeClassifier {
    heads: Vec<Head>,
    /// Types skipped at training time for lack of data.
    pub skipped: Vec<AttackType>,
}

/// Finds the threshold maximizing F1 over scored labels.
fn best_f1_threshold(scored: &[(f32, bool)]) -> f32 {
    let total_pos = scored.iter().filter(|(_, l)| *l).count() as f64;
    if total_pos == 0.0 {
        return 0.5;
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut best = (0.5f32, 0.0f64);
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    for (i, &(score, label)) in sorted.iter().enumerate() {
        if label {
            tp += 1.0;
        } else {
            fp += 1.0;
        }
        // Candidate threshold: just below this score (ties handled by the
        // boundary check).
        if i + 1 < sorted.len() && sorted[i + 1].0 == score {
            continue;
        }
        let precision = tp / (tp + fp);
        let recall = tp / total_pos;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        if f1 > best.1 {
            best = (score - f32::EPSILON.max(score * 1e-4), f1);
        }
    }
    best.0.clamp(0.01, 0.99)
}

impl AttackTypeClassifier {
    /// Trains one binary head per parent attack type from labeled calls to
    /// harassment, then calibrates each head's threshold for best F1 on the
    /// training data. `labeled` pairs each document text with its (multi-)
    /// label set.
    pub fn train(
        labeled: &[(String, LabelSet)],
        featurizer: FeaturizerConfig,
        train: TrainConfig,
    ) -> Self {
        let mut heads = Vec::new();
        let mut skipped = Vec::new();
        for attack in AttackType::ALL {
            let data: Vec<(&str, bool)> = labeled
                .iter()
                .map(|(text, labels)| (text.as_str(), labels.contains_parent(attack)))
                .collect();
            let positives = data.iter().filter(|(_, l)| *l).count();
            if positives < MIN_POSITIVES || positives + MIN_POSITIVES > data.len() {
                skipped.push(attack);
                continue;
            }
            let classifier = TextClassifier::train(data.clone(), featurizer.clone(), train);
            let scored: Vec<(f32, bool)> = data
                .iter()
                .map(|(t, l)| (classifier.score(t), *l))
                .collect();
            let threshold = best_f1_threshold(&scored);
            heads.push(Head {
                attack,
                classifier,
                threshold,
            });
        }
        AttackTypeClassifier { heads, skipped }
    }

    /// The attack types with trained heads.
    pub fn covered_types(&self) -> Vec<AttackType> {
        self.heads.iter().map(|h| h.attack).collect()
    }

    /// The calibrated threshold for a type's head, if trained.
    pub fn threshold(&self, attack: AttackType) -> Option<f32> {
        self.heads
            .iter()
            .find(|h| h.attack == attack)
            .map(|h| h.threshold)
    }

    /// Per-type probabilities for one document.
    pub fn predict(&self, text: &str) -> Vec<(AttackType, f32)> {
        self.heads
            .iter()
            .map(|h| (h.attack, h.classifier.score(text)))
            .collect()
    }

    /// Hard multi-label prediction using each head's calibrated threshold.
    /// Falls back to the relatively-highest-scoring type when nothing
    /// clears its threshold (a call to harassment always incites
    /// *something*).
    pub fn predict_labels(&self, text: &str) -> Vec<AttackType> {
        let mut out: Vec<AttackType> = Vec::new();
        let mut best: Option<(AttackType, f32)> = None;
        for h in &self.heads {
            let score = h.classifier.score(text);
            if score > h.threshold {
                out.push(h.attack);
            }
            let margin = score / h.threshold.max(1e-6);
            if best.map(|(_, m)| margin > m).unwrap_or(true) {
                best = Some((h.attack, margin));
            }
        }
        if out.is_empty() {
            if let Some((attack, _)) = best {
                out.push(attack);
            }
        }
        out
    }

    /// Per-type held-out evaluation at each head's calibrated threshold.
    pub fn evaluate(&self, labeled: &[(String, LabelSet)]) -> Vec<(AttackType, EvalReport)> {
        self.heads
            .iter()
            .map(|h| {
                let data = labeled
                    .iter()
                    .map(|(text, labels)| (text.as_str(), labels.contains_parent(h.attack)));
                (h.attack, h.classifier.evaluate(data, h.threshold))
            })
            .collect()
    }
}

/// A sensible default featurizer for the attack-type task: CTH-length
/// windows, word features (attack vocabulary is lexical, e.g. "mass
/// report", "raid", "deep fakes").
pub fn default_featurizer() -> FeaturizerConfig {
    FeaturizerConfig {
        max_len: 128,
        mode: FeatureMode::Word,
        hash_bits: 16,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};
    use incite_taxonomy::Platform;

    type LabeledDocs = Vec<(String, LabelSet)>;

    fn labeled_corpus() -> (LabeledDocs, LabeledDocs) {
        let corpus = generate(&CorpusConfig::small(0xa77ac4));
        let all: Vec<(String, LabelSet)> = corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_cth && d.platform != Platform::Blogs)
            .map(|d| (d.text.clone(), d.truth.labels))
            .collect();
        let mid = all.len() / 2;
        (all[..mid].to_vec(), all[mid..].to_vec())
    }

    #[test]
    fn trains_heads_for_common_types_and_skips_rare_ones() {
        let (train, _) = labeled_corpus();
        let clf = AttackTypeClassifier::train(&train, default_featurizer(), TrainConfig::default());
        let covered = clf.covered_types();
        assert!(covered.contains(&AttackType::Reporting));
        assert!(covered.contains(&AttackType::ContentLeakage));
        // Lockout has ~5 examples in the whole paper data set; skipped here.
        assert!(clf.skipped.contains(&AttackType::LockoutAndControl));
    }

    #[test]
    fn per_type_detection_beats_chance() {
        let (train, dev) = labeled_corpus();
        let clf = AttackTypeClassifier::train(&train, default_featurizer(), TrainConfig::default());
        let reports = clf.evaluate(&dev);
        let reporting = reports
            .iter()
            .find(|(a, _)| *a == AttackType::Reporting)
            .expect("reporting head trained");
        assert!(
            reporting.1.metrics.positive.f1 > 0.6,
            "reporting F1 {}",
            reporting.1.metrics.positive.f1
        );
        let leakage = reports
            .iter()
            .find(|(a, _)| *a == AttackType::ContentLeakage)
            .unwrap();
        assert!(
            leakage.1.metrics.positive.f1 > 0.5,
            "leakage F1 {}",
            leakage.1.metrics.positive.f1
        );
    }

    #[test]
    fn predict_labels_never_returns_empty() {
        let (train, _) = labeled_corpus();
        let clf = AttackTypeClassifier::train(&train, default_featurizer(), TrainConfig::default());
        let labels = clf.predict_labels("completely unrelated text about gardening");
        assert_eq!(labels.len(), 1, "fallback to best type expected");
    }

    #[test]
    fn mixed_documents_raise_both_heads() {
        let (train, _) = labeled_corpus();
        let clf = AttackTypeClassifier::train(&train, default_featurizer(), TrainConfig::default());
        // The heads must rank their own vocabulary above foreign vocabulary.
        let reporting_text = "we need to mass report his twitter until the account is gone";
        let raiding_text = "everyone raid his stream tonight, brigade the comments, bring everyone";
        let score_of = |text: &str, attack: AttackType| {
            clf.predict(text)
                .into_iter()
                .find(|(a, _)| *a == attack)
                .map(|(_, s)| s)
                .unwrap_or(0.0)
        };
        assert!(
            score_of(raiding_text, AttackType::Overloading)
                > score_of(reporting_text, AttackType::Overloading),
            "raid vocabulary should raise the overloading head: {} vs {}",
            score_of(raiding_text, AttackType::Overloading),
            score_of(reporting_text, AttackType::Overloading),
        );
        assert!(score_of(reporting_text, AttackType::Reporting) > 0.5);
        // Hard labels route each text to its own category.
        let labels = clf.predict_labels(reporting_text);
        assert!(labels.contains(&AttackType::Reporting), "{labels:?}");
    }
}
